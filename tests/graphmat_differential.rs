//! Differential suite for the GraphMat lowering: every program in
//! `vertex::programs` must produce **bit-identical** values when
//! auto-lowered onto masked SpMSpV as it does under the Giraph vertex
//! engine, on both ER-style random edge lists and RMAT graphs, and the
//! lowered engine's sweep digests must match Giraph's at every `--jobs`
//! setting.
//!
//! The bit-identity hinges on the fold-order contract: Giraph's
//! whole-superstep buffered inbox at `splits = 1` delivers messages in
//! globally ascending source id, and the SPA folds partial products in
//! ascending-frontier order — the same order. For CF (the one f64
//! program whose result is fold-order sensitive across splits) Giraph is
//! therefore pinned at `splits = 1` here.

use graphmaze_core::native::triangle::orient_and_sort;
use graphmaze_core::prelude::*;
use graphmaze_engines::graphmat;
use graphmaze_engines::vertex::programs::PageRankConvergentProgram;
use graphmaze_engines::vertex::{engine, giraph, Gas};

/// SplitMix64 — the same deterministic generator `tests/properties.rs`
/// samples cases from.
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Random ER-style edge list: `2..=max_v` vertices, `0..max_e` edges
/// (self-loops and duplicates allowed).
fn arb_edges(rng: &mut TestRng, max_v: u32, max_e: usize) -> (u32, Vec<(u32, u32)>) {
    let n = 2 + rng.below(u64::from(max_v) - 1) as u32;
    let e = rng.below(max_e as u64) as usize;
    let edges = (0..e)
        .map(|_| {
            (
                rng.below(u64::from(n)) as u32,
                rng.below(u64::from(n)) as u32,
            )
        })
        .collect();
    (n, edges)
}

/// A fixture: case name, vertex count, raw edge list.
type Fixture = (String, u32, Vec<(u32, u32)>);

/// The ER + RMAT fixture set every program-level test iterates: raw edge
/// lists, built into whichever graph view the program needs.
fn fixtures(base_seed: u64) -> Vec<Fixture> {
    let mut out = Vec::new();
    for case in 0..3u64 {
        let mut rng = TestRng(base_seed + case);
        let (n, edges) = arb_edges(&mut rng, 300, 1500);
        out.push((format!("er-{case}"), n, edges));
    }
    for case in 0..2u64 {
        let el = graphmaze_core::datagen::rmat::generate(&RmatConfig {
            scale: 8,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed: base_seed ^ (0xD1F0 + case),
            scramble_ids: false,
            threads: 1,
        });
        out.push((
            format!("rmat-{case}"),
            el.num_vertices() as u32,
            el.edges().to_vec(),
        ));
    }
    out
}

const NODES: usize = 4;

#[test]
fn pagerank_lowering_is_bit_identical_to_giraph() {
    for (name, n, edges) in fixtures(0xA11C_E000) {
        let g = DirectedGraph::from_edges(u64::from(n), &edges);
        let (giraph_pr, _) = giraph::pagerank(&g, PAGERANK_R, 5, NODES).unwrap();
        let (graphmat_pr, _) = graphmat::pagerank(&g, PAGERANK_R, 5, NODES).unwrap();
        assert_eq!(giraph_pr, graphmat_pr, "{name}: ranks diverge");
    }
}

#[test]
fn convergent_pagerank_lowering_tracks_the_aggregator_identically() {
    // the aggregator-driven variant exercises `prev_aggregate` threading
    // through both engines; no convenience wrapper exists, so both run
    // through their generic entry points
    for (name, n, edges) in fixtures(0xA11C_E100) {
        let g = DirectedGraph::from_edges(u64::from(n), &edges);
        let prog = || PageRankConvergentProgram {
            r: PAGERANK_R,
            tolerance: 1e-4,
            max_iterations: 30,
        };
        let init = vec![1.0f64; g.num_vertices()];
        let (giraph_pr, _) = engine::run(
            &g.out,
            None,
            &Gas(prog()),
            init.clone(),
            vec![],
            true,
            &giraph::config(32, 1),
            NODES,
            1,
        )
        .unwrap();
        let (graphmat_pr, _) =
            graphmat::run(&g.out, None, &prog(), init, vec![], true, 32, NODES, 1).unwrap();
        assert_eq!(giraph_pr, graphmat_pr, "{name}: ranks diverge");
    }
}

#[test]
fn bfs_lowering_is_bit_identical_to_giraph() {
    for (name, n, edges) in fixtures(0xA11C_E200) {
        let g = UndirectedGraph::from_edges(u64::from(n), &edges);
        let source = (u64::from(n) / 3) as u32;
        let (giraph_d, _) = giraph::bfs(&g, source, NODES).unwrap();
        let (graphmat_d, _) = graphmat::bfs(&g, source, NODES).unwrap();
        assert_eq!(giraph_d, graphmat_d, "{name}: distances diverge");
    }
}

#[test]
fn msbfs_lowering_is_bit_identical_to_giraph() {
    for (name, n, edges) in fixtures(0xA11C_E300) {
        let g = UndirectedGraph::from_edges(u64::from(n), &edges);
        // 65 sources so the mask spans two words
        let mut rng = TestRng(u64::from(n));
        let sources: Vec<u32> = (0..65).map(|_| rng.below(u64::from(n)) as u32).collect();
        let (giraph_rows, _) = giraph::msbfs(&g, &sources, NODES).unwrap();
        let (graphmat_rows, _) = graphmat::msbfs(&g, &sources, NODES).unwrap();
        assert_eq!(giraph_rows, graphmat_rows, "{name}: rows diverge");
    }
}

#[test]
fn triangle_lowering_matches_giraph_count() {
    for (name, n, edges) in fixtures(0xA11C_E400) {
        let el = EdgeList::from_edges(u64::from(n), edges).unwrap();
        let oriented = orient_and_sort(&el);
        let (giraph_tc, _) = giraph::triangles(&oriented, NODES).unwrap();
        let (graphmat_tc, _) = graphmat::triangles(&oriented, NODES).unwrap();
        assert_eq!(giraph_tc, graphmat_tc, "{name}: counts diverge");
    }
}

#[test]
fn cf_lowering_is_bit_identical_to_giraph_at_splits_1() {
    // two ratings shapes stand in for ER/RMAT (the bipartite generator is
    // the only source of ratings graphs); splits = 1 pins Giraph's f64
    // fold order to globally ascending source id, the order the SPA
    // replays
    for (scale, items, seed) in [(8u32, 64u32, 71u64), (9, 32, 72)] {
        let wl = Workload::rmat_ratings(scale, items, seed);
        let g = wl.ratings().unwrap();
        let (giraph_f, _) = giraph::cf_gd(g, 8, 0.05, 0.005, 2, NODES, 1).unwrap();
        let (graphmat_f, _) = graphmat::cf_gd(g, 8, 0.05, 0.005, 2, NODES).unwrap();
        assert_eq!(giraph_f, graphmat_f, "s{scale}/i{items}: factors diverge");
    }
}

/// One GraphMat + one Giraph cell per extended algorithm, with Giraph
/// pinned at `splits = 1` so CF is fold-order comparable.
fn differential_sweep() -> Sweep {
    let params = BenchParams {
        giraph_splits: 1,
        ..BenchParams::default()
    };
    let spec = |alg: Algorithm| match alg {
        Algorithm::TriangleCount => WorkloadSpec::RmatTriangle {
            scale: 8,
            edge_factor: 8,
            seed: 73,
        },
        Algorithm::CollaborativeFiltering => WorkloadSpec::RmatRatings {
            scale: 8,
            num_items: 64,
            seed: 73,
        },
        _ => WorkloadSpec::Rmat {
            scale: 8,
            edge_factor: 16,
            seed: 73,
        },
    };
    let mut sweep = Sweep::new("graphmat-diff");
    for alg in Algorithm::EXTENDED {
        for fw in [Framework::Giraph, Framework::GraphMat] {
            sweep.push(SweepCell {
                label: format!("{}-{}", alg.name(), fw.name()),
                algorithm: alg,
                framework: fw,
                spec: spec(alg),
                nodes: NODES,
                factor: 1.0,
                params,
                faults: FaultPlan::none(),
            });
        }
    }
    sweep
}

#[test]
fn sweep_digests_match_giraph_at_every_jobs_setting() {
    let sweep = differential_sweep();
    let cache = WorkloadCache::new();
    let mut per_jobs: Vec<Vec<f64>> = Vec::new();
    for jobs in [1usize, 4] {
        let report = sweep.execute(
            &SweepOptions {
                jobs,
                journal: None,
                resume: false,
                cell_timeout: None,
                telemetry: None,
            },
            &cache,
            &SilentObserver,
        );
        let digests: Vec<f64> = report
            .results
            .iter()
            .map(|r| r.outcome.as_ref().expect("cell runs").digest)
            .collect();
        // cells alternate Giraph, GraphMat per algorithm
        for (pair, alg) in digests.chunks(2).zip(Algorithm::EXTENDED) {
            assert_eq!(
                pair[0].to_bits(),
                pair[1].to_bits(),
                "jobs={jobs} {}: graphmat digest {} != giraph digest {}",
                alg.name(),
                pair[1],
                pair[0]
            );
        }
        per_jobs.push(digests);
    }
    assert_eq!(
        per_jobs[0].iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        per_jobs[1].iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        "digests depend on --jobs"
    );
}
