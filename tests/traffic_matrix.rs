//! Traffic-matrix invariants: the per-(src,dst) communication matrix the
//! router records must reconcile with every other byte counter in a run
//! report, stay byte-identical across `--jobs` settings, and survive the
//! fault-injection / recovery path untouched.
//!
//! These are the accounting guarantees behind the `commmatrix`
//! experiment: a matrix row is *exactly* what that node sent, summed
//! over destinations, and the whole matrix sums to the run's aggregate
//! wire traffic.

use graphmaze_core::prelude::*;
use graphmaze_metrics::RunReport;

/// Row sums, column sums, and the grand total of `report.matrix` must
/// reconcile with `node_sent_bytes` and `traffic.bytes_sent`.
fn assert_reconciles(report: &RunReport, ctx: &str) {
    let m = &report.matrix;
    assert_eq!(
        m.nodes,
        report.node_sent_bytes.len(),
        "{ctx}: matrix dimension vs per-node vector"
    );
    for src in 0..m.nodes {
        assert_eq!(
            m.row_bytes(src),
            report.node_sent_bytes[src],
            "{ctx}: row {src} sum vs node_sent_bytes"
        );
    }
    assert_eq!(
        m.total_bytes(),
        report.traffic.bytes_sent,
        "{ctx}: matrix total vs aggregate wire bytes"
    );
    // column sums partition the same total by receiver
    let col_total: u64 = (0..m.nodes).map(|d| m.col_bytes(d)).sum();
    assert_eq!(col_total, m.total_bytes(), "{ctx}: column sums");
}

#[test]
fn matrix_row_sums_equal_node_sent_bytes_across_engines() {
    let params = BenchParams::default();
    let graph = Workload::rmat(9, 8, 301);
    let tc = Workload::rmat_triangle(9, 8, 302);
    let ratings = Workload::rmat_ratings(8, 64, 303);
    for fw in Framework::ALL {
        let nodes = if fw.multi_node() { 4 } else { 1 };
        for alg in Algorithm::ALL {
            let wl = match alg {
                Algorithm::TriangleCount => &tc,
                Algorithm::CollaborativeFiltering => &ratings,
                _ => &graph,
            };
            let out = run_benchmark(alg, fw, wl, nodes, &params)
                .unwrap_or_else(|e| panic!("{fw:?}/{alg:?}: {e}"));
            let ctx = format!("{fw:?}/{alg:?} x{nodes}");
            assert_reconciles(&out.report, &ctx);
            if fw.multi_node() {
                assert!(
                    !out.report.matrix.is_empty(),
                    "{ctx}: a distributed run must ship bytes"
                );
            }
        }
    }
}

/// A small crossbar exercising the matrix across frameworks.
fn matrix_sweep() -> Sweep {
    let params = BenchParams::default();
    let spec = WorkloadSpec::Rmat {
        scale: 8,
        edge_factor: 8,
        seed: 304,
    };
    let mut sweep = Sweep::new("matrixjobs");
    for fw in [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
    ] {
        for alg in [Algorithm::PageRank, Algorithm::Bfs] {
            sweep.push(SweepCell {
                label: format!("{}-{}", alg.name(), fw.name()),
                algorithm: alg,
                framework: fw,
                spec: spec.clone(),
                nodes: 4,
                factor: 1.5,
                params,
                faults: FaultPlan::none(),
            });
        }
    }
    sweep
}

#[test]
fn matrix_is_byte_identical_across_jobs_settings() {
    let sweep = matrix_sweep();
    let run = |jobs: usize| {
        sweep.execute(
            &SweepOptions {
                jobs,
                journal: None,
                resume: false,
                cell_timeout: None,
                telemetry: None,
            },
            &WorkloadCache::new(),
            &SilentObserver,
        )
    };
    let serial = run(1);
    let parallel = run(4);
    for ((cell, s), p) in sweep
        .cells
        .iter()
        .zip(&serial.results)
        .zip(&parallel.results)
    {
        let s = &s.outcome.as_ref().expect("serial cell").report;
        let p = &p.outcome.as_ref().expect("parallel cell").report;
        assert_eq!(
            s.matrix, p.matrix,
            "{}: matrix depends on --jobs",
            cell.label
        );
        assert_eq!(
            s.node_sent_bytes, p.node_sent_bytes,
            "{}: node_sent_bytes depends on --jobs",
            cell.label
        );
        assert_reconciles(s, &cell.label);
    }
}

/// The Table R fault path: injected stragglers, drops, and a node kill
/// with checkpoint/restart must leave the traffic accounting reconciled
/// — recovery replays *time*, it never forges or discards wire bytes.
#[test]
fn fault_and_recovery_paths_keep_the_matrix_reconciled() {
    let params = BenchParams::default();
    let spec = WorkloadSpec::Rmat {
        scale: 8,
        edge_factor: 8,
        seed: 305,
    };
    let degraded = FaultPlan::parse("seed=7,straggler=0.2x3,drop=0.01").expect("valid spec");
    let nodefail = FaultPlan::parse("seed=7,kill=0@2,ckpt=2").expect("valid spec");
    let mut sweep = Sweep::new("matrixfaults");
    for (name, faults) in [
        ("baseline", FaultPlan::none()),
        ("degraded", degraded),
        ("nodefail", nodefail),
    ] {
        sweep.push(SweepCell {
            label: format!("giraph/{name}"),
            algorithm: Algorithm::PageRank,
            framework: Framework::Giraph,
            spec: spec.clone(),
            nodes: 4,
            factor: 1.0,
            params,
            faults,
        });
    }
    let report = sweep.execute(
        &SweepOptions {
            jobs: 1,
            journal: None,
            resume: false,
            cell_timeout: None,
            telemetry: None,
        },
        &WorkloadCache::new(),
        &SilentObserver,
    );
    let reports: Vec<&RunReport> = report
        .results
        .iter()
        .zip(&sweep.cells)
        .map(|(r, c)| {
            &r.outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e:?}", c.label))
                .report
        })
        .collect();
    for (r, cell) in reports.iter().zip(&sweep.cells) {
        assert_reconciles(r, &cell.label);
    }
    let nodefail = reports[2];
    assert!(
        nodefail.recovery.failures > 0,
        "the kill plan must actually fail a node"
    );
    assert!(
        nodefail.recovery.steps_replayed > 0,
        "giraph must replay from its checkpoint"
    );
    // replay charges recovery *time*; the wire bytes stay those of the
    // logical computation, so the matrix matches the fault-free run
    assert_eq!(
        nodefail.matrix, reports[0].matrix,
        "recovery must not forge or drop traffic"
    );
}
