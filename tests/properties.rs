//! Property-style tests on the core data structures and invariants of the
//! substrate crates. Each property is exercised over many pseudo-random
//! cases drawn from a deterministic in-test generator (fixed seeds, so
//! failures reproduce exactly; no external fuzzing dependency).

use graphmaze_core::cluster::compress::{decode, encode_best, encode_with, Encoding};
use graphmaze_core::cluster::{Partition1D, Partition2D};
use graphmaze_core::datagen::{rmat, RmatConfig, RmatParams};
use graphmaze_core::graph::bitvec::BitVec;
use graphmaze_core::graph::csr::{Csr, DirectedGraph, UndirectedGraph};
use graphmaze_core::native::bfs::{bfs, validate_distances, UNREACHED};
use graphmaze_core::native::pagerank::pagerank;
use graphmaze_core::native::triangle::{orient_and_sort, triangles, triangles_brute_force};
use graphmaze_core::prelude::*;

/// SplitMix64: tiny deterministic generator for test-case sampling.
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Random edge list: `2..=max_v` vertices, `0..max_e` edges (self-loops and
/// duplicates allowed, like the proptest strategy this replaces).
fn arb_edges(rng: &mut TestRng, max_v: u32, max_e: usize) -> (u32, Vec<(u32, u32)>) {
    let n = 2 + rng.below(u64::from(max_v) - 1) as u32;
    let e = rng.below(max_e as u64) as usize;
    let edges = (0..e)
        .map(|_| {
            (
                rng.below(u64::from(n)) as u32,
                rng.below(u64::from(n)) as u32,
            )
        })
        .collect();
    (n, edges)
}

const CASES: u64 = 64;
const CASES_SLOW: u64 = 32;

#[test]
fn csr_round_trips_edge_multiset() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 64, 200);
        let csr = Csr::from_edges(u64::from(n), &edges);
        assert_eq!(csr.num_edges(), edges.len() as u64);
        // reconstruct and compare as sorted multisets
        let mut rebuilt: Vec<(u32, u32)> = (0..n)
            .flat_map(|v| csr.neighbors(v).iter().map(move |&d| (v, d)))
            .collect();
        let mut orig = edges.clone();
        rebuilt.sort_unstable();
        orig.sort_unstable();
        assert_eq!(rebuilt, orig, "seed {seed}");
    }
}

#[test]
fn transpose_is_involutive_up_to_adjacency_order() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 48, 150);
        // double transpose preserves the edge multiset (adjacency order
        // within a vertex may differ from insertion order)
        let mut csr = Csr::from_edges(u64::from(n), &edges);
        let mut back = csr.transpose().transpose();
        csr.sort_neighbors();
        back.sort_neighbors();
        assert_eq!(back, csr, "seed {seed}");
    }
}

#[test]
fn bitvec_matches_hashset_model() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let mut bv = BitVec::new(200);
        let mut model = std::collections::HashSet::new();
        let ops = 1 + rng.below(99);
        for _ in 0..ops {
            let idx = rng.below(200) as usize;
            if rng.bool() {
                bv.set(idx);
                model.insert(idx);
            } else {
                bv.clear(idx);
                model.remove(&idx);
            }
        }
        assert_eq!(bv.count_ones(), model.len());
        for i in 0..200 {
            assert_eq!(bv.get(i), model.contains(&i), "seed {seed} bit {i}");
        }
        let ones: Vec<usize> = bv.iter_ones().collect();
        let mut want: Vec<usize> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(ones, want, "seed {seed}");
    }
}

#[test]
fn compression_round_trips() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let len = rng.below(500) as usize;
        let mut ids: Vec<u32> = (0..len).map(|_| rng.below(100_000) as u32).collect();
        ids.sort_unstable();
        ids.dedup();
        let universe = 100_000u64;
        for enc in [Encoding::Raw, Encoding::DeltaVarint, Encoding::Bitmap] {
            let buf = encode_with(&ids, universe, enc);
            assert_eq!(decode(&buf).unwrap(), ids, "seed {seed} {enc:?}");
        }
        let best = encode_best(&ids, universe);
        assert_eq!(decode(&best).unwrap(), ids, "seed {seed}");
    }
}

#[test]
fn partition1d_covers_disjointly() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 64, 200);
        let nodes = 1 + rng.below(7) as usize;
        let csr = Csr::from_edges(u64::from(n), &edges);
        let p = Partition1D::balanced_by_edges(&csr, nodes);
        let mut covered = 0u64;
        for node in 0..nodes {
            let r = p.range(node);
            covered += u64::from(r.end - r.start);
            for v in r.start..r.end {
                assert_eq!(
                    p.owner(v),
                    node,
                    "seed {seed} owner({v}) in range of {node}"
                );
            }
        }
        assert_eq!(covered, u64::from(n), "seed {seed}");
        let total_edges: u64 = (0..nodes).map(|k| p.edges_of(&csr, k)).sum();
        assert_eq!(total_edges, csr.num_edges(), "seed {seed}");
    }
}

#[test]
fn partition2d_owner_is_total() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let nodes = [1usize, 4, 9, 16][rng.below(4) as usize];
        let n = 1 + rng.below(199);
        let p = Partition2D::square(nodes, n).unwrap();
        for u in 0..n.min(40) {
            for v in 0..n.min(40) {
                let o = p.owner(u as u32, v as u32);
                assert!(o < nodes, "seed {seed} owner({u},{v}) = {o}");
            }
        }
    }
}

#[test]
fn triangle_count_matches_brute_force() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 24, 80);
        let el = EdgeList::from_edges(u64::from(n), edges.clone()).unwrap();
        let g = orient_and_sort(&el);
        let fast = triangles(&g, 2);
        let brute = triangles_brute_force(&edges, n as usize);
        assert_eq!(fast, brute, "seed {seed}");
    }
}

#[test]
fn bfs_distances_validate() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 48, 150);
        let src = rng.below(u64::from(n)) as u32;
        let g = UndirectedGraph::from_edges(u64::from(n), &edges);
        let d = bfs(&g, src, 2);
        assert!(validate_distances(&g, src, &d), "seed {seed}");
        assert_eq!(d[src as usize], 0, "seed {seed}");
        // triangle inequality along edges
        for v in 0..n {
            for &u in g.adj.neighbors(v) {
                let (dv, du) = (d[v as usize], d[u as usize]);
                if dv != UNREACHED && du != UNREACHED {
                    assert!(dv.abs_diff(du) <= 1, "seed {seed} edge ({v},{u})");
                }
            }
        }
    }
}

/// The tentpole differential harness: a 64-source bit-parallel batch
/// must produce exactly the same distance rows as 64 independent scalar
/// BFS runs, on both ER-style random graphs and RMAT graphs, and the
/// batch must be bit-identical at every thread count (the kernel's
/// `fetch_or` gossip commutes, so settle order cannot leak in).
#[test]
fn msbfs_batch_matches_independent_scalar_bfs_runs() {
    use graphmaze_core::graph::msbfs::msbfs as msbfs_kernel;

    for case in 0..8u64 {
        let mut rng = TestRng(0xB1B0 + case);
        // alternate ER-style random edge lists and RMAT graphs
        let g = if case % 2 == 0 {
            let (n, edges) = arb_edges(&mut rng, 400, 2000);
            UndirectedGraph::from_edges(u64::from(n), &edges)
        } else {
            let cfg = RmatConfig {
                scale: 8,
                edge_factor: 8,
                params: RmatParams::GRAPH500,
                seed: rng.next_u64(),
                scramble_ids: false,
                threads: 1,
            };
            let mut el = rmat::generate(&cfg);
            el.remove_self_loops();
            el.symmetrize();
            UndirectedGraph::from_symmetric_edge_list(&el)
        };
        let n = g.num_vertices() as u64;
        let sources: Vec<u32> = (0..64).map(|_| rng.below(n) as u32).collect();

        let batch = msbfs_kernel(&g.adj, &sources, 4);
        assert_eq!(batch.len(), sources.len(), "case {case}");
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(
                batch[i],
                bfs(&g, s, 1),
                "case {case}: batched row for source {s} diverges from scalar BFS"
            );
        }
        for threads in [1usize, 2, 8] {
            assert_eq!(
                msbfs_kernel(&g.adj, &sources, threads),
                batch,
                "case {case}: rows depend on thread count {threads}"
            );
        }
    }
}

#[test]
fn pagerank_values_bounded_below_by_r() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 48, 150);
        let g = DirectedGraph::from_edges(u64::from(n), &edges);
        let pr = pagerank(&g, 0.3, 5, 2);
        for &v in &pr {
            assert!(v >= 0.3 - 1e-12, "seed {seed} rank {v} below r");
            assert!(v.is_finite(), "seed {seed}");
        }
    }
}

#[test]
fn rmat_deterministic_and_in_range() {
    for case in 0..CASES_SLOW {
        let mut rng = TestRng(case);
        let scale = 4 + rng.below(5) as u32;
        let ef = 1 + rng.below(7) as u32;
        let seed = rng.next_u64();
        let cfg = RmatConfig {
            scale,
            edge_factor: ef,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: true,
            threads: 2,
        };
        let a = rmat::generate(&cfg);
        let b = rmat::generate(&cfg);
        assert_eq!(a.edges(), b.edges(), "case {case}");
        assert_eq!(a.num_edges(), u64::from(ef) << scale, "case {case}");
        let n = 1u64 << scale;
        assert!(
            a.edges()
                .iter()
                .all(|&(s, d)| u64::from(s) < n && u64::from(d) < n),
            "case {case}"
        );
    }
}

#[test]
fn orient_by_id_produces_dag() {
    for seed in 0..CASES {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 32, 100);
        let mut el = EdgeList::from_edges(u64::from(n), edges).unwrap();
        el.orient_by_id();
        assert!(el.edges().iter().all(|&(s, d)| s < d), "seed {seed}");
    }
}

#[test]
fn spmv_matches_dense_reference() {
    use graphmaze_core::cluster::ClusterSpec;
    use graphmaze_core::engines::spmv::matrix::DistMatrix;
    use graphmaze_core::engines::spmv::semiring::PLUS_TIMES;
    for seed in 0..CASES_SLOW {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 24, 80);
        let mut csr = Csr::from_edges(u64::from(n), &edges);
        csr.sort_neighbors();
        let m = DistMatrix::new(&csr, 1).unwrap();
        let mut sim = graphmaze_core::cluster::Sim::new(
            ClusterSpec::single(),
            graphmaze_core::cluster::ExecProfile::combblas(),
        );
        let x: Vec<f64> = (0..n).map(|i| f64::from(i) * 0.5 + 1.0).collect();
        let y = m.spmv_transpose(&mut sim, &x, 1.0, &PLUS_TIMES, 8, 2);
        // dense reference: y[v] = Σ_{u→v} x[u] (multiplicities count)
        let mut want = vec![0.0f64; n as usize];
        for &(u, v) in &edges {
            want[v as usize] += x[u as usize];
        }
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn spgemm_masked_count_matches_triangles() {
    use graphmaze_core::cluster::ClusterSpec;
    use graphmaze_core::engines::spmv::matrix::DistMatrix;
    for seed in 0..CASES_SLOW {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 20, 60);
        // on a DAG orientation, Σ_{(i,j)∈A} A²_ij counts each triangle once
        let el = EdgeList::from_edges(u64::from(n), edges.clone()).unwrap();
        let g = orient_and_sort(&el);
        let m = DistMatrix::new(&g, 1).unwrap();
        let mut sim = graphmaze_core::cluster::Sim::new(
            ClusterSpec::single(),
            graphmaze_core::cluster::ExecProfile::combblas(),
        );
        let (count, _) = m.spgemm_masked_count(&mut sim).unwrap();
        assert_eq!(
            count,
            triangles_brute_force(&edges, n as usize),
            "seed {seed}"
        );
    }
}

#[test]
fn csr_binary_serialization_round_trips() {
    use graphmaze_core::graph::io::{read_binary_csr, write_binary_csr};
    for seed in 0..CASES_SLOW {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 48, 150);
        let csr = Csr::from_edges(u64::from(n), &edges);
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &csr).unwrap();
        assert_eq!(read_binary_csr(&buf[..]).unwrap(), csr, "seed {seed}");
    }
}

#[test]
fn bfs_parents_always_validate() {
    use graphmaze_core::native::bfs::{bfs_with_parents, validate_parents};
    for seed in 0..CASES_SLOW {
        let mut rng = TestRng(seed);
        let (n, edges) = arb_edges(&mut rng, 40, 120);
        let src = rng.below(u64::from(n)) as u32;
        let g = UndirectedGraph::from_edges(u64::from(n), &edges);
        let (dist, parent) = bfs_with_parents(&g, src);
        assert!(validate_parents(&g, src, &dist, &parent), "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Fault-injection properties
// ---------------------------------------------------------------------

use graphmaze_core::cluster::with_faults;

/// Drops the scheduling-dependent `wall_secs` field (always the last
/// field of a journal line) so journal bytes can be compared across
/// `--jobs` settings.
fn strip_wall_secs(line: &str) -> String {
    match line.find(",\"wall_secs\":") {
        Some(i) => format!("{}}}", &line[..i]),
        None => line.to_string(),
    }
}

/// Journal file → sorted, wall-clock-free lines (parallel workers append
/// in completion order, so ordering is the one legitimate difference).
fn normalized_journal(path: &std::path::Path) -> Vec<String> {
    let body = std::fs::read_to_string(path).unwrap();
    let mut lines: Vec<String> = body.lines().map(strip_wall_secs).collect();
    lines.sort();
    lines
}

fn faulted_sweep(faults: FaultPlan) -> Sweep {
    let params = BenchParams::default();
    let spec = WorkloadSpec::Rmat {
        scale: 8,
        edge_factor: 8,
        seed: 61,
    };
    let mut sweep = Sweep::new("faultprop");
    for fw in [Framework::Native, Framework::CombBlas, Framework::Giraph] {
        for alg in [Algorithm::PageRank, Algorithm::Bfs] {
            sweep.push(SweepCell {
                label: format!("{}-{}", alg.name(), fw.name()),
                algorithm: alg,
                framework: fw,
                spec: spec.clone(),
                nodes: 4,
                factor: 1.0,
                params,
                faults,
            });
        }
    }
    // one checkpoint/restart cell: Giraph survives the injected kill
    sweep.push(SweepCell {
        label: "giraph-kill".into(),
        algorithm: Algorithm::PageRank,
        framework: Framework::Giraph,
        spec: spec.clone(),
        nodes: 4,
        factor: 1.0,
        params,
        faults: FaultPlan::parse("seed=7,kill=1@2,ckpt=2").unwrap(),
    });
    sweep
}

/// Same fault plan ⇒ bit-identical `RunReport` and digest, run to run:
/// every decision is a pure function of the plan seed, never of wall
/// clock or thread interleaving.
#[test]
fn same_fault_seed_reproduces_bit_identical_reports() {
    let params = BenchParams::default();
    let wl = Workload::rmat(8, 8, 62);
    let plan = FaultPlan::parse("seed=3,straggler=0.3x4,drop=0.05,mempress=0.1:64M").unwrap();
    for fw in [Framework::CombBlas, Framework::GraphLab, Framework::Giraph] {
        let a = with_faults(plan, || {
            run_benchmark(Algorithm::PageRank, fw, &wl, 4, &params).unwrap()
        });
        let b = with_faults(plan, || {
            run_benchmark(Algorithm::PageRank, fw, &wl, 4, &params).unwrap()
        });
        assert_eq!(a.report, b.report, "{fw:?} report must be bit-identical");
        assert_eq!(a.digest, b.digest, "{fw:?}");
        assert!(
            a.report.recovery.straggler_events > 0,
            "{fw:?}: plan with straggler=0.3 must actually fire"
        );
        // the faults degrade the run but never the answer
        let clean = run_benchmark(Algorithm::PageRank, fw, &wl, 4, &params).unwrap();
        assert_eq!(
            a.digest, clean.digest,
            "{fw:?} faults must not change results"
        );
        assert!(
            a.report.sim_seconds > clean.report.sim_seconds,
            "{fw:?} faulted run must be slower"
        );
    }
}

/// A fault-injected sweep is deterministic across `--jobs`: per-cell
/// reports are bit-identical and the journals byte-identical once the
/// scheduling-dependent `wall_secs` is stripped.
#[test]
fn faulted_sweep_is_bit_identical_across_jobs() {
    let dir = std::env::temp_dir().join(format!("graphmaze-faultprop-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let (j1, j4) = (dir.join("jobs1.jsonl"), dir.join("jobs4.jsonl"));
    let _ = std::fs::remove_file(&j1);
    let _ = std::fs::remove_file(&j4);

    let plan = FaultPlan::parse("seed=11,straggler=0.2x3,drop=0.02").unwrap();
    let sweep = faulted_sweep(plan);
    let serial = sweep.execute(
        &SweepOptions {
            jobs: 1,
            journal: Some(j1.clone()),
            resume: false,
            cell_timeout: None,
            telemetry: None,
        },
        &WorkloadCache::new(),
        &SilentObserver,
    );
    let parallel = sweep.execute(
        &SweepOptions {
            jobs: 4,
            journal: Some(j4.clone()),
            resume: false,
            cell_timeout: None,
            telemetry: None,
        },
        &WorkloadCache::new(),
        &SilentObserver,
    );
    for (i, (s, p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        let (s, p) = (s.outcome.as_ref().unwrap(), p.outcome.as_ref().unwrap());
        assert_eq!(s.report, p.report, "cell {i} report depends on --jobs");
        assert_eq!(s.digest, p.digest, "cell {i}");
    }
    // the kill cell must actually have recovered
    let kill = serial.results.last().unwrap().outcome.as_ref().unwrap();
    assert_eq!(kill.report.recovery.failures, 1, "injected kill must fire");
    assert!(kill.report.recovery.steps_replayed > 0);

    let (l1, l4) = (normalized_journal(&j1), normalized_journal(&j4));
    assert_eq!(l1.len(), sweep.len());
    assert_eq!(l1, l4, "journal content must not depend on --jobs");
    let _ = std::fs::remove_file(&j1);
    let _ = std::fs::remove_file(&j4);
}

/// Straggler severity is monotone: decisions are threshold tests on one
/// hash, so raising the probability only *adds* slow (node, step) slots,
/// and raising the multiplier only slows the same slots further. The
/// simulated time can never decrease.
#[test]
fn straggler_severity_is_monotone_in_probability_and_slowdown() {
    let params = BenchParams::default();
    let wl = Workload::rmat(8, 8, 63);
    let run = |plan: FaultPlan| {
        with_faults(plan, || {
            run_benchmark(Algorithm::PageRank, Framework::Giraph, &wl, 4, &params).unwrap()
        })
    };

    // probability ladder, fixed slowdown
    let mut last_secs = 0.0f64;
    let mut last_events = 0u64;
    for prob in [0.0, 0.1, 0.3, 0.6, 1.0] {
        let plan = FaultPlan {
            seed: 5,
            straggler_prob: prob,
            straggler_slowdown: 3.0,
            ..FaultPlan::none()
        };
        let out = run(plan);
        assert!(
            out.report.sim_seconds >= last_secs,
            "p={prob}: {} < {last_secs}",
            out.report.sim_seconds
        );
        assert!(
            out.report.recovery.straggler_events >= last_events,
            "p={prob}: lower probability fired more events"
        );
        last_secs = out.report.sim_seconds;
        last_events = out.report.recovery.straggler_events;
    }

    // slowdown ladder, fixed probability: same event set, scaled deeper
    let mut last_secs = 0.0f64;
    let mut events = None;
    for slowdown in [1.0, 2.0, 4.0, 8.0] {
        let plan = FaultPlan {
            seed: 5,
            straggler_prob: 0.3,
            straggler_slowdown: slowdown,
            ..FaultPlan::none()
        };
        let out = run(plan);
        assert!(out.report.sim_seconds >= last_secs, "x{slowdown}");
        let e = out.report.recovery.straggler_events;
        assert_eq!(
            *events.get_or_insert(e),
            e,
            "event set must not depend on slowdown"
        );
        last_secs = out.report.sim_seconds;
    }
}

#[test]
fn pagerank_engine_agreement_on_random_graphs() {
    // a deterministic mini-fuzz across engines (full-crossbar fuzzing is
    // too slow; fixed seeds suffice here)
    let params = BenchParams::default();
    for seed in [1u64, 2, 3] {
        let wl = Workload::rmat(8, 6, seed);
        let native =
            run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 2, &params).unwrap();
        for fw in [
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
        ] {
            let out = run_benchmark(Algorithm::PageRank, fw, &wl, 2, &params).unwrap();
            assert!(
                (out.digest - native.digest).abs() / native.digest.abs() < 1e-9,
                "seed {seed} {fw:?}"
            );
        }
    }
}
