//! Property-based tests (proptest) on the core data structures and
//! invariants of the substrate crates.

use graphmaze_core::cluster::compress::{decode, encode_best, encode_with, Encoding};
use graphmaze_core::cluster::{Partition1D, Partition2D};
use graphmaze_core::datagen::{rmat, RmatConfig, RmatParams};
use graphmaze_core::graph::bitvec::BitVec;
use graphmaze_core::graph::csr::{Csr, DirectedGraph, UndirectedGraph};
use graphmaze_core::native::bfs::{bfs, validate_distances, UNREACHED};
use graphmaze_core::native::pagerank::pagerank;
use graphmaze_core::native::triangle::{orient_and_sort, triangles, triangles_brute_force};
use graphmaze_core::prelude::*;
use proptest::prelude::*;

/// Arbitrary edge list over up to 64 vertices.
fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=max_v).prop_flat_map(move |n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..max_e),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_round_trips_edge_multiset((n, edges) in arb_edges(64, 200)) {
        let csr = Csr::from_edges(u64::from(n), &edges);
        prop_assert_eq!(csr.num_edges(), edges.len() as u64);
        // reconstruct and compare as sorted multisets
        let mut rebuilt: Vec<(u32, u32)> = (0..n)
            .flat_map(|v| csr.neighbors(v).iter().map(move |&d| (v, d)))
            .collect();
        let mut orig = edges.clone();
        rebuilt.sort_unstable();
        orig.sort_unstable();
        prop_assert_eq!(rebuilt, orig);
    }

    #[test]
    fn transpose_is_involutive_up_to_adjacency_order((n, edges) in arb_edges(48, 150)) {
        // double transpose preserves the edge multiset (adjacency order
        // within a vertex may differ from insertion order)
        let mut csr = Csr::from_edges(u64::from(n), &edges);
        let mut back = csr.transpose().transpose();
        csr.sort_neighbors();
        back.sort_neighbors();
        prop_assert_eq!(back, csr);
    }

    #[test]
    fn bitvec_matches_hashset_model(ops in proptest::collection::vec((0usize..200, any::<bool>()), 1..100)) {
        let mut bv = BitVec::new(200);
        let mut model = std::collections::HashSet::new();
        for (idx, set) in ops {
            if set {
                bv.set(idx);
                model.insert(idx);
            } else {
                bv.clear(idx);
                model.remove(&idx);
            }
        }
        prop_assert_eq!(bv.count_ones(), model.len());
        for i in 0..200 {
            prop_assert_eq!(bv.get(i), model.contains(&i), "bit {}", i);
        }
        let ones: Vec<usize> = bv.iter_ones().collect();
        let mut want: Vec<usize> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(ones, want);
    }

    #[test]
    fn compression_round_trips(mut ids in proptest::collection::vec(0u32..100_000, 0..500)) {
        ids.sort_unstable();
        ids.dedup();
        let universe = 100_000u64;
        for enc in [Encoding::Raw, Encoding::DeltaVarint, Encoding::Bitmap] {
            let buf = encode_with(&ids, universe, enc);
            prop_assert_eq!(decode(&buf).unwrap(), ids.clone());
        }
        let best = encode_best(&ids, universe);
        prop_assert_eq!(decode(&best).unwrap(), ids);
    }

    #[test]
    fn partition1d_covers_disjointly((n, edges) in arb_edges(64, 200), nodes in 1usize..8) {
        let csr = Csr::from_edges(u64::from(n), &edges);
        let p = Partition1D::balanced_by_edges(&csr, nodes);
        let mut covered = 0u64;
        for node in 0..nodes {
            let r = p.range(node);
            covered += u64::from(r.end - r.start);
            for v in r.start..r.end {
                prop_assert_eq!(p.owner(v), node, "owner({}) in range of {}", v, node);
            }
        }
        prop_assert_eq!(covered, u64::from(n));
        let total_edges: u64 = (0..nodes).map(|k| p.edges_of(&csr, k)).sum();
        prop_assert_eq!(total_edges, csr.num_edges());
    }

    #[test]
    fn partition2d_owner_is_total(nodes in prop_oneof![Just(1usize), Just(4), Just(9), Just(16)],
                                  n in 1u64..200) {
        let p = Partition2D::square(nodes, n).unwrap();
        for u in 0..n.min(40) {
            for v in 0..n.min(40) {
                let o = p.owner(u as u32, v as u32);
                prop_assert!(o < nodes);
            }
        }
    }

    #[test]
    fn triangle_count_matches_brute_force((n, edges) in arb_edges(24, 80)) {
        let el = EdgeList::from_edges(u64::from(n), edges.clone()).unwrap();
        let g = orient_and_sort(&el);
        let fast = triangles(&g, 2);
        let brute = triangles_brute_force(&edges, n as usize);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn bfs_distances_validate((n, edges) in arb_edges(48, 150), src in 0u32..48) {
        let src = src % n;
        let g = UndirectedGraph::from_edges(u64::from(n), &edges);
        let d = bfs(&g, src, 2);
        prop_assert!(validate_distances(&g, src, &d));
        prop_assert_eq!(d[src as usize], 0);
        // triangle inequality along edges
        for v in 0..n {
            for &u in g.adj.neighbors(v) {
                let (dv, du) = (d[v as usize], d[u as usize]);
                if dv != UNREACHED && du != UNREACHED {
                    prop_assert!(dv.abs_diff(du) <= 1);
                }
            }
        }
    }

    #[test]
    fn pagerank_values_bounded_below_by_r((n, edges) in arb_edges(48, 150)) {
        let g = DirectedGraph::from_edges(u64::from(n), &edges);
        let pr = pagerank(&g, 0.3, 5, 2);
        for &v in &pr {
            prop_assert!(v >= 0.3 - 1e-12, "rank {} below r", v);
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn rmat_deterministic_and_in_range(scale in 4u32..9, ef in 1u32..8, seed in any::<u64>()) {
        let cfg = RmatConfig {
            scale, edge_factor: ef, params: RmatParams::GRAPH500,
            seed, scramble_ids: true, threads: 2,
        };
        let a = rmat::generate(&cfg);
        let b = rmat::generate(&cfg);
        prop_assert_eq!(a.edges(), b.edges());
        prop_assert_eq!(a.num_edges(), u64::from(ef) << scale);
        let n = 1u64 << scale;
        prop_assert!(a.edges().iter().all(|&(s, d)| u64::from(s) < n && u64::from(d) < n));
    }

    #[test]
    fn orient_by_id_produces_dag((n, edges) in arb_edges(32, 100)) {
        let mut el = EdgeList::from_edges(u64::from(n), edges).unwrap();
        el.orient_by_id();
        prop_assert!(el.edges().iter().all(|&(s, d)| s < d));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spmv_matches_dense_reference((n, edges) in arb_edges(24, 80)) {
        use graphmaze_core::cluster::ClusterSpec;
        use graphmaze_core::engines::spmv::matrix::DistMatrix;
        use graphmaze_core::engines::spmv::semiring::PLUS_TIMES;
        let mut csr = Csr::from_edges(u64::from(n), &edges);
        csr.sort_neighbors();
        let m = DistMatrix::new(&csr, 1).unwrap();
        let mut sim = graphmaze_core::cluster::Sim::new(
            ClusterSpec::single(),
            graphmaze_core::cluster::ExecProfile::combblas(),
        );
        let x: Vec<f64> = (0..n).map(|i| f64::from(i) * 0.5 + 1.0).collect();
        let y = m.spmv_transpose(&mut sim, &x, 1.0, &PLUS_TIMES, 8, 2);
        // dense reference: y[v] = Σ_{u→v} x[u] (multiplicities count)
        let mut want = vec![0.0f64; n as usize];
        for &(u, v) in &edges {
            want[v as usize] += x[u as usize];
        }
        for (a, b) in y.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    #[test]
    fn spgemm_masked_count_matches_triangles((n, edges) in arb_edges(20, 60)) {
        use graphmaze_core::cluster::ClusterSpec;
        use graphmaze_core::engines::spmv::matrix::DistMatrix;
        // on a DAG orientation, Σ_{(i,j)∈A} A²_ij counts each triangle once
        let el = EdgeList::from_edges(u64::from(n), edges.clone()).unwrap();
        let g = orient_and_sort(&el);
        let m = DistMatrix::new(&g, 1).unwrap();
        let mut sim = graphmaze_core::cluster::Sim::new(
            ClusterSpec::single(),
            graphmaze_core::cluster::ExecProfile::combblas(),
        );
        let (count, _) = m.spgemm_masked_count(&mut sim).unwrap();
        prop_assert_eq!(count, triangles_brute_force(&edges, n as usize));
    }

    #[test]
    fn csr_binary_serialization_round_trips((n, edges) in arb_edges(48, 150)) {
        use graphmaze_core::graph::io::{read_binary_csr, write_binary_csr};
        let csr = Csr::from_edges(u64::from(n), &edges);
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &csr).unwrap();
        prop_assert_eq!(read_binary_csr(&buf[..]).unwrap(), csr);
    }

    #[test]
    fn bfs_parents_always_validate((n, edges) in arb_edges(40, 120), src in 0u32..40) {
        use graphmaze_core::native::bfs::{bfs_with_parents, validate_parents};
        let src = src % n;
        let g = UndirectedGraph::from_edges(u64::from(n), &edges);
        let (dist, parent) = bfs_with_parents(&g, src);
        prop_assert!(validate_parents(&g, src, &dist, &parent));
    }
}

#[test]
fn pagerank_engine_agreement_on_random_graphs() {
    // a deterministic mini-fuzz across engines (proptest shrinking on the
    // full crossbar is too slow; fixed seeds suffice here)
    let params = BenchParams::default();
    for seed in [1u64, 2, 3] {
        let wl = Workload::rmat(8, 6, seed);
        let native =
            run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 2, &params).unwrap();
        for fw in [Framework::CombBlas, Framework::GraphLab, Framework::SociaLite] {
            let out = run_benchmark(Algorithm::PageRank, fw, &wl, 2, &params).unwrap();
            assert!(
                (out.digest - native.digest).abs() / native.digest.abs() < 1e-9,
                "seed {seed} {fw:?}"
            );
        }
    }
}
