//! Cross-framework digest agreement through the Engine trait: every
//! framework's `(digest, report)` pair must carry the same answer for
//! the same input — triangle counts exactly, BFS finite-distance sums
//! exactly, PageRank rank sums within 1e-6.

use graphmaze_core::prelude::*;

const ALL_SEVEN: [Framework; 7] = [
    Framework::Native,
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::SociaLiteUnopt,
    Framework::Giraph,
    Framework::Galois,
];

/// Node count each framework supports (Galois is single-node).
fn nodes_for(fw: Framework) -> usize {
    if fw.multi_node() {
        4
    } else {
        1
    }
}

#[test]
fn pagerank_rank_sums_agree_within_1e_6() {
    let wl = Workload::rmat(10, 8, 2024);
    let params = BenchParams::default();
    let reference = run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 1, &params)
        .expect("native")
        .digest;
    assert!(reference.is_finite() && reference > 0.0);
    for fw in ALL_SEVEN {
        let digest = run_benchmark(Algorithm::PageRank, fw, &wl, nodes_for(fw), &params)
            .unwrap_or_else(|e| panic!("{fw:?}: {e}"))
            .digest;
        assert!(
            (digest - reference).abs() < 1e-6,
            "{fw:?} rank sum {digest} vs native {reference}"
        );
    }
}

#[test]
fn bfs_finite_distance_sums_agree_exactly() {
    let wl = Workload::rmat(10, 8, 2025);
    let params = BenchParams::default();
    let reference = run_benchmark(Algorithm::Bfs, Framework::Native, &wl, 1, &params)
        .expect("native")
        .digest;
    assert!(reference > 0.0, "BFS must reach vertices");
    for fw in ALL_SEVEN {
        let digest = run_benchmark(Algorithm::Bfs, fw, &wl, nodes_for(fw), &params)
            .unwrap_or_else(|e| panic!("{fw:?}: {e}"))
            .digest;
        assert_eq!(digest, reference, "{fw:?} finite-distance sum");
    }
}

#[test]
fn triangle_counts_agree_exactly() {
    let wl = Workload::rmat_triangle(10, 8, 2026);
    let params = BenchParams::default();
    let reference = run_benchmark(Algorithm::TriangleCount, Framework::Native, &wl, 1, &params)
        .expect("native")
        .digest;
    assert!(
        reference > 0.0,
        "triangle-tuned RMAT must contain triangles"
    );
    assert_eq!(reference.fract(), 0.0, "a count is an integer");
    for fw in ALL_SEVEN {
        let digest = run_benchmark(Algorithm::TriangleCount, fw, &wl, nodes_for(fw), &params)
            .unwrap_or_else(|e| panic!("{fw:?}: {e}"))
            .digest;
        assert_eq!(digest, reference, "{fw:?} triangle count");
    }
}

#[test]
fn cf_rmse_is_finite_and_comparable_across_frameworks() {
    let wl = Workload::rmat_ratings(10, 64, 2027);
    let params = BenchParams::default();
    let mut rmses = Vec::new();
    for fw in ALL_SEVEN {
        let digest = run_benchmark(
            Algorithm::CollaborativeFiltering,
            fw,
            &wl,
            nodes_for(fw),
            &params,
        )
        .unwrap_or_else(|e| panic!("{fw:?}: {e}"))
        .digest;
        assert!(digest.is_finite() && digest > 0.0, "{fw:?} rmse {digest}");
        rmses.push(digest);
    }
    // different engines use different factor initializations/schedules,
    // but all must land in the same ballpark on the same ratings
    let (min, max) = rmses
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    assert!(max / min < 3.0, "CF rmse spread too wide: {rmses:?}");
}

#[test]
fn engine_dispatch_matches_framework_names() {
    for fw in ALL_SEVEN {
        assert_eq!(
            fw.engine().name(),
            fw.name(),
            "Framework::engine must dispatch to itself"
        );
    }
}
