//! Sweep executor semantics: parallel runs must match serial runs
//! exactly, the workload cache must build each spec once, a journaled
//! run must resume without re-executing, and a panicking cell must fail
//! alone instead of aborting the sweep.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use graphmaze_core::prelude::*;
use graphmaze_core::sweep::CellError;

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphmaze-sweep-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.jsonl"))
}

/// A small crossbar: 2 workloads × 3 algorithms × 3 frameworks.
fn small_sweep() -> Sweep {
    let params = BenchParams::default();
    let graph = WorkloadSpec::Rmat {
        scale: 8,
        edge_factor: 8,
        seed: 31,
    };
    let tc = WorkloadSpec::RmatTriangle {
        scale: 8,
        edge_factor: 8,
        seed: 32,
    };
    let mut sweep = Sweep::new("test");
    for fw in [Framework::Native, Framework::CombBlas, Framework::Giraph] {
        for (alg, spec) in [
            (Algorithm::PageRank, &graph),
            (Algorithm::Bfs, &graph),
            (Algorithm::TriangleCount, &tc),
        ] {
            sweep.push(SweepCell {
                label: format!("{}-{}", alg.name(), fw.name()),
                algorithm: alg,
                framework: fw,
                spec: spec.clone(),
                nodes: 2,
                factor: 1.5,
                params,
                faults: FaultPlan::none(),
            });
        }
    }
    sweep
}

fn digests(report: &SweepReport) -> Vec<Option<f64>> {
    report
        .results
        .iter()
        .map(|r| r.outcome.as_ref().ok().map(|o| o.digest))
        .collect()
}

#[test]
fn parallel_run_matches_serial_run_exactly() {
    let sweep = small_sweep();
    let serial = sweep.execute(
        &SweepOptions {
            jobs: 1,
            journal: None,
            resume: false,
            cell_timeout: None,
            telemetry: None,
        },
        &WorkloadCache::new(),
        &SilentObserver,
    );
    let parallel = sweep.execute(
        &SweepOptions {
            jobs: 4,
            journal: None,
            resume: false,
            cell_timeout: None,
            telemetry: None,
        },
        &WorkloadCache::new(),
        &SilentObserver,
    );
    assert_eq!(serial.results.len(), parallel.results.len());
    assert_eq!(
        digests(&serial),
        digests(&parallel),
        "digests must not depend on --jobs"
    );
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        let (s, p) = (s.outcome.as_ref().unwrap(), p.outcome.as_ref().unwrap());
        assert_eq!(s.report, p.report, "full reports must not depend on --jobs");
    }
}

#[test]
fn cache_is_shared_across_cells() {
    let sweep = small_sweep();
    let cache = WorkloadCache::new();
    sweep.execute(
        &SweepOptions {
            jobs: 4,
            journal: None,
            resume: false,
            cell_timeout: None,
            telemetry: None,
        },
        &cache,
        &SilentObserver,
    );
    // 9 cells over 2 distinct specs
    assert_eq!(cache.misses(), 2, "each workload built exactly once");
    assert_eq!(cache.hits(), 7, "remaining cells reuse the cache");
}

#[test]
fn resume_skips_journaled_cells_and_reproduces_results() {
    let journal = temp_journal("resume");
    let _ = std::fs::remove_file(&journal);
    let sweep = small_sweep();
    let opts = SweepOptions {
        jobs: 2,
        journal: Some(journal.clone()),
        resume: false,
        cell_timeout: None,
        telemetry: None,
    };
    let first = sweep.execute(&opts, &WorkloadCache::new(), &SilentObserver);
    assert_eq!(first.ran, sweep.len());
    assert_eq!(first.resumed, 0);

    // second run with resume: nothing re-executes, results identical
    let opts = SweepOptions {
        jobs: 2,
        journal: Some(journal.clone()),
        resume: true,
        cell_timeout: None,
        telemetry: None,
    };
    let second = sweep.execute(&opts, &WorkloadCache::new(), &SilentObserver);
    assert_eq!(second.ran, 0, "every cell must come from the journal");
    assert_eq!(second.resumed, sweep.len());
    assert_eq!(digests(&first), digests(&second));
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(
            a.outcome.as_ref().unwrap().report,
            b.outcome.as_ref().unwrap().report,
            "journal round-trip must be bit-exact"
        );
    }
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn resume_runs_only_the_missing_cells() {
    let journal = temp_journal("partial");
    let _ = std::fs::remove_file(&journal);
    let sweep = small_sweep();
    // simulate a killed run: journal only a prefix of the cells
    let mut prefix = Sweep::new(sweep.experiment.clone());
    for cell in &sweep.cells[..4] {
        prefix.push(cell.clone());
    }
    let opts = SweepOptions {
        jobs: 1,
        journal: Some(journal.clone()),
        resume: false,
        cell_timeout: None,
        telemetry: None,
    };
    prefix.execute(&opts, &WorkloadCache::new(), &SilentObserver);

    let opts = SweepOptions {
        jobs: 2,
        journal: Some(journal.clone()),
        resume: true,
        cell_timeout: None,
        telemetry: None,
    };
    let resumed = sweep.execute(&opts, &WorkloadCache::new(), &SilentObserver);
    assert_eq!(resumed.resumed, 4);
    assert_eq!(resumed.ran, sweep.len() - 4);
    assert!(resumed.results.iter().all(|r| r.outcome.is_ok()));
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn panicking_cell_fails_alone() {
    let params = BenchParams::default();
    let spec = WorkloadSpec::Rmat {
        scale: 8,
        edge_factor: 8,
        seed: 33,
    };
    let cell = |fw: Framework, alg: Algorithm, params: BenchParams| SweepCell {
        label: "isolation".into(),
        algorithm: alg,
        framework: fw,
        spec: spec.clone(),
        nodes: 2,
        factor: 1.0,
        params,
        faults: FaultPlan::none(),
    };
    let mut sweep = Sweep::new("isolation");
    sweep.push(cell(Framework::Native, Algorithm::PageRank, params));
    // out-of-range BFS source: the engine panics on this cell
    let poisoned = BenchParams {
        bfs_source: 1 << 30,
        ..params
    };
    sweep.push(cell(Framework::Native, Algorithm::Bfs, poisoned));
    // Galois is single-node: InvalidConfig, not a panic
    sweep.push(cell(Framework::Galois, Algorithm::PageRank, params));
    sweep.push(cell(Framework::Giraph, Algorithm::PageRank, params));

    let report = sweep.execute(
        &SweepOptions {
            jobs: 2,
            journal: None,
            resume: false,
            cell_timeout: None,
            telemetry: None,
        },
        &WorkloadCache::new(),
        &SilentObserver,
    );
    assert!(
        report.results[0].outcome.is_ok(),
        "healthy cell before the panic"
    );
    assert!(
        matches!(report.results[1].outcome, Err(CellError::Panicked(_))),
        "panic must be caught and recorded, got {:?}",
        report.results[1].outcome
    );
    assert!(
        matches!(report.results[2].outcome, Err(CellError::InvalidConfig(_))),
        "impossible configs keep their own failure kind"
    );
    assert!(
        report.results[3].outcome.is_ok(),
        "healthy cell after the panic"
    );
    assert_eq!(report.failed, 2);
    assert_eq!(report.ran, 4);
}

#[test]
fn failed_cells_resume_from_the_journal_too() {
    let journal = temp_journal("failed");
    let _ = std::fs::remove_file(&journal);
    let params = BenchParams::default();
    let mut sweep = Sweep::new("failed");
    sweep.push(SweepCell {
        label: "galois-multinode".into(),
        algorithm: Algorithm::PageRank,
        framework: Framework::Galois,
        spec: WorkloadSpec::Rmat {
            scale: 7,
            edge_factor: 4,
            seed: 34,
        },
        nodes: 2,
        factor: 1.0,
        params,
        faults: FaultPlan::none(),
    });
    let opts = SweepOptions {
        jobs: 1,
        journal: Some(journal.clone()),
        resume: false,
        cell_timeout: None,
        telemetry: None,
    };
    let first = sweep.execute(&opts, &WorkloadCache::new(), &SilentObserver);
    assert!(matches!(
        first.results[0].outcome,
        Err(CellError::InvalidConfig(_))
    ));

    let opts = SweepOptions {
        jobs: 1,
        journal: Some(journal.clone()),
        resume: true,
        cell_timeout: None,
        telemetry: None,
    };
    let second = sweep.execute(&opts, &WorkloadCache::new(), &SilentObserver);
    assert_eq!(second.resumed, 1, "deterministic failures are not retried");
    assert_eq!(first.results[0].outcome, second.results[0].outcome);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn observer_sees_every_terminal_event() {
    let sweep = small_sweep();
    let calls = AtomicUsize::new(0);
    sweep.execute(
        &SweepOptions {
            jobs: 3,
            journal: None,
            resume: false,
            cell_timeout: None,
            telemetry: None,
        },
        &WorkloadCache::new(),
        &|ev: &SweepEvent<'_>| {
            if let SweepEvent::Finished {
                index,
                cell,
                result,
                ..
            }
            | SweepEvent::Failed {
                index,
                cell,
                result,
                ..
            } = ev
            {
                calls.fetch_add(1, Ordering::Relaxed);
                assert!(*index < sweep.len());
                assert!(!cell.label.is_empty());
                assert!(result.wall_secs >= 0.0);
            }
        },
    );
    assert_eq!(calls.load(Ordering::Relaxed), sweep.len());
}
