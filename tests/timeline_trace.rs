//! Step-timeline integration: for every engine and algorithm, the
//! per-step trace must *reconcile exactly* with the aggregate report —
//! `Σ(compute + comm + barrier)` is bit-identical to `sim_seconds` and
//! `Σ bytes_sent` equals the traffic total — and every engine must label
//! its algorithm phases. These invariants are what make the Chrome-trace
//! export and the Fig 6 peak-bandwidth column trustworthy.

use graphmaze_core::cluster::DEFAULT_PHASE;
use graphmaze_core::prelude::*;

const MULTI_NODE_FRAMEWORKS: [Framework; 5] = [
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::SociaLiteUnopt,
    Framework::Giraph,
];

/// `(algorithm, workload)` pairs covering all four paper algorithms.
fn algorithm_workloads() -> Vec<(Algorithm, Workload)> {
    vec![
        (Algorithm::PageRank, Workload::rmat(9, 8, 201)),
        (Algorithm::Bfs, Workload::rmat(9, 8, 201)),
        (Algorithm::TriangleCount, Workload::rmat_triangle(9, 8, 202)),
        (
            Algorithm::CollaborativeFiltering,
            Workload::rmat_ratings(8, 32, 203),
        ),
    ]
}

fn check_reconciliation(outcome: &RunOutcome, what: &str) {
    let r = &outcome.report;
    let tl = &r.timeline;
    assert!(!tl.is_empty(), "{what}: timeline has no steps");
    assert_eq!(
        tl.len(),
        r.steps as usize,
        "{what}: one record per BSP step"
    );
    assert_eq!(
        tl.total_seconds(),
        r.sim_seconds,
        "{what}: timeline seconds must reconcile bit-exactly"
    );
    assert_eq!(
        tl.total_bytes(),
        r.traffic.bytes_sent,
        "{what}: timeline bytes must reconcile exactly"
    );
    assert_eq!(
        tl.peak_mem_bytes(),
        r.peak_mem_bytes,
        "{what}: memory watermark must reconcile"
    );
    // mathematically peak ≥ duration-weighted mean; allow a rounding ulp
    let (peak, mean) = (r.peak_net_bw_per_node(), r.achieved_net_bw_per_node());
    assert!(
        peak >= mean * (1.0 - 1e-12),
        "{what}: peak bw {peak} < mean bw {mean}"
    );
}

#[test]
fn every_engine_reconciles_timeline_with_report() {
    let params = BenchParams::default();
    for (alg, wl) in algorithm_workloads() {
        for fw in MULTI_NODE_FRAMEWORKS {
            for nodes in [2usize, 4] {
                let out = run_benchmark(alg, fw, &wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?} {alg:?} x{nodes}: {e}"));
                check_reconciliation(&out, &format!("{fw:?} {alg:?} x{nodes}"));
            }
        }
        for (fw, nodes) in [(Framework::Native, 4), (Framework::Galois, 1)] {
            let out = run_benchmark(alg, fw, &wl, nodes, &params)
                .unwrap_or_else(|e| panic!("{fw:?} {alg:?} x{nodes}: {e}"));
            check_reconciliation(&out, &format!("{fw:?} {alg:?} x{nodes}"));
        }
    }
}

#[test]
fn every_engine_labels_its_phases() {
    let params = BenchParams::default();
    for (alg, wl) in algorithm_workloads() {
        let mut runs: Vec<(Framework, usize)> = MULTI_NODE_FRAMEWORKS
            .iter()
            .map(|&fw| (fw, 4usize))
            .collect();
        runs.push((Framework::Native, 4));
        runs.push((Framework::Galois, 1));
        for (fw, nodes) in runs {
            let out = run_benchmark(alg, fw, &wl, nodes, &params)
                .unwrap_or_else(|e| panic!("{fw:?} {alg:?}: {e}"));
            let tl = &out.report.timeline;
            assert!(
                tl.steps.iter().any(|s| s.phase != DEFAULT_PHASE),
                "{fw:?} {alg:?}: no step carries an engine phase label (got {:?})",
                tl.phase_breakdown()
                    .iter()
                    .map(|p| p.phase.clone())
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn overlap_engines_report_only_exposed_comm() {
    // native PageRank overlaps compute with communication: the timeline's
    // comm lane holds only the *exposed* (uncovered) part, so per-step
    // durations still sum to the clock, while the aggregate
    // `comm_seconds` keeps the raw communication time.
    let wl = Workload::rmat(10, 8, 204);
    let params = BenchParams::default();
    let out = run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 4, &params)
        .expect("native pagerank");
    let r = &out.report;
    let lane_comm: f64 = r.timeline.steps.iter().map(|s| s.comm_s).sum();
    assert!(
        lane_comm <= r.comm_seconds,
        "exposed comm {lane_comm} must not exceed raw comm {}",
        r.comm_seconds
    );
}
