//! Cross-engine equivalence: every framework must compute the same
//! answers as the hand-optimized native code, on multiple graphs and
//! node counts — the correctness backbone of the whole study. (The paper
//! compares *performance*; these tests pin down that our engines really
//! run the same algorithms.)
//!
//! The centerpiece is the **conformance matrix**: every
//! `algorithm × framework` cell checked against the native golden digest
//! on two graph scales. When a per-vertex algorithm diverges, the
//! failure message names the *first diverging vertex* with both values,
//! computed by re-running the concrete engine functions — not just "the
//! digests differ".

use graphmaze_core::prelude::*;
use graphmaze_engines::datalog::socialite;
use graphmaze_engines::graphmat;
use graphmaze_engines::spmv::combblas;
use graphmaze_engines::taskpar::galois;
use graphmaze_engines::vertex::{giraph, graphlab};
use graphmaze_graph::{DirectedGraph, RatingsGraph, UndirectedGraph};
use graphmaze_native::{NativeOptions, PAGERANK_R};

const MULTI_NODE_FRAMEWORKS: [Framework; 6] = [
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::SociaLiteUnopt,
    Framework::Giraph,
    Framework::GraphMat,
];

fn graph_workloads() -> Vec<Workload> {
    vec![
        Workload::rmat(9, 8, 101),
        Workload::rmat_triangle(9, 8, 102),
        Workload::from_dataset(Dataset::FacebookLike, 13, 103),
    ]
}

#[test]
fn pagerank_identical_across_engines_and_node_counts() {
    let params = BenchParams::default();
    for wl in graph_workloads() {
        let reference = run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 1, &params)
            .expect("native single node");
        for nodes in [1usize, 2, 4, 8] {
            let native = run_benchmark(Algorithm::PageRank, Framework::Native, &wl, nodes, &params)
                .expect("native");
            assert!(
                (native.digest - reference.digest).abs() / reference.digest.abs() < 1e-9,
                "native digest varies with node count on {}",
                wl.name
            );
            for fw in MULTI_NODE_FRAMEWORKS {
                let out = run_benchmark(Algorithm::PageRank, fw, &wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?} on {} x{nodes}: {e}", wl.name));
                let rel = (out.digest - reference.digest).abs() / reference.digest.abs();
                assert!(rel < 1e-9, "{fw:?} on {} x{nodes}: rel err {rel}", wl.name);
            }
        }
        // Galois, single node
        let out =
            run_benchmark(Algorithm::PageRank, Framework::Galois, &wl, 1, &params).expect("galois");
        assert!((out.digest - reference.digest).abs() / reference.digest.abs() < 1e-9);
    }
}

#[test]
fn bfs_distances_identical_across_engines() {
    let params = BenchParams::default();
    for wl in graph_workloads() {
        let reference =
            run_benchmark(Algorithm::Bfs, Framework::Native, &wl, 1, &params).expect("native");
        for nodes in [2usize, 4] {
            for fw in MULTI_NODE_FRAMEWORKS {
                let out = run_benchmark(Algorithm::Bfs, fw, &wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?} on {}: {e}", wl.name));
                assert_eq!(
                    out.digest, reference.digest,
                    "{fw:?} on {} x{nodes}",
                    wl.name
                );
            }
        }
        let galois =
            run_benchmark(Algorithm::Bfs, Framework::Galois, &wl, 1, &params).expect("galois");
        assert_eq!(galois.digest, reference.digest, "galois on {}", wl.name);
    }
}

#[test]
fn triangle_counts_identical_across_engines() {
    let params = BenchParams::default();
    for wl in graph_workloads() {
        let reference = run_benchmark(Algorithm::TriangleCount, Framework::Native, &wl, 1, &params)
            .expect("native");
        assert!(reference.digest >= 0.0);
        for nodes in [2usize, 4] {
            for fw in MULTI_NODE_FRAMEWORKS {
                let out = run_benchmark(Algorithm::TriangleCount, fw, &wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?} on {}: {e}", wl.name));
                assert_eq!(
                    out.digest, reference.digest,
                    "{fw:?} on {} x{nodes}",
                    wl.name
                );
            }
        }
        let galois = run_benchmark(Algorithm::TriangleCount, Framework::Galois, &wl, 1, &params)
            .expect("galois");
        assert_eq!(galois.digest, reference.digest);
    }
}

#[test]
fn cf_training_error_drops_under_every_engine() {
    let params = BenchParams {
        cf_iterations: 5,
        ..BenchParams::default()
    };
    let wl = Workload::rmat_ratings(9, 64, 104);
    let g = wl.ratings.as_ref().unwrap();
    // untrained rmse baseline: tiny random factors predict ~0 stars
    let untrained = {
        let mut sse = 0.0;
        for (_, _, r) in g.triples() {
            sse += f64::from(r) * f64::from(r);
        }
        (sse / g.num_ratings() as f64).sqrt()
    };
    for fw in Framework::EXTENDED {
        let nodes = if fw.multi_node() { 4 } else { 1 };
        let out = run_benchmark(Algorithm::CollaborativeFiltering, fw, &wl, nodes, &params)
            .unwrap_or_else(|e| panic!("{fw:?}: {e}"));
        assert!(
            out.digest < untrained,
            "{fw:?}: trained rmse {} !< untrained {untrained}",
            out.digest
        );
    }
}

// ---------------------------------------------------------------------
// Conformance matrix
// ---------------------------------------------------------------------

/// Relative tolerance for floating-point digests (PageRank): the engines
/// reorder the same additions, nothing more.
const REL_TOL: f64 = 1e-9;

/// The per-vertex PageRank vector from each framework's concrete engine
/// function (the same call the [`Engine`] impls make), for divergence
/// reporting.
fn pagerank_vector(
    fw: Framework,
    g: &DirectedGraph,
    nodes: usize,
    params: &BenchParams,
) -> Vec<f64> {
    let iters = params.pr_iterations;
    let ranks = match fw {
        Framework::Native => graphmaze_native::pagerank::pagerank_cluster(
            g,
            PAGERANK_R,
            iters,
            NativeOptions::all(),
            nodes,
        )
        .map(|(r, _)| r),
        Framework::CombBlas => combblas::pagerank(g, PAGERANK_R, iters, nodes).map(|(r, _)| r),
        Framework::GraphLab => graphlab::pagerank(g, PAGERANK_R, iters, nodes).map(|(r, _)| r),
        Framework::SociaLite => {
            socialite::pagerank(g, PAGERANK_R, iters, nodes, true).map(|(r, _)| r)
        }
        Framework::SociaLiteUnopt => {
            socialite::pagerank(g, PAGERANK_R, iters, nodes, false).map(|(r, _)| r)
        }
        Framework::Giraph => giraph::pagerank(g, PAGERANK_R, iters, nodes).map(|(r, _)| r),
        Framework::Galois => galois::pagerank(g, PAGERANK_R, iters, nodes).map(|(r, _)| r),
        Framework::GraphMat => graphmat::pagerank(g, PAGERANK_R, iters, nodes).map(|(r, _)| r),
    };
    ranks.unwrap_or_else(|e| panic!("{fw:?} pagerank vector: {e}"))
}

/// The per-vertex BFS distance vector from each framework's concrete
/// engine function.
fn bfs_vector(fw: Framework, g: &UndirectedGraph, source: u32, nodes: usize) -> Vec<u32> {
    let dist = match fw {
        Framework::Native => {
            graphmaze_native::bfs::bfs_cluster(g, source, NativeOptions::all(), nodes)
                .map(|(d, _)| d)
        }
        Framework::CombBlas => combblas::bfs(g, source, nodes).map(|(d, _)| d),
        Framework::GraphLab => graphlab::bfs(g, source, nodes).map(|(d, _)| d),
        Framework::SociaLite => socialite::bfs(g, source, nodes, true).map(|(d, _)| d),
        Framework::SociaLiteUnopt => socialite::bfs(g, source, nodes, false).map(|(d, _)| d),
        Framework::Giraph => giraph::bfs(g, source, nodes).map(|(d, _)| d),
        Framework::Galois => galois::bfs(g, source, nodes).map(|(d, _)| d),
        Framework::GraphMat => graphmat::bfs(g, source, nodes).map(|(d, _)| d),
    };
    dist.unwrap_or_else(|e| panic!("{fw:?} bfs vector: {e}"))
}

/// The BFS source `run_benchmark` picks for `bfs_source == u32::MAX`:
/// the highest-degree vertex.
fn default_bfs_source(g: &UndirectedGraph) -> u32 {
    (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.adj.degree(v))
        .unwrap_or(0)
}

/// First index where `got` diverges from `reference` beyond `rel_tol`,
/// with both values. A length mismatch diverges at the shorter length.
fn first_divergence_f64(reference: &[f64], got: &[f64], rel_tol: f64) -> Option<(usize, f64, f64)> {
    if reference.len() != got.len() {
        let n = reference.len().min(got.len());
        return Some((
            n,
            *reference.get(n).unwrap_or(&f64::NAN),
            *got.get(n).unwrap_or(&f64::NAN),
        ));
    }
    reference
        .iter()
        .zip(got)
        .enumerate()
        .find_map(|(i, (&a, &b))| {
            let rel = (a - b).abs() / a.abs().max(1e-300);
            (rel > rel_tol).then_some((i, a, b))
        })
}

/// First index where two exact (integer) vectors differ.
fn first_divergence_u32(reference: &[u32], got: &[u32]) -> Option<(usize, u32, u32)> {
    if reference.len() != got.len() {
        let n = reference.len().min(got.len());
        return Some((
            n,
            *reference.get(n).unwrap_or(&u32::MAX),
            *got.get(n).unwrap_or(&u32::MAX),
        ));
    }
    reference
        .iter()
        .zip(got)
        .enumerate()
        .find_map(|(i, (&a, &b))| (a != b).then_some((i, a, b)))
}

/// Readable one-line diff for a PageRank divergence: which vertex first
/// disagrees, both values, and how far in the vectors still agreed.
fn pagerank_diff(fw: Framework, g: &DirectedGraph, nodes: usize, params: &BenchParams) -> String {
    let reference = pagerank_vector(Framework::Native, g, 1, params);
    let got = pagerank_vector(fw, g, nodes, params);
    match first_divergence_f64(&reference, &got, REL_TOL) {
        Some((v, want, have)) => format!(
            "first diverging vertex: v={v} — native {want:.17e} vs {} {have:.17e} \
             (rel err {:.3e}); first {v} vertices agree",
            fw.name(),
            (want - have).abs() / want.abs().max(1e-300),
        ),
        None => "per-vertex ranks agree; digest-only divergence (summation order?)".to_string(),
    }
}

/// Readable one-line diff for a BFS divergence.
fn bfs_diff(fw: Framework, g: &UndirectedGraph, source: u32, nodes: usize) -> String {
    let reference = bfs_vector(Framework::Native, g, source, 1);
    let got = bfs_vector(fw, g, source, nodes);
    match first_divergence_u32(&reference, &got) {
        Some((v, want, have)) => {
            let show = |d: u32| {
                if d == u32::MAX {
                    "unreached".to_string()
                } else {
                    d.to_string()
                }
            };
            format!(
                "first diverging vertex: v={v} — native dist {} vs {} dist {}; \
                 first {v} vertices agree",
                show(want),
                fw.name(),
                show(have),
            )
        }
        None => "per-vertex distances agree; digest-only divergence".to_string(),
    }
}

fn untrained_rmse(g: &RatingsGraph) -> f64 {
    let mut sse = 0.0;
    for (_, _, r) in g.triples() {
        sse += f64::from(r) * f64::from(r);
    }
    (sse / g.num_ratings().max(1) as f64).sqrt()
}

/// The full conformance matrix: every `algorithm × framework` cell of
/// [`Framework::EXTENDED`] (28 cells) against the native golden, on **two**
/// graph scales. Exact digest equality for BFS and triangle counting,
/// `1e-9` relative for PageRank, convergence-below-untrained for CF
/// (whose engines legitimately differ — SGD vs GD). Failures for the
/// per-vertex algorithms report the first diverging vertex.
#[test]
fn conformance_matrix_covers_every_algorithm_and_framework_on_two_scales() {
    let params = BenchParams::default();
    for scale in [8u32, 10] {
        let graph = Workload::rmat(scale, 8, 200 + u64::from(scale));
        let ratings = Workload::rmat_ratings(scale, 64, 210 + u64::from(scale));
        let untrained = untrained_rmse(ratings.ratings().unwrap());
        let mut cells = 0usize;
        for alg in Algorithm::ALL {
            let wl = if alg == Algorithm::CollaborativeFiltering {
                &ratings
            } else {
                &graph
            };
            let golden = run_benchmark(alg, Framework::Native, wl, 1, &params)
                .unwrap_or_else(|e| panic!("native golden {alg:?} on {}: {e}", wl.name));
            for fw in Framework::EXTENDED {
                let nodes = if fw.multi_node() { 4 } else { 1 };
                let out = run_benchmark(alg, fw, wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?}/{alg:?} on {} x{nodes}: {e}", wl.name));
                match alg {
                    Algorithm::PageRank => {
                        let rel =
                            (out.digest - golden.digest).abs() / golden.digest.abs().max(1e-300);
                        assert!(
                            rel < REL_TOL,
                            "{fw:?} pagerank on {} x{nodes}: digest {} vs native {} \
                             (rel err {rel:.3e})\n{}",
                            wl.name,
                            out.digest,
                            golden.digest,
                            pagerank_diff(fw, graph.directed().unwrap(), nodes, &params),
                        );
                    }
                    Algorithm::Bfs => {
                        let g = graph.undirected().unwrap();
                        assert!(
                            out.digest == golden.digest,
                            "{fw:?} bfs on {} x{nodes}: digest {} vs native {}\n{}",
                            wl.name,
                            out.digest,
                            golden.digest,
                            bfs_diff(fw, g, default_bfs_source(g), nodes),
                        );
                    }
                    Algorithm::TriangleCount => {
                        assert!(
                            out.digest == golden.digest,
                            "{fw:?} triangle count on {} x{nodes}: {} vs native {}",
                            wl.name,
                            out.digest,
                            golden.digest,
                        );
                    }
                    Algorithm::CollaborativeFiltering => {
                        assert!(
                            out.digest.is_finite() && out.digest > 0.0 && out.digest < untrained,
                            "{fw:?} cf on {} x{nodes}: trained rmse {} !< untrained {untrained} \
                             (native golden {})",
                            wl.name,
                            out.digest,
                            golden.digest,
                        );
                    }
                    Algorithm::MsBfs => unreachable!("MsBfs is not in Algorithm::ALL"),
                }
                cells += 1;
            }
        }
        assert_eq!(cells, 28, "4 algorithms x 7 frameworks at scale {scale}");
    }
}

/// The per-source distance rows from each framework's concrete
/// multi-source BFS port. Only five frameworks have one (SociaLite's
/// Datalog model and Galois' task queues have no word-parallel
/// equivalent — their Engine impls return `InvalidConfig`). GraphMat's
/// port is not hand-written: the word-wise OR gather lowers onto the
/// `OR_PASS` algebra automatically.
fn msbfs_rows_for(
    fw: Framework,
    g: &UndirectedGraph,
    sources: &[u32],
    nodes: usize,
) -> Vec<Vec<u32>> {
    let rows = match fw {
        Framework::Native => {
            graphmaze_native::msbfs::msbfs_cluster(g, sources, NativeOptions::all(), nodes)
                .map(|(r, _)| r)
        }
        Framework::CombBlas => combblas::msbfs(g, sources, nodes).map(|(r, _)| r),
        Framework::GraphLab => graphlab::msbfs(g, sources, nodes).map(|(r, _)| r),
        Framework::Giraph => giraph::msbfs(g, sources, nodes).map(|(r, _)| r),
        Framework::GraphMat => graphmat::msbfs(g, sources, nodes).map(|(r, _)| r),
        _ => panic!("{fw:?} has no msbfs port"),
    };
    rows.unwrap_or_else(|e| panic!("{fw:?} msbfs rows: {e}"))
}

/// Readable one-line diff for an msbfs divergence: which (source, vertex)
/// cell first disagrees, with both distances.
fn msbfs_diff(fw: Framework, g: &UndirectedGraph, sources: &[u32], nodes: usize) -> String {
    let reference = msbfs_rows_for(Framework::Native, g, sources, 1);
    let got = msbfs_rows_for(fw, g, sources, nodes);
    if reference.len() != got.len() {
        return format!(
            "row count mismatch: native {} rows vs {} {} rows",
            reference.len(),
            fw.name(),
            got.len()
        );
    }
    for (i, (want, have)) in reference.iter().zip(&got).enumerate() {
        if let Some((v, a, b)) = first_divergence_u32(want, have) {
            let show = |d: u32| {
                if d == u32::MAX {
                    "unreached".to_string()
                } else {
                    d.to_string()
                }
            };
            return format!(
                "first diverging cell: source #{i} (vertex {}), v={v} — native dist {} vs {} \
                 dist {}; first {v} vertices of that row agree",
                sources[i],
                show(a),
                fw.name(),
                show(b),
            );
        }
    }
    "per-source rows agree; digest-only divergence".to_string()
}

/// The msbfs extension column of the conformance matrix: every framework
/// with a bit-parallel multi-source BFS port against the native golden,
/// on two graph scales and two node counts. Distances are exact, so the
/// digests must match bit-for-bit; failures name the first diverging
/// (source, vertex) cell. SociaLite and Galois must report `n/a` via
/// `InvalidConfig` rather than fabricating a result.
#[test]
fn msbfs_conformance_cells_match_native_on_two_scales() {
    let params = BenchParams::default();
    let ported = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::Giraph,
        Framework::GraphMat,
    ];
    for scale in [8u32, 10] {
        let wl = Workload::rmat(scale, 8, 200 + u64::from(scale));
        let g = wl.undirected().unwrap();
        let sources = graphmaze_core::runner::msbfs_sources(
            g.num_vertices() as u32,
            params.msbfs_sources,
            params.msbfs_seed,
        );
        let golden = run_benchmark(Algorithm::MsBfs, Framework::Native, &wl, 1, &params)
            .unwrap_or_else(|e| panic!("native msbfs golden on {}: {e}", wl.name));
        let mut cells = 0usize;
        for fw in ported {
            for nodes in [2usize, 4] {
                let out = run_benchmark(Algorithm::MsBfs, fw, &wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?} msbfs on {} x{nodes}: {e}", wl.name));
                assert!(
                    out.digest == golden.digest,
                    "{fw:?} msbfs on {} x{nodes}: digest {} vs native {}\n{}",
                    wl.name,
                    out.digest,
                    golden.digest,
                    msbfs_diff(fw, g, &sources, nodes),
                );
                cells += 1;
            }
        }
        assert_eq!(cells, 10, "5 ported frameworks x 2 node counts");
        // frameworks without a port stay honest "n/a" cells
        for fw in [Framework::SociaLite, Framework::Galois] {
            let nodes = if fw.multi_node() { 2 } else { 1 };
            let err = run_benchmark(Algorithm::MsBfs, fw, &wl, nodes, &params)
                .expect_err("unported framework must refuse msbfs");
            assert!(
                matches!(err, SimError::InvalidConfig(_)),
                "{fw:?}: expected InvalidConfig, got {err:?}"
            );
        }
    }
}

/// Stronger than the digest matrix: the *per-vertex* PageRank and BFS
/// vectors agree elementwise across all eight engine variants (including
/// the unoptimized SociaLite and the lowered GraphMat). This is the same machinery the diff
/// reporting uses, exercised on the success path.
#[test]
fn per_vertex_vectors_agree_across_all_engines() {
    let params = BenchParams::default();
    let wl = Workload::rmat(9, 8, 106);
    let g = wl.directed().unwrap();
    let u = wl.undirected().unwrap();
    let source = default_bfs_source(u);
    let ranks = pagerank_vector(Framework::Native, g, 1, &params);
    let dist = bfs_vector(Framework::Native, u, source, 1);
    let all = [
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::SociaLiteUnopt,
        Framework::Giraph,
        Framework::Galois,
        Framework::GraphMat,
    ];
    for fw in all {
        let nodes = if fw.multi_node() { 4 } else { 1 };
        let got = pagerank_vector(fw, g, nodes, &params);
        if let Some((v, want, have)) = first_divergence_f64(&ranks, &got, REL_TOL) {
            panic!("{fw:?} pagerank v={v}: native {want:.17e} vs {have:.17e}");
        }
        let gd = bfs_vector(fw, u, source, nodes);
        if let Some((v, want, have)) = first_divergence_u32(&dist, &gd) {
            panic!("{fw:?} bfs v={v}: native dist {want} vs {have}");
        }
    }
}

/// The divergence reporters must localize a *planted* divergence at the
/// right vertex — otherwise a real conformance failure would point at
/// the wrong place.
#[test]
fn divergence_reporters_localize_planted_divergences() {
    let reference = vec![1.0, 2.0, 3.0, 4.0];
    assert_eq!(first_divergence_f64(&reference, &reference, REL_TOL), None);
    let mut bad = reference.clone();
    bad[2] = 3.5;
    assert_eq!(
        first_divergence_f64(&reference, &bad, REL_TOL),
        Some((2, 3.0, 3.5))
    );
    // sub-tolerance wiggle is not a divergence
    let mut wiggle = reference.clone();
    wiggle[1] = 2.0 * (1.0 + 1e-12);
    assert_eq!(first_divergence_f64(&reference, &wiggle, REL_TOL), None);
    // length mismatch diverges at the shorter length
    assert_eq!(
        first_divergence_f64(&reference, &reference[..3], REL_TOL).map(|(i, ..)| i),
        Some(3)
    );

    let d = vec![0u32, 1, 2, u32::MAX];
    assert_eq!(first_divergence_u32(&d, &d), None);
    let mut bd = d.clone();
    bd[3] = 3;
    assert_eq!(first_divergence_u32(&d, &bd), Some((3, u32::MAX, 3)));
}

#[test]
fn native_is_never_slower_than_any_framework() {
    let params = BenchParams::default();
    let graph = Workload::rmat(10, 8, 105);
    let ratings = Workload::rmat_ratings(9, 64, 105);
    for alg in Algorithm::ALL {
        let wl = if alg == Algorithm::CollaborativeFiltering {
            &ratings
        } else {
            &graph
        };
        for nodes in [1usize, 4] {
            let native = run_benchmark(alg, Framework::Native, wl, nodes, &params).unwrap();
            for fw in Framework::EXTENDED {
                if fw == Framework::Native || (!fw.multi_node() && nodes > 1) {
                    continue;
                }
                let out = run_benchmark(alg, fw, wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?}/{alg:?} x{nodes}: {e}"));
                assert!(
                    out.report.sim_seconds >= native.report.sim_seconds * 0.99,
                    "{fw:?} beat native on {alg:?} x{nodes}: {} < {}",
                    out.report.sim_seconds,
                    native.report.sim_seconds
                );
            }
        }
    }
}
