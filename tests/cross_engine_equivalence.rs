//! Cross-engine equivalence: every framework must compute the same
//! answers as the hand-optimized native code, on multiple graphs and
//! node counts — the correctness backbone of the whole study. (The paper
//! compares *performance*; these tests pin down that our five engines
//! really run the same algorithms.)

use graphmaze_core::prelude::*;

const MULTI_NODE_FRAMEWORKS: [Framework; 5] = [
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::SociaLiteUnopt,
    Framework::Giraph,
];

fn graph_workloads() -> Vec<Workload> {
    vec![
        Workload::rmat(9, 8, 101),
        Workload::rmat_triangle(9, 8, 102),
        Workload::from_dataset(Dataset::FacebookLike, 13, 103),
    ]
}

#[test]
fn pagerank_identical_across_engines_and_node_counts() {
    let params = BenchParams::default();
    for wl in graph_workloads() {
        let reference = run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 1, &params)
            .expect("native single node");
        for nodes in [1usize, 2, 4, 8] {
            let native = run_benchmark(Algorithm::PageRank, Framework::Native, &wl, nodes, &params)
                .expect("native");
            assert!(
                (native.digest - reference.digest).abs() / reference.digest.abs() < 1e-9,
                "native digest varies with node count on {}",
                wl.name
            );
            for fw in MULTI_NODE_FRAMEWORKS {
                let out = run_benchmark(Algorithm::PageRank, fw, &wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?} on {} x{nodes}: {e}", wl.name));
                let rel = (out.digest - reference.digest).abs() / reference.digest.abs();
                assert!(rel < 1e-9, "{fw:?} on {} x{nodes}: rel err {rel}", wl.name);
            }
        }
        // Galois, single node
        let out =
            run_benchmark(Algorithm::PageRank, Framework::Galois, &wl, 1, &params).expect("galois");
        assert!((out.digest - reference.digest).abs() / reference.digest.abs() < 1e-9);
    }
}

#[test]
fn bfs_distances_identical_across_engines() {
    let params = BenchParams::default();
    for wl in graph_workloads() {
        let reference =
            run_benchmark(Algorithm::Bfs, Framework::Native, &wl, 1, &params).expect("native");
        for nodes in [2usize, 4] {
            for fw in MULTI_NODE_FRAMEWORKS {
                let out = run_benchmark(Algorithm::Bfs, fw, &wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?} on {}: {e}", wl.name));
                assert_eq!(
                    out.digest, reference.digest,
                    "{fw:?} on {} x{nodes}",
                    wl.name
                );
            }
        }
        let galois =
            run_benchmark(Algorithm::Bfs, Framework::Galois, &wl, 1, &params).expect("galois");
        assert_eq!(galois.digest, reference.digest, "galois on {}", wl.name);
    }
}

#[test]
fn triangle_counts_identical_across_engines() {
    let params = BenchParams::default();
    for wl in graph_workloads() {
        let reference = run_benchmark(Algorithm::TriangleCount, Framework::Native, &wl, 1, &params)
            .expect("native");
        assert!(reference.digest >= 0.0);
        for nodes in [2usize, 4] {
            for fw in MULTI_NODE_FRAMEWORKS {
                let out = run_benchmark(Algorithm::TriangleCount, fw, &wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?} on {}: {e}", wl.name));
                assert_eq!(
                    out.digest, reference.digest,
                    "{fw:?} on {} x{nodes}",
                    wl.name
                );
            }
        }
        let galois = run_benchmark(Algorithm::TriangleCount, Framework::Galois, &wl, 1, &params)
            .expect("galois");
        assert_eq!(galois.digest, reference.digest);
    }
}

#[test]
fn cf_training_error_drops_under_every_engine() {
    let params = BenchParams {
        cf_iterations: 5,
        ..BenchParams::default()
    };
    let wl = Workload::rmat_ratings(9, 64, 104);
    let g = wl.ratings.as_ref().unwrap();
    // untrained rmse baseline: tiny random factors predict ~0 stars
    let untrained = {
        let mut sse = 0.0;
        for (_, _, r) in g.triples() {
            sse += f64::from(r) * f64::from(r);
        }
        (sse / g.num_ratings() as f64).sqrt()
    };
    for fw in Framework::ALL {
        let nodes = if fw.multi_node() { 4 } else { 1 };
        let out = run_benchmark(Algorithm::CollaborativeFiltering, fw, &wl, nodes, &params)
            .unwrap_or_else(|e| panic!("{fw:?}: {e}"));
        assert!(
            out.digest < untrained,
            "{fw:?}: trained rmse {} !< untrained {untrained}",
            out.digest
        );
    }
}

#[test]
fn native_is_never_slower_than_any_framework() {
    let params = BenchParams::default();
    let graph = Workload::rmat(10, 8, 105);
    let ratings = Workload::rmat_ratings(9, 64, 105);
    for alg in Algorithm::ALL {
        let wl = if alg == Algorithm::CollaborativeFiltering {
            &ratings
        } else {
            &graph
        };
        for nodes in [1usize, 4] {
            let native = run_benchmark(alg, Framework::Native, wl, nodes, &params).unwrap();
            for fw in Framework::ALL {
                if fw == Framework::Native || (!fw.multi_node() && nodes > 1) {
                    continue;
                }
                let out = run_benchmark(alg, fw, wl, nodes, &params)
                    .unwrap_or_else(|e| panic!("{fw:?}/{alg:?} x{nodes}: {e}"));
                assert!(
                    out.report.sim_seconds >= native.report.sim_seconds * 0.99,
                    "{fw:?} beat native on {alg:?} x{nodes}: {} < {}",
                    out.report.sim_seconds,
                    native.report.sim_seconds
                );
            }
        }
    }
}
