//! Elastic membership properties: joins, graceful leaves and
//! heterogeneous hardware profiles may move *where* logical partitions
//! live, but never *what* the engines compute. Grow-then-shrink runs
//! must produce digests bit-identical to static runs, rebalance traffic
//! must reconcile exactly with the communication matrix, and membership
//! timelines must be `--jobs`-invariant and monotone in event count.

use graphmaze_core::cluster::with_faults;
use graphmaze_core::prelude::*;

fn workload() -> Workload {
    Workload::rmat(9, 8, 41)
}

fn run(alg: Algorithm, fw: Framework, wl: &Workload, plan: FaultPlan) -> RunOutcome {
    let params = BenchParams::default();
    with_faults(plan, || run_benchmark(alg, fw, wl, 2, &params)).expect("cell runs")
}

#[test]
fn grow_then_shrink_digests_are_bit_identical_to_static() {
    let wl = workload();
    // node 2 joins at the barrier ending step 1 and gracefully leaves at
    // step 3 (the shortest engine here, native BFS, runs 4 steps) — by
    // the end the active set, and therefore the placement, is the
    // static one
    let plan = FaultPlan::parse("seed=3,ckpt=2,join=2@1,leave=2@3").expect("valid spec");
    for (alg, fw) in [
        (Algorithm::PageRank, Framework::Native),
        (Algorithm::PageRank, Framework::GraphLab),
        (Algorithm::Bfs, Framework::Native),
        (Algorithm::Bfs, Framework::Giraph),
    ] {
        let fixed = run(alg, fw, &wl, FaultPlan::none());
        let elastic = run(alg, fw, &wl, plan);
        assert_eq!(
            fixed.digest.to_bits(),
            elastic.digest.to_bits(),
            "{}×{}: elastic digest diverged",
            alg.name(),
            fw.name()
        );
        let reb = &elastic.report.rebalance;
        assert_eq!(reb.joins, 1, "{}×{}", alg.name(), fw.name());
        assert_eq!(reb.leaves, 1);
        assert_eq!(reb.rebalances, 2);
        assert_eq!(reb.peak_nodes, 3);
        assert_eq!(reb.final_nodes, 2, "shrunk back to the logical width");
        assert!(fixed.report.rebalance.is_zero(), "static runs report zero");
    }
}

#[test]
fn rebalance_traffic_reconciles_with_the_matrix() {
    let wl = workload();
    let plan = FaultPlan::parse("seed=3,join=2@1,leave=1@3").expect("valid spec");
    let out = run(Algorithm::PageRank, Framework::Native, &wl, plan);
    let r = &out.report;
    let reb = &r.rebalance;
    assert!(reb.migrated_bytes > 0, "the leave must migrate state");
    assert!(reb.migrated_vertices > 0);
    // the matrix covers every physical node the run ever had, and its
    // row sums reconcile exactly with the per-node wire totals —
    // migration bytes included
    assert_eq!(r.matrix.nodes, 3, "2 logical + 1 joined");
    assert_eq!(r.node_sent_bytes.len(), 3);
    for node in 0..r.matrix.nodes {
        assert_eq!(
            r.matrix.row_bytes(node),
            r.node_sent_bytes[node],
            "node {node} row sum"
        );
    }
    assert_eq!(
        r.traffic.bytes_sent,
        r.node_sent_bytes.iter().sum::<u64>(),
        "traffic total is the matrix total plus nothing else"
    );
    // the stall the barriers paid is exactly the membership lane
    let lane: f64 = r.timeline.steps.iter().map(|s| s.rebalance_s).sum();
    assert_eq!(lane, reb.stall_seconds, "timeline lane reconciles");
    assert!(lane > 0.0, "migration stalls the barrier");
    assert_eq!(r.timeline.total_seconds(), r.sim_seconds);
}

#[test]
fn membership_timelines_are_jobs_invariant() {
    let params = BenchParams::default();
    let spec = WorkloadSpec::Rmat {
        scale: 9,
        edge_factor: 8,
        seed: 41,
    };
    let plans = [
        "seed=3,join=2@2,leave=2@5",
        "seed=3,hw=1:oldgen",
        "seed=3,join=2@1,leave=1@3,hw=2:slownic",
    ];
    let mut sweep = Sweep::new("elasticity-test");
    for (i, plan) in plans.iter().enumerate() {
        for fw in [Framework::Native, Framework::GraphLab] {
            sweep.push(SweepCell {
                label: format!("p{i}-{}", fw.name()),
                algorithm: Algorithm::PageRank,
                framework: fw,
                spec: spec.clone(),
                nodes: 2,
                factor: 1.0,
                params,
                faults: FaultPlan::parse(plan).expect("valid spec"),
            });
        }
    }
    let opts = |jobs| SweepOptions {
        jobs,
        journal: None,
        resume: false,
        cell_timeout: None,
        telemetry: None,
    };
    let serial = sweep.execute(&opts(1), &WorkloadCache::new(), &SilentObserver);
    let parallel = sweep.execute(&opts(4), &WorkloadCache::new(), &SilentObserver);
    assert_eq!(serial.results.len(), parallel.results.len());
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        let s = s.outcome.as_ref().expect("serial cell runs");
        let p = p.outcome.as_ref().expect("parallel cell runs");
        assert_eq!(s, p, "elastic outcomes are bit-identical across --jobs");
        assert_eq!(s.report.rebalance, p.report.rebalance);
        assert_eq!(s.report.timeline, p.report.timeline);
    }
}

#[test]
fn rebalance_work_is_monotone_in_event_count() {
    let wl = workload();
    // each successive plan adds membership events without removing any;
    // rebalances, migrated totals and membership counters never shrink
    let plans = [
        "seed=3",
        "seed=3,leave=1@2",
        "seed=3,join=2@1,leave=1@2",
        "seed=3,join=2@1,leave=1@2,leave=2@4",
    ];
    let mut prev: Option<graphmaze_core::metrics::RebalanceStats> = None;
    for spec in plans {
        let plan = FaultPlan::parse(spec).expect("valid spec");
        let out = run(Algorithm::PageRank, Framework::Native, &wl, plan);
        let reb = out.report.rebalance;
        if let Some(prev) = &prev {
            assert!(reb.joins >= prev.joins, "{spec}: joins shrank");
            assert!(reb.leaves >= prev.leaves, "{spec}: leaves shrank");
            assert!(reb.rebalances >= prev.rebalances, "{spec}: rebalances");
            assert!(
                reb.migrated_bytes >= prev.migrated_bytes,
                "{spec}: migrated {} < {}",
                reb.migrated_bytes,
                prev.migrated_bytes
            );
        }
        prev = Some(reb);
    }
    let last = prev.expect("ran");
    assert_eq!(last.joins, 1);
    assert_eq!(last.leaves, 2);
    assert_eq!(last.final_nodes, 1, "only node 0 remains");
}

#[test]
fn heterogeneous_profiles_slow_the_clock_but_not_the_answer() {
    let wl = workload();
    let fixed = run(
        Algorithm::PageRank,
        Framework::Native,
        &wl,
        FaultPlan::none(),
    );
    let hetero = run(
        Algorithm::PageRank,
        Framework::Native,
        &wl,
        FaultPlan::parse("seed=3,hw=1:oldgen").expect("valid spec"),
    );
    assert_eq!(fixed.digest.to_bits(), hetero.digest.to_bits());
    assert!(
        hetero.report.sim_seconds > fixed.report.sim_seconds,
        "a half-speed node cannot make the run faster: {} vs {}",
        hetero.report.sim_seconds,
        fixed.report.sim_seconds
    );
    // hw-only plans never migrate anything: no membership change, no
    // repartitioning
    assert_eq!(hetero.report.rebalance.migrated_bytes, 0);
    assert_eq!(hetero.report.rebalance.rebalances, 0);
}
