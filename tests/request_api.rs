//! The programmatic request API and the cell-identity contract.
//!
//! The 64-bit [`SweepCell::key`] identity hash is load-bearing
//! infrastructure: it keys the sweep journal (`--resume`), the serving
//! daemon's result cache, and the wire protocol's `key` field. The
//! golden values pinned here make any change to the hash — a new cell
//! field, a reordered canonical string, a different mixing constant — a
//! *visible, deliberate* decision that invalidates every journal and
//! warm cache, instead of a silent one.

use std::time::Duration;

use graphmaze_core::prelude::*;

fn base_cell() -> SweepCell {
    SweepCell {
        label: "golden".to_string(),
        algorithm: Algorithm::PageRank,
        framework: Framework::Native,
        spec: WorkloadSpec::Rmat {
            scale: 8,
            edge_factor: 4,
            seed: 1,
        },
        nodes: 1,
        factor: 1.0,
        params: BenchParams::default(),
        faults: FaultPlan::none(),
    }
}

/// Golden identity hashes. If this test fails because you *meant* to
/// change the cell identity (new field, new canonical order), update
/// the constants AND bump `JOURNAL_SCHEMA_VERSION` — old journals and
/// warm caches no longer describe the same runs.
#[test]
fn golden_cell_identity_hashes_are_pinned() {
    let base = base_cell();
    let multi_node = SweepCell {
        nodes: 4,
        ..base_cell()
    };
    let giraph_tc = SweepCell {
        algorithm: Algorithm::TriangleCount,
        framework: Framework::Giraph,
        spec: WorkloadSpec::RmatTriangle {
            scale: 8,
            edge_factor: 4,
            seed: 1,
        },
        ..base_cell()
    };
    let faulty = SweepCell {
        faults: FaultPlan::parse("seed=1,linkdrop=0.01").expect("valid plan"),
        ..base_cell()
    };
    let msbfs = SweepCell {
        algorithm: Algorithm::MsBfs,
        ..base_cell()
    };
    let golden: [(&str, &SweepCell, u64); 5] = [
        ("base", &base, 0x0fb5863d6e233c70),
        ("multi_node", &multi_node, 0x62d0b6b7cdc96601),
        ("giraph_tc", &giraph_tc, 0x222845d4a4652b91),
        ("faulty", &faulty, 0x8a787f3c7e179a08),
        ("msbfs", &msbfs, 0x0bb40d47403e8eaa),
    ];
    for (name, cell, expected) in golden {
        assert_eq!(
            cell.key("golden-exp"),
            expected,
            "identity hash drifted for `{name}` — journals/caches written \
             by older builds are now unreadable; if intentional, repin and \
             bump JOURNAL_SCHEMA_VERSION"
        );
    }
    // the experiment name participates in the identity
    assert_ne!(base.key("golden-exp"), base.key("other-exp"));
}

#[test]
fn every_cell_field_perturbs_the_identity_hash() {
    let base = base_cell().key("e");
    let variants = [
        SweepCell {
            label: "other".into(),
            ..base_cell()
        },
        SweepCell {
            algorithm: Algorithm::Bfs,
            ..base_cell()
        },
        SweepCell {
            framework: Framework::CombBlas,
            ..base_cell()
        },
        SweepCell {
            spec: WorkloadSpec::Rmat {
                scale: 9,
                edge_factor: 4,
                seed: 1,
            },
            ..base_cell()
        },
        SweepCell {
            nodes: 2,
            ..base_cell()
        },
        SweepCell {
            factor: 2.0,
            ..base_cell()
        },
        SweepCell {
            params: BenchParams {
                pr_iterations: 7,
                ..BenchParams::default()
            },
            ..base_cell()
        },
        SweepCell {
            params: BenchParams {
                msbfs_sources: 128,
                ..BenchParams::default()
            },
            ..base_cell()
        },
        SweepCell {
            params: BenchParams {
                msbfs_seed: 0xDEAD_BEEF,
                ..BenchParams::default()
            },
            ..base_cell()
        },
        SweepCell {
            faults: FaultPlan::parse("seed=9,drop=0.001").unwrap(),
            ..base_cell()
        },
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(v.key("e"), base, "variant {i} should change the hash");
    }
}

#[test]
fn request_key_matches_cell_key_and_survives_spec_round_trip() {
    let cell = base_cell();
    let req = RunRequest::new("golden-exp", cell.clone());
    assert_eq!(req.key(), cell.key("golden-exp"));
    // the canonical spec string round-trips through parse_key without
    // perturbing the identity
    let reparsed = WorkloadSpec::parse_key(&cell.spec.key()).expect("round-trips");
    let cell2 = SweepCell {
        spec: reparsed,
        ..cell.clone()
    };
    assert_eq!(cell2.key("golden-exp"), cell.key("golden-exp"));
}

#[test]
fn online_and_offline_paths_agree_bit_exactly() {
    let workloads = WorkloadCache::new();
    let results = ResultCache::new(16);
    let req = RunRequest::new("golden-exp", base_cell());
    // offline path: plain execute (what Sweep::execute workers do)
    let offline = req.execute(&workloads);
    // online path: execute_cached (what the daemon does), twice
    let online = req.execute_cached(&workloads, &results);
    let cached = req.execute_cached(&workloads, &results);
    assert_eq!(offline.key, online.key);
    assert_eq!(online.provenance, Provenance::Computed);
    assert_eq!(cached.provenance, Provenance::Cached);
    let digest = |r: &RunResponse| r.outcome.as_ref().expect("runs").digest;
    assert_eq!(digest(&offline), digest(&online));
    assert_eq!(digest(&online), digest(&cached));
}

/// The serving daemon and the offline sweep must agree on msbfs too —
/// same identity key, same bit-exact digest, warm-cache hit on repeat.
#[test]
fn online_and_offline_msbfs_agree_bit_exactly() {
    let workloads = WorkloadCache::new();
    let results = ResultCache::new(16);
    let req = RunRequest::new(
        "golden-exp",
        SweepCell {
            algorithm: Algorithm::MsBfs,
            ..base_cell()
        },
    );
    let offline = req.execute(&workloads);
    let online = req.execute_cached(&workloads, &results);
    let cached = req.execute_cached(&workloads, &results);
    assert_eq!(offline.key, online.key);
    assert_eq!(cached.provenance, Provenance::Cached);
    let digest = |r: &RunResponse| r.outcome.as_ref().expect("runs").digest;
    assert_eq!(digest(&offline), digest(&online));
    assert_eq!(digest(&online), digest(&cached));
    assert!(digest(&offline).is_finite());
}

#[test]
fn timeouts_produce_uncached_failures() {
    let workloads = WorkloadCache::new();
    let results = ResultCache::new(16);
    let req = RunRequest::new("golden-exp", base_cell()).with_timeout(Some(Duration::from_secs(0)));
    let resp = req.execute_cached(&workloads, &results);
    assert!(matches!(resp.outcome, Err(CellError::TimedOut(_))));
    // a timed-out attempt must never be pinned in the cache
    assert_eq!(results.stats().admissions, 0);
    assert_eq!(results.get(req.key()), None);
}
