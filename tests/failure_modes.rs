//! Failure injection: the paper's out-of-memory and expressibility
//! failure modes must reproduce as *typed errors*, not crashes — and
//! injected cluster faults ([`FaultPlan`]) must either fail-stop with a
//! typed [`SimError::NodeFailed`] or, for Giraph's checkpoint/restart,
//! roll back and replay in a way that reconciles with the timeline.

use graphmaze_core::cluster::{with_faults, ClusterSpec, HardwareSpec, Sim, SimError};
use graphmaze_core::engines::spmv::combblas;
use graphmaze_core::engines::vertex::giraph;
use graphmaze_core::prelude::*;

fn tiny_memory_spec(nodes: usize, bytes: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::paper(nodes);
    spec.hw = HardwareSpec {
        mem_capacity_bytes: bytes,
        ..spec.hw
    };
    spec
}

#[test]
fn combblas_triangle_counting_ooms_like_the_paper() {
    // §5.2: CombBLAS "ran out of memory for real-world inputs while
    // computing the A² matrix product".
    let wl = Workload::rmat_triangle(11, 8, 301);
    let oriented = wl.oriented.as_ref().unwrap();
    let err = combblas::triangles_on(oriented, 4, tiny_memory_spec(4, 64 << 10)).unwrap_err();
    match err {
        SimError::OutOfMemory(o) => {
            assert!(o.node < 4);
            assert!(o.requested > 0);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
    // and with paper-spec memory the same input succeeds
    assert!(combblas::triangles(oriented, 4).is_ok());
}

#[test]
fn giraph_whole_superstep_buffering_ooms_without_splitting() {
    // §6.1.3: "It was only using this optimization [superstep splitting]
    // that we were able to run Triangle Counting on Giraph."
    let wl = Workload::rmat_triangle(12, 12, 302);
    let oriented = wl.oriented.as_ref().unwrap();
    // find a memory budget where the unsplit run fails...
    let mut failed_unsplit = false;
    for budget_mb in [1u64, 2, 4, 8, 16, 32] {
        let budget = budget_mb << 20;
        let unsplit = giraph_tc_with_memory(oriented, 1, budget);
        let split = giraph_tc_with_memory(oriented, 64, budget);
        if unsplit.is_err() && split.is_ok() {
            failed_unsplit = true;
            break;
        }
    }
    assert!(
        failed_unsplit,
        "expected a memory budget where splitting saves Giraph TC"
    );
}

/// Giraph TC under an artificial memory budget (splitting factor
/// `splits`). Uses the engine directly so the cluster spec can be shrunk.
fn giraph_tc_with_memory(
    oriented: &graphmaze_core::graph::csr::Csr,
    splits: u32,
    mem_bytes: u64,
) -> Result<u64, SimError> {
    use graphmaze_core::engines::vertex::engine::{run, EngineConfig};
    use graphmaze_core::engines::vertex::gas::Gas;
    use graphmaze_core::engines::vertex::programs::TriangleProgram;
    let cfg = EngineConfig {
        profile: ExecProfile::giraph(),
        use_combiner: false,
        buffer_whole_superstep: true,
        superstep_splits: splits,
        per_message_overhead_bytes: giraph::MESSAGE_OBJECT_OVERHEAD,
        max_supersteps: 4,
        replicate_hubs_factor: None,
        compress_ids: false,
        speculative_reexec: false,
    };
    let n = oriented.num_vertices();
    let (values, report) = run(
        oriented,
        None,
        &Gas(TriangleProgram),
        vec![0u64; n],
        vec![],
        true,
        &cfg,
        4,
        2,
    )?;
    // The engine runs on paper-spec (64 GB) nodes; this helper checks the
    // peak against an artificial budget, which is what a memory-limited
    // JVM heap would have enforced mid-superstep.
    if report.peak_mem_bytes > mem_bytes {
        return Err(SimError::OutOfMemory(
            graphmaze_core::metrics::OutOfMemory {
                node: 0,
                in_use: report.peak_mem_bytes,
                requested: 0,
                capacity: mem_bytes,
                label: "giraph:message-buffers".into(),
            },
        ));
    }
    Ok(values.iter().sum())
}

#[test]
fn galois_multi_node_is_invalid_config() {
    let wl = Workload::rmat(8, 4, 303);
    let params = BenchParams::default();
    for alg in Algorithm::ALL {
        if alg == Algorithm::CollaborativeFiltering {
            continue;
        }
        match run_benchmark(alg, Framework::Galois, &wl, 4, &params) {
            Err(SimError::InvalidConfig(msg)) => assert!(msg.contains("single-node")),
            other => panic!("{alg:?}: expected InvalidConfig, got {other:?}"),
        }
    }
}

#[test]
fn missing_workload_views_are_invalid_config() {
    let ratings = Workload::rmat_ratings(8, 32, 304);
    let graph = Workload::rmat(8, 4, 304);
    let params = BenchParams::default();
    assert!(matches!(
        run_benchmark(Algorithm::Bfs, Framework::Native, &ratings, 1, &params),
        Err(SimError::InvalidConfig(_))
    ));
    assert!(matches!(
        run_benchmark(
            Algorithm::CollaborativeFiltering,
            Framework::Native,
            &graph,
            1,
            &params
        ),
        Err(SimError::InvalidConfig(_))
    ));
}

// ---------------------------------------------------------------------
// Injected cluster faults
// ---------------------------------------------------------------------

/// Every engine without checkpoint/restart fail-stops on an injected
/// node kill: a typed [`SimError::NodeFailed`] naming the node and step,
/// not a panic, not a wrong answer.
#[test]
fn fail_stop_engines_abort_with_node_failed() {
    let wl = Workload::rmat(8, 8, 306);
    let params = BenchParams::default();
    let plan = FaultPlan::parse("seed=1,kill=0@1").unwrap();
    for fw in [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Galois,
    ] {
        let nodes = if fw.multi_node() { 4 } else { 1 };
        let err = with_faults(plan, || {
            run_benchmark(Algorithm::PageRank, fw, &wl, nodes, &params)
        })
        .expect_err("fail-stop engine must not survive a node kill");
        match err {
            SimError::NodeFailed { node, step } => {
                assert_eq!((node, step), (0, 1), "{fw:?}");
            }
            other => panic!("{fw:?}: expected NodeFailed, got {other:?}"),
        }
    }
    // Giraph's profile has checkpoint_restart: the same kill is survived
    let out = with_faults(plan, || {
        run_benchmark(Algorithm::PageRank, Framework::Giraph, &wl, 4, &params)
    })
    .expect("giraph must recover");
    assert_eq!(out.report.recovery.failures, 1);
}

/// A failure *before* the first checkpoint restores nothing from disk
/// but replays everything; a failure *after* a checkpoint pays a restore
/// and replays only the uncovered suffix.
#[test]
fn node_failure_before_vs_after_checkpoint() {
    let wl = Workload::rmat(8, 8, 307);
    let params = BenchParams::default();
    let run = |spec: &str| {
        with_faults(FaultPlan::parse(spec).unwrap(), || {
            run_benchmark(Algorithm::PageRank, Framework::Giraph, &wl, 4, &params).unwrap()
        })
    };
    // ckpt=3 would first fire at the end of step 2 — the kill lands
    // during step 2, before that write, so nothing is on disk yet
    let before = run("seed=2,kill=1@2,ckpt=3");
    let rb = &before.report.recovery;
    assert_eq!(rb.failures, 1);
    assert_eq!(rb.restore_seconds, 0.0, "no checkpoint to restore from");
    assert_eq!(rb.steps_replayed, 3, "steps 0..=2 all replay");
    // ckpt=1 checkpoints after every step: steps 0..=1 are covered
    let after = run("seed=2,kill=1@2,ckpt=1");
    let ra = &after.report.recovery;
    assert_eq!(ra.failures, 1);
    assert!(ra.restore_seconds > 0.0, "restore must read the checkpoint");
    assert_eq!(ra.steps_replayed, 1, "only the failed step replays");
    assert!(ra.checkpoints > rb.checkpoints);
    assert!(ra.checkpoint_seconds > rb.checkpoint_seconds);
    // either way the answer matches the fault-free run
    let clean = run_benchmark(Algorithm::PageRank, Framework::Giraph, &wl, 4, &params).unwrap();
    assert_eq!(before.digest, clean.digest);
    assert_eq!(after.digest, clean.digest);
}

/// Checkpoint serialization needs a staging buffer (~state/4); when that
/// buffer does not fit, the run OOMs with the `checkpoint:staging` label
/// instead of silently under-costing the write.
#[test]
fn checkpoint_write_oom_reports_staging_label() {
    use graphmaze_core::metrics::Work;
    with_faults(FaultPlan::parse("ckpt=1").unwrap(), || {
        let mut sim = Sim::new(tiny_memory_spec(2, 1000), ExecProfile::giraph());
        sim.alloc_all(900, "vertex-state").unwrap();
        sim.charge(0, Work::flops(1000));
        let err = sim.end_step().expect_err("900 + 225 staging > 1000");
        match err {
            SimError::OutOfMemory(o) => {
                assert_eq!(o.label, "checkpoint:staging");
                assert_eq!(o.in_use, 900);
                assert_eq!(o.requested, 900 / 4);
                assert_eq!(o.capacity, 1000);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        // with headroom the same checkpoint succeeds and is costed
        let mut sim = Sim::new(tiny_memory_spec(2, 4000), ExecProfile::giraph());
        sim.alloc_all(900, "vertex-state").unwrap();
        sim.charge(0, Work::flops(1000));
        sim.end_step().expect("staging fits");
        let report = sim.finish();
        assert_eq!(report.recovery.checkpoints, 1);
        assert!(report.recovery.checkpoint_seconds > 0.0);
    });
}

/// A fail-stop engine's kill surfaces through the sweep executor as a
/// `failed` cell — journaled, annotated, and resumed without a retry.
#[test]
fn fail_stop_cell_flows_through_the_sweep_as_failed() {
    use graphmaze_core::sweep::CellError;
    let journal =
        std::env::temp_dir().join(format!("graphmaze-failcell-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let mut sweep = Sweep::new("failcell");
    sweep.push(SweepCell {
        label: "combblas-kill".into(),
        algorithm: Algorithm::PageRank,
        framework: Framework::CombBlas,
        spec: WorkloadSpec::Rmat {
            scale: 8,
            edge_factor: 8,
            seed: 308,
        },
        nodes: 4,
        factor: 1.0,
        params: BenchParams::default(),
        faults: FaultPlan::parse("seed=3,kill=2@1").unwrap(),
    });
    let opts = |resume| SweepOptions {
        jobs: 1,
        journal: Some(journal.clone()),
        resume,
        cell_timeout: None,
        telemetry: None,
    };
    let first = sweep.execute(&opts(false), &WorkloadCache::new(), &SilentObserver);
    assert_eq!(first.failed, 1);
    let err = first.results[0].outcome.as_ref().unwrap_err();
    assert!(
        matches!(err, CellError::NodeFailed(_)),
        "expected NodeFailed, got {err:?}"
    );
    assert_eq!(err.annotation(), "failed");
    assert!(
        err.message().contains("node 2"),
        "message: {}",
        err.message()
    );

    let second = sweep.execute(&opts(true), &WorkloadCache::new(), &SilentObserver);
    assert_eq!(second.resumed, 1, "deterministic kill is not retried");
    assert_eq!(first.results[0].outcome, second.results[0].outcome);
    let _ = std::fs::remove_file(&journal);
}

/// The tentpole acceptance check: a fixed-seed node kill on Giraph
/// produces a rollback whose replayed steps reconcile **bit-exactly**
/// with the recorded timeline, and the recovered run still computes the
/// fault-free digest.
#[test]
fn giraph_rollback_reconciles_bit_exactly_with_the_timeline() {
    let wl = Workload::rmat(9, 8, 309);
    let params = BenchParams::default();
    let plan = FaultPlan::parse("seed=42,kill=1@3,ckpt=2").unwrap();
    let faulted = with_faults(plan, || {
        run_benchmark(Algorithm::PageRank, Framework::Giraph, &wl, 4, &params).unwrap()
    });
    let clean = run_benchmark(Algorithm::PageRank, Framework::Giraph, &wl, 4, &params).unwrap();

    assert_eq!(
        faulted.digest, clean.digest,
        "recovery must not change the answer"
    );
    let rec = &faulted.report.recovery;
    assert_eq!(rec.failures, 1);
    assert_eq!(
        rec.steps_replayed, 2,
        "ckpt=2 covers steps 0..=1; steps 2 and the failed step 3 replay"
    );

    let tl = &faulted.report.timeline;
    // the timeline reconciles with the simulated clock bit-exactly
    assert_eq!(tl.total_seconds(), faulted.report.sim_seconds);
    // step indices are dense, so the kill step is at its own index
    assert!(tl
        .steps
        .iter()
        .enumerate()
        .all(|(i, r)| r.step as usize == i));

    // reconstruct the replay cost from the timeline exactly as the
    // simulator computed it: recorded durations of the steps after the
    // last checkpoint (step 2), plus the failed step's own base cost
    let failed_step = 3usize;
    let covered = 2usize;
    let mut replay = 0.0f64;
    for r in &tl.steps[covered..failed_step] {
        replay += r.duration_s();
    }
    let f = &tl.steps[failed_step];
    replay += f.compute_s + f.comm_s + f.barrier_s;
    assert_eq!(
        rec.replay_seconds, replay,
        "replay must reconcile bit-exactly with the recorded timeline"
    );

    // the recovery lane of the timeline carries exactly the stats total
    let lane: f64 = tl.steps.iter().map(|r| r.recovery_s).sum();
    let total = rec.recovery_seconds();
    assert!(
        (lane - total).abs() <= 1e-12 * total.max(1.0),
        "recovery lane {lane} vs stats {total}"
    );

    // and the whole slowdown is attributable to recovery
    let slowdown = faulted.report.sim_seconds - clean.report.sim_seconds;
    assert!(
        (slowdown - total).abs() <= 1e-9 * faulted.report.sim_seconds,
        "slowdown {slowdown} vs recovery {total}"
    );
}

#[test]
fn native_pagerank_oom_reports_node_and_label() {
    use graphmaze_core::native::pagerank::pagerank_cluster;
    // paper-spec nodes hold 64 GB; a graph cannot exceed that at test
    // scale, so exercise the path via the memory tracker directly.
    let mut tracker = graphmaze_core::metrics::MemTracker::new(2, 1000);
    tracker.alloc(900, "pagerank:graph+ranks").unwrap();
    let err = tracker.alloc(200, "pagerank:ghosts").unwrap_err();
    assert_eq!(err.node, 2);
    assert!(err.to_string().contains("pagerank:ghosts"));
    // and the real API succeeds at paper capacity
    let wl = Workload::rmat(9, 8, 305);
    assert!(pagerank_cluster(
        wl.directed.as_ref().unwrap(),
        PAGERANK_R,
        2,
        NativeOptions::all(),
        4
    )
    .is_ok());
}
