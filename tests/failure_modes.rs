//! Failure injection: the paper's out-of-memory and expressibility
//! failure modes must reproduce as *typed errors*, not crashes.

use graphmaze_core::cluster::{ClusterSpec, HardwareSpec, SimError};
use graphmaze_core::engines::spmv::combblas;
use graphmaze_core::engines::vertex::giraph;
use graphmaze_core::prelude::*;

fn tiny_memory_spec(nodes: usize, bytes: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::paper(nodes);
    spec.hw = HardwareSpec {
        mem_capacity_bytes: bytes,
        ..spec.hw
    };
    spec
}

#[test]
fn combblas_triangle_counting_ooms_like_the_paper() {
    // §5.2: CombBLAS "ran out of memory for real-world inputs while
    // computing the A² matrix product".
    let wl = Workload::rmat_triangle(11, 8, 301);
    let oriented = wl.oriented.as_ref().unwrap();
    let err = combblas::triangles_on(oriented, 4, tiny_memory_spec(4, 64 << 10)).unwrap_err();
    match err {
        SimError::OutOfMemory(o) => {
            assert!(o.node < 4);
            assert!(o.requested > 0);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
    // and with paper-spec memory the same input succeeds
    assert!(combblas::triangles(oriented, 4).is_ok());
}

#[test]
fn giraph_whole_superstep_buffering_ooms_without_splitting() {
    // §6.1.3: "It was only using this optimization [superstep splitting]
    // that we were able to run Triangle Counting on Giraph."
    let wl = Workload::rmat_triangle(12, 12, 302);
    let oriented = wl.oriented.as_ref().unwrap();
    // find a memory budget where the unsplit run fails...
    let mut failed_unsplit = false;
    for budget_mb in [1u64, 2, 4, 8, 16, 32] {
        let budget = budget_mb << 20;
        let unsplit = giraph_tc_with_memory(oriented, 1, budget);
        let split = giraph_tc_with_memory(oriented, 64, budget);
        if unsplit.is_err() && split.is_ok() {
            failed_unsplit = true;
            break;
        }
    }
    assert!(
        failed_unsplit,
        "expected a memory budget where splitting saves Giraph TC"
    );
}

/// Giraph TC under an artificial memory budget (splitting factor
/// `splits`). Uses the engine directly so the cluster spec can be shrunk.
fn giraph_tc_with_memory(
    oriented: &graphmaze_core::graph::csr::Csr,
    splits: u32,
    mem_bytes: u64,
) -> Result<u64, SimError> {
    use graphmaze_core::engines::vertex::engine::{run, EngineConfig};
    use graphmaze_core::engines::vertex::programs::TriangleProgram;
    let cfg = EngineConfig {
        profile: ExecProfile::giraph(),
        use_combiner: false,
        buffer_whole_superstep: true,
        superstep_splits: splits,
        per_message_overhead_bytes: giraph::MESSAGE_OBJECT_OVERHEAD,
        max_supersteps: 4,
        replicate_hubs_factor: None,
        compress_ids: false,
    };
    let n = oriented.num_vertices();
    let (values, report) = run(
        oriented,
        None,
        &TriangleProgram,
        vec![0u64; n],
        vec![],
        true,
        &cfg,
        4,
        2,
    )?;
    // The engine runs on paper-spec (64 GB) nodes; this helper checks the
    // peak against an artificial budget, which is what a memory-limited
    // JVM heap would have enforced mid-superstep.
    if report.peak_mem_bytes > mem_bytes {
        return Err(SimError::OutOfMemory(
            graphmaze_core::metrics::OutOfMemory {
                node: 0,
                in_use: report.peak_mem_bytes,
                requested: 0,
                capacity: mem_bytes,
                label: "giraph:message-buffers".into(),
            },
        ));
    }
    Ok(values.iter().sum())
}

#[test]
fn galois_multi_node_is_invalid_config() {
    let wl = Workload::rmat(8, 4, 303);
    let params = BenchParams::default();
    for alg in Algorithm::ALL {
        if alg == Algorithm::CollaborativeFiltering {
            continue;
        }
        match run_benchmark(alg, Framework::Galois, &wl, 4, &params) {
            Err(SimError::InvalidConfig(msg)) => assert!(msg.contains("single-node")),
            other => panic!("{alg:?}: expected InvalidConfig, got {other:?}"),
        }
    }
}

#[test]
fn missing_workload_views_are_invalid_config() {
    let ratings = Workload::rmat_ratings(8, 32, 304);
    let graph = Workload::rmat(8, 4, 304);
    let params = BenchParams::default();
    assert!(matches!(
        run_benchmark(Algorithm::Bfs, Framework::Native, &ratings, 1, &params),
        Err(SimError::InvalidConfig(_))
    ));
    assert!(matches!(
        run_benchmark(
            Algorithm::CollaborativeFiltering,
            Framework::Native,
            &graph,
            1,
            &params
        ),
        Err(SimError::InvalidConfig(_))
    ));
}

#[test]
fn native_pagerank_oom_reports_node_and_label() {
    use graphmaze_core::native::pagerank::pagerank_cluster;
    // paper-spec nodes hold 64 GB; a graph cannot exceed that at test
    // scale, so exercise the path via the memory tracker directly.
    let mut tracker = graphmaze_core::metrics::MemTracker::new(2, 1000);
    tracker.alloc(900, "pagerank:graph+ranks").unwrap();
    let err = tracker.alloc(200, "pagerank:ghosts").unwrap_err();
    assert_eq!(err.node, 2);
    assert!(err.to_string().contains("pagerank:ghosts"));
    // and the real API succeeds at paper capacity
    let wl = Workload::rmat(9, 8, 305);
    assert!(pagerank_cluster(
        wl.directed.as_ref().unwrap(),
        PAGERANK_R,
        2,
        NativeOptions::all(),
        4
    )
    .is_ok());
}
