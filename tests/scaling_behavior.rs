//! Scaling-shape tests: the qualitative findings of §5 must emerge from
//! the simulator — Giraph orders of magnitude off, Galois near native,
//! network traffic growing with node count, Giraph's CPU ceiling, the
//! SociaLite network fix, native's compression wins.

use graphmaze_core::prelude::*;

#[test]
fn single_node_ninja_gap_ordering() {
    // Table 5's qualitative ordering for pagerank on one node:
    // native < galois < combblas/socialite/graphlab << giraph
    let wl = Workload::rmat(12, 16, 201);
    let params = BenchParams::default();
    let t = |fw: Framework| -> f64 {
        run_benchmark(Algorithm::PageRank, fw, &wl, 1, &params)
            .unwrap()
            .report
            .sim_seconds
    };
    let native = t(Framework::Native);
    let galois = t(Framework::Galois);
    let combblas = t(Framework::CombBlas);
    let graphlab = t(Framework::GraphLab);
    let giraph = t(Framework::Giraph);
    assert!(native <= galois, "native {native} <= galois {galois}");
    assert!(galois < giraph);
    assert!(combblas < giraph);
    assert!(graphlab < giraph);
    let gap = giraph / native;
    assert!(
        gap > 30.0,
        "giraph single-node gap only {gap}x (paper: 39x geomean)"
    );
    let galois_gap = galois / native;
    assert!(
        galois_gap < 3.0,
        "galois should be near native, got {galois_gap}x"
    );
}

#[test]
fn weak_scaling_native_stays_flat_while_traffic_grows() {
    // Fig 4a: native weak scaling is near-flat; traffic per node grows.
    let params = BenchParams::default();
    let mut times = Vec::new();
    let mut traffic = Vec::new();
    for (nodes, scale) in [(1usize, 10u32), (2, 11), (4, 12), (8, 13)] {
        let wl = Workload::rmat(scale, 8, 202); // constant edges/node
        let out =
            run_benchmark(Algorithm::PageRank, Framework::Native, &wl, nodes, &params).unwrap();
        times.push(out.report.seconds_per_iteration());
        traffic.push(out.report.net_bytes_per_node());
    }
    // growth from 1 to 8 nodes bounded (perfect scaling would be 1.0x;
    // allow the communication ramp the paper also shows)
    let growth = times[3] / times[0];
    assert!(growth < 8.0, "weak scaling blow-up {growth}x: {times:?}");
    assert!(traffic[0] == 0.0 && traffic[3] > 0.0);
    assert!(
        traffic[3] > traffic[1],
        "per-node traffic should grow: {traffic:?}"
    );
}

#[test]
fn giraph_cpu_utilization_is_capped_and_native_is_not() {
    let wl = Workload::rmat(16, 16, 203);
    let params = BenchParams::default();
    let giraph = run_benchmark(Algorithm::PageRank, Framework::Giraph, &wl, 4, &params)
        .unwrap()
        .report;
    assert!(
        giraph.cpu_utilization <= 4.0 / 24.0 + 1e-9,
        "giraph util {}",
        giraph.cpu_utilization
    );
    let native = run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 1, &params)
        .unwrap()
        .report;
    assert!(
        native.cpu_utilization > 0.5,
        "native single-node util {}",
        native.cpu_utilization
    );
}

#[test]
fn socialite_network_fix_matches_table7_direction() {
    let wl = Workload::rmat(13, 16, 204);
    let params = BenchParams::default();
    let before = run_benchmark(
        Algorithm::PageRank,
        Framework::SociaLiteUnopt,
        &wl,
        4,
        &params,
    )
    .unwrap()
    .report;
    let after = run_benchmark(Algorithm::PageRank, Framework::SociaLite, &wl, 4, &params)
        .unwrap()
        .report;
    let speedup = before.sim_seconds / after.sim_seconds;
    assert!(
        speedup > 1.3 && speedup < 8.0,
        "Table 7 PageRank speedup out of band: {speedup} (paper: 2.4)"
    );
    assert!(after.traffic.peak_bw_bps > before.traffic.peak_bw_bps);
}

#[test]
fn peak_network_bandwidth_ordering_matches_fig6() {
    // Fig 6: native/CombBLAS (MPI) achieve the highest peak BW,
    // SociaLite about 2x GraphLab, Giraph the lowest.
    let wl = Workload::rmat(15, 16, 205);
    let params = BenchParams::default();
    let peak = |fw: Framework| -> f64 {
        run_benchmark(Algorithm::PageRank, fw, &wl, 4, &params)
            .unwrap()
            .report
            .traffic
            .peak_bw_bps
    };
    let native = peak(Framework::Native);
    let graphlab = peak(Framework::GraphLab);
    let socialite = peak(Framework::SociaLite);
    let giraph = peak(Framework::Giraph);
    assert!(
        native > socialite,
        "native {native} > socialite {socialite}"
    );
    assert!(
        socialite > graphlab,
        "socialite {socialite} > graphlab {graphlab}"
    );
    assert!(graphlab > giraph, "graphlab {graphlab} > giraph {giraph}");
}

#[test]
fn triangle_counting_message_volume_explodes_relative_to_graph() {
    // §2.1/Table 1: TC total message size is much larger than the graph.
    let wl = Workload::rmat_triangle(11, 8, 206);
    let params = BenchParams::default();
    let out = run_benchmark(Algorithm::TriangleCount, Framework::Giraph, &wl, 4, &params)
        .unwrap()
        .report;
    let graph_bytes = wl.oriented.as_ref().unwrap().num_edges() * 4;
    assert!(
        out.traffic.bytes_uncompressed > graph_bytes,
        "TC traffic {} should exceed graph size {graph_bytes}",
        out.traffic.bytes_uncompressed
    );
}

#[test]
fn native_optimization_levers_all_help_pagerank() {
    // Fig 7's direction: each lever off must not make native faster.
    use graphmaze_core::native::pagerank::pagerank_cluster;
    let wl = Workload::rmat(12, 16, 207);
    let g = wl.directed.as_ref().unwrap();
    let all = pagerank_cluster(g, PAGERANK_R, 3, NativeOptions::all(), 4)
        .unwrap()
        .1;
    for (name, opts) in [
        (
            "no-prefetch",
            NativeOptions {
                prefetch: false,
                ..NativeOptions::all()
            },
        ),
        (
            "no-compression",
            NativeOptions {
                compression: false,
                ..NativeOptions::all()
            },
        ),
        (
            "no-overlap",
            NativeOptions {
                overlap: false,
                ..NativeOptions::all()
            },
        ),
    ] {
        let out = pagerank_cluster(g, PAGERANK_R, 3, opts, 4).unwrap().1;
        assert!(
            out.sim_seconds >= all.sim_seconds * 0.999,
            "{name} made pagerank faster: {} < {}",
            out.sim_seconds,
            all.sim_seconds
        );
    }
}

#[test]
fn multi_node_gap_larger_than_single_node_for_graphlab() {
    // §5.3: "GraphLab performance drops off significantly for multi node
    // runs (especially for Pagerank) due to network bottlenecks."
    let wl = Workload::rmat(12, 16, 208);
    let params = BenchParams::default();
    let gap = |nodes: usize| -> f64 {
        let native =
            run_benchmark(Algorithm::PageRank, Framework::Native, &wl, nodes, &params).unwrap();
        let gl = run_benchmark(
            Algorithm::PageRank,
            Framework::GraphLab,
            &wl,
            nodes,
            &params,
        )
        .unwrap();
        gl.report.slowdown_vs(&native.report)
    };
    let single = gap(1);
    let multi = gap(4);
    assert!(
        multi > single,
        "multi-node gap {multi} should exceed single-node {single}"
    );
}
