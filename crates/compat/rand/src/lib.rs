//! A minimal, dependency-free drop-in for the subset of the [`rand`]
//! crate API this workspace uses (`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`). Vendored so the workspace builds in
//! offline environments; the generator is xoshiro256++ (the same family
//! the real `SmallRng` uses on 64-bit targets), seeded via SplitMix64.
//!
//! [`rand`]: https://crates.io/crates/rand

/// Values samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Lemire widening-multiply bounded sampling with rejection
                // of the biased zone: exact uniformity over the span.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let wide = (rng.next_u64() as u128) * (span as u128);
                    if (wide as u64) >= threshold {
                        return lo + ((wide >> 64) as u64) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u32, u64, usize, i32, i64);

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a half-open `lo..hi` range.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Non-cryptographic small-state RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, statistically solid; the same family
    /// the real `rand::rngs::SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // all-zero state is a fixed point; splitmix64 cannot produce
            // four zeros from any seed, but keep the guard explicit
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so code written against `StdRng` keeps compiling.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }
}
