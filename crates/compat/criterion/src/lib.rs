//! A minimal, dependency-free drop-in for the subset of the
//! [`criterion`] benchmarking API this workspace uses
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`/`criterion_main!`).
//! Vendored so the workspace builds offline. It measures real wall
//! clock with a warmup pass and a fixed sample loop and prints
//! `median / throughput` lines — simpler statistics than criterion
//! proper, same bench source code.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value barrier, re-exported for bench bodies.
pub fn black_box<T>(v: T) -> T {
    std_black_box(v)
}

/// Work-unit annotation for per-element throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name with a parameter suffix (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new<P: Display>(name: &str, param: P) -> BenchmarkId {
        BenchmarkId {
            full: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

/// Runs one benchmark body repeatedly and records per-iteration times.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over warmup + `sample_size` measured runs.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // warmup: one run, plus enough to know roughly how long a run takes
        let warm_start = Instant::now();
        std_black_box(routine());
        let one = warm_start.elapsed();
        // batch very fast routines so timer resolution doesn't dominate
        let batch = if one < Duration::from_micros(5) {
            100
        } else {
            1
        };
        self.samples.clear();
        let budget = Duration::from_millis(300);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch);
            if run_start.elapsed() > budget {
                break;
            }
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of related benchmarks sharing throughput/sample config.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many measured samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let med = b.median();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                format!("  {:.2} Melem/s", n as f64 / med.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                format!("  {:.2} MB/s", n as f64 / med.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>12}{}  ({} samples)",
            self.name,
            label,
            fmt_duration(med),
            rate,
            b.samples.len()
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        self.run_one(&id.full.clone(), |b| f(b));
    }

    /// Benchmarks `f(b, input)` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.full.clone(), |b| f(b, input));
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            sample_size: 30,
            _criterion: self,
        }
    }

    /// Registers and immediately runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// Bundles bench functions under one group entry point, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(!b.samples.is_empty());
        assert!(b.median() >= Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_test");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &41, |b, &x| {
            b.iter(|| x + 1);
        });
        g.finish();
        assert!(ran);
    }
}
