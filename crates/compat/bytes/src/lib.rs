//! A minimal, dependency-free drop-in for the subset of the [`bytes`]
//! crate API this workspace uses (`Bytes`, `BytesMut`, the little-endian
//! `Buf`/`BufMut` accessors, `freeze`, `slice`). Vendored so the
//! workspace builds offline. `Bytes` keeps the cheap-clone property via
//! an `Arc<[u8]>` backing store with view offsets.
//!
//! [`bytes`]: https://crates.io/crates/bytes

use std::sync::Arc;

/// A cheaply cloneable, sliceable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static slice (copied once into the shared store).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in the current view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view; shares the backing store (no copy).
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

/// Read-side cursor operations (consuming from the front of the view).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Drops `cnt` bytes from the front.
    ///
    /// # Panics
    /// Panics when `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le past end");
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le past end");
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 13);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 1);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut b = BytesMut::new();
        b.put_u32_le(42);
        let original = b.freeze();
        let mut cursor = original.clone();
        assert_eq!(cursor.get_u32_le(), 42);
        assert_eq!(original.len(), 4, "original view untouched");
    }

    #[test]
    fn slice_shares_and_bounds_check() {
        let mut b = BytesMut::new();
        for i in 0u8..10 {
            b.put_u8(i);
        }
        let bytes = b.freeze();
        let mid = bytes.slice(2..5);
        assert_eq!(&*mid, &[2, 3, 4]);
        let nested = mid.slice(1..3);
        assert_eq!(&*nested, &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from_static(&[1, 2, 3]).slice(0..4);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn read_past_end_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.get_u32_le();
    }
}
