//! A minimal, dependency-free drop-in for the subset of the
//! [`crossbeam`] scoped-thread API this workspace uses:
//! `crossbeam::scope(|s| ...)`, `s.spawn(move |_| ...)`, and
//! `handle.join()`. Vendored so the workspace builds offline; backed by
//! `std::thread::scope` (stable since Rust 1.63), with panics from
//! unjoined child threads surfaced as `Err` from [`scope`] to match
//! crossbeam's contract.
//!
//! [`crossbeam`]: https://crates.io/crates/crossbeam

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread primitives (`crossbeam::thread` layout).
pub mod thread {
    use super::*;

    /// A handle into the scope, passed to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result; `Err` carries the
        /// panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// again so nested spawns are possible (call sites here ignore it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. A panic in the closure or in any *unjoined* spawned
    /// thread is caught and returned as `Err` (crossbeam's contract —
    /// explicitly joined threads deliver panics via their own `join`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_run_and_join() {
        let count = AtomicUsize::new(0);
        let sum = scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let count = &count;
                    s.spawn(move |_| {
                        count.fetch_add(1, Ordering::Relaxed);
                        i * 2
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 8);
        assert_eq!(sum, (0..8).map(|i| i * 2).sum());
    }

    #[test]
    fn unjoined_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn borrows_from_enclosing_stack_work() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u64>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
