//! Run reports — the simulator's answer to the paper's measurements.

use crate::rebalance::RebalanceStats;
use crate::recovery::RecoveryStats;
use crate::retransmit::RetransmitStats;
use crate::timeline::Timeline;
use crate::traffic::{TrafficMatrix, TrafficStats};
use crate::work::Work;

/// Everything measured about one benchmark run. Field-for-field, this is
/// the data behind the paper's Figures 3–6 and Tables 4–7.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Simulated wall-clock of the whole run, seconds.
    pub sim_seconds: f64,
    /// Number of BSP steps / iterations executed.
    pub steps: u32,
    /// Algorithm iterations (for per-iteration reporting; equals `steps`
    /// unless an engine splits supersteps).
    pub iterations: u32,
    /// Node count the run used.
    pub nodes: usize,
    /// Fraction of total core-seconds spent computing, `[0, 1]` —
    /// the paper's "CPU utilization".
    pub cpu_utilization: f64,
    /// Maximum per-node peak memory, bytes.
    pub peak_mem_bytes: u64,
    /// Simulated seconds spent in (non-overlapped) computation.
    pub compute_seconds: f64,
    /// Simulated seconds spent in (non-overlapped) communication.
    pub comm_seconds: f64,
    /// Network traffic statistics.
    pub traffic: TrafficStats,
    /// Per-(src, dst) communication matrix of all routed transfers.
    /// When every send goes through `cluster::router` (all engines),
    /// `matrix.row_bytes(i) == node_sent_bytes[i]` and
    /// `matrix.total_bytes() == traffic.bytes_sent`.
    pub matrix: TrafficMatrix,
    /// Cumulative wire bytes sent per node (any send path, post
    /// fault-retransmission), length `nodes`.
    pub node_sent_bytes: Vec<u64>,
    /// Total metered work, summed over nodes (Table 4's achieved
    /// bandwidths divide this by runtime).
    pub total_work: Work,
    /// The step-level trace: one record per BSP step, with phase labels.
    /// Its sums reconcile exactly with the aggregates above
    /// (`timeline.total_seconds() == sim_seconds`,
    /// `timeline.total_bytes() == traffic.bytes_sent`).
    pub timeline: Timeline,
    /// Fault-injection and recovery counters (all zero for fault-free
    /// runs); `recovery.recovery_seconds() + retransmit.detection_seconds`
    /// equals the timeline's `recovery_s` column sum.
    pub recovery: RecoveryStats,
    /// Lossy-link resilience counters (all zero unless the fault plan
    /// has link-level terms); `retransmit.timeout_seconds` equals the
    /// timeline's `resilience_s` column sum.
    pub retransmit: RetransmitStats,
    /// Elasticity counters (all zero unless the fault plan has
    /// membership or hardware-profile terms);
    /// `rebalance.stall_seconds` equals the timeline's `rebalance_s`
    /// column sum.
    pub rebalance: RebalanceStats,
}

impl RunReport {
    /// Seconds per iteration (`sim_seconds` if `iterations == 0`).
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            self.sim_seconds
        } else {
            self.sim_seconds / f64::from(self.iterations)
        }
    }

    /// Average network bytes sent per node.
    pub fn net_bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.traffic.bytes_sent as f64 / self.nodes as f64
        }
    }

    /// Achieved DRAM bandwidth per node, bytes/sec (streaming bytes plus
    /// one 64-byte line per random access) — the quantity Table 4
    /// compares against the hardware limit.
    pub fn achieved_mem_bw_per_node(&self) -> f64 {
        if self.sim_seconds == 0.0 || self.nodes == 0 {
            0.0
        } else {
            let bytes =
                self.total_work.seq_bytes as f64 + self.total_work.rand_accesses as f64 * 64.0;
            bytes / self.sim_seconds / self.nodes as f64
        }
    }

    /// Achieved network bandwidth per node, bytes/sec — a run-wide
    /// **average** (total bytes over total time). Figure 6(d) wants the
    /// peak; see [`RunReport::peak_net_bw_per_node`].
    pub fn achieved_net_bw_per_node(&self) -> f64 {
        if self.sim_seconds == 0.0 || self.nodes == 0 {
            0.0
        } else {
            self.traffic.bytes_sent as f64 / self.sim_seconds / self.nodes as f64
        }
    }

    /// **Peak** network bandwidth per node, bytes/sec, from the per-step
    /// timeline: the busiest step's `bytes / nodes / duration`. Always ≥
    /// [`RunReport::achieved_net_bw_per_node`] (a max dominates the
    /// duration-weighted mean of the same series). Falls back to the
    /// average when the run recorded no timeline.
    pub fn peak_net_bw_per_node(&self) -> f64 {
        if self.timeline.is_empty() {
            self.achieved_net_bw_per_node()
        } else {
            self.timeline.peak_net_bw_per_node()
        }
    }

    /// Slowdown of `self` relative to a baseline (native) report.
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.sim_seconds == 0.0 {
            f64::INFINITY
        } else {
            self.sim_seconds / baseline.sim_seconds
        }
    }
}

/// Geometric mean of a slice of positive values (`NaN` propagates; empty
/// slice → 1.0). Used for the paper's Table 5/6 cross-dataset summaries.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_iteration_division() {
        let r = RunReport {
            sim_seconds: 10.0,
            iterations: 4,
            ..Default::default()
        };
        assert!((r.seconds_per_iteration() - 2.5).abs() < 1e-12);
        let r0 = RunReport {
            sim_seconds: 10.0,
            iterations: 0,
            ..Default::default()
        };
        assert_eq!(r0.seconds_per_iteration(), 10.0);
    }

    #[test]
    fn slowdown_ratio() {
        let base = RunReport {
            sim_seconds: 2.0,
            ..Default::default()
        };
        let slow = RunReport {
            sim_seconds: 9.0,
            ..Default::default()
        };
        assert!((slow.slowdown_vs(&base) - 4.5).abs() < 1e-12);
        let zero = RunReport::default();
        assert!(slow.slowdown_vs(&zero).is_infinite());
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn net_bytes_per_node_averages() {
        let mut r = RunReport {
            nodes: 4,
            ..Default::default()
        };
        r.traffic.bytes_sent = 400;
        assert!((r.net_bytes_per_node() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn peak_bw_dominates_average() {
        use crate::timeline::StepRecord;
        let mut r = RunReport {
            nodes: 2,
            sim_seconds: 2.0,
            ..Default::default()
        };
        r.traffic.bytes_sent = 1000;
        // no timeline: peak degrades to the average
        assert_eq!(r.peak_net_bw_per_node(), r.achieved_net_bw_per_node());
        r.timeline.nodes = 2;
        r.timeline.steps = vec![
            StepRecord {
                step: 0,
                compute_s: 1.0,
                bytes_sent: 900,
                ..Default::default()
            },
            StepRecord {
                step: 1,
                compute_s: 1.0,
                bytes_sent: 100,
                ..Default::default()
            },
        ];
        let peak = r.peak_net_bw_per_node();
        assert!((peak - 450.0).abs() < 1e-9, "peak {peak}");
        assert!(peak >= r.achieved_net_bw_per_node());
    }

    #[test]
    fn clone_eq() {
        let r = RunReport {
            sim_seconds: 1.5,
            nodes: 2,
            ..Default::default()
        };
        let r2 = r.clone();
        assert_eq!(r, r2);
    }
}
