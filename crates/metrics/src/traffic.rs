//! Network traffic statistics.
//!
//! Figure 6 reports two traffic metrics per framework: total **network
//! bytes sent** per node and **peak achieved network bandwidth**. The
//! cluster simulator records both here, per step, as engines exchange
//! real message payloads.

/// Aggregated traffic over a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficStats {
    /// Total bytes put on the wire (post-compression), summed over nodes.
    pub bytes_sent: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Bytes before compression (equal to `bytes_sent` when uncompressed).
    pub bytes_uncompressed: u64,
    /// Peak per-node bandwidth achieved in any step, bytes/sec.
    pub peak_bw_bps: f64,
    /// Number of communication steps recorded.
    pub steps: u32,
}

impl TrafficStats {
    /// Records one communication step: the busiest node sent
    /// `max_node_bytes` over `step_comm_seconds`.
    pub fn record_step(
        &mut self,
        total_bytes: u64,
        total_msgs: u64,
        uncompressed_bytes: u64,
        max_node_bytes: u64,
        step_comm_seconds: f64,
    ) {
        self.bytes_sent += total_bytes;
        self.messages += total_msgs;
        self.bytes_uncompressed += uncompressed_bytes;
        self.steps += 1;
        if step_comm_seconds > 0.0 {
            let bw = max_node_bytes as f64 / step_comm_seconds;
            if bw > self.peak_bw_bps {
                self.peak_bw_bps = bw;
            }
        }
    }

    /// Effective compression ratio, `uncompressed / sent` (1.0 if nothing
    /// was sent).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_sent == 0 {
            1.0
        } else {
            self.bytes_uncompressed as f64 / self.bytes_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = TrafficStats::default();
        t.record_step(1000, 10, 2000, 600, 0.001);
        t.record_step(500, 5, 500, 500, 0.01);
        assert_eq!(t.bytes_sent, 1500);
        assert_eq!(t.messages, 15);
        assert_eq!(t.steps, 2);
        assert!((t.peak_bw_bps - 600_000.0).abs() < 1e-6);
        assert!((t.compression_ratio() - 2500.0 / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_step_ignored_for_peak() {
        let mut t = TrafficStats::default();
        t.record_step(100, 1, 100, 100, 0.0);
        assert_eq!(t.peak_bw_bps, 0.0);
    }

    #[test]
    fn empty_compression_ratio_is_one() {
        assert_eq!(TrafficStats::default().compression_ratio(), 1.0);
    }
}
