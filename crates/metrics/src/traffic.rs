//! Network traffic statistics.
//!
//! Figure 6 reports two traffic metrics per framework: total **network
//! bytes sent** per node and **peak achieved network bandwidth**. The
//! cluster simulator records both here, per step, as engines exchange
//! real message payloads.

/// Aggregated traffic over a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficStats {
    /// Total bytes put on the wire (post-compression), summed over nodes.
    pub bytes_sent: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Bytes before compression (equal to `bytes_sent` when uncompressed).
    pub bytes_uncompressed: u64,
    /// Peak per-node bandwidth achieved in any step, bytes/sec.
    pub peak_bw_bps: f64,
    /// Number of communication steps recorded.
    pub steps: u32,
}

impl TrafficStats {
    /// Records one communication step: the busiest node sent
    /// `max_node_bytes` over `step_comm_seconds`.
    pub fn record_step(
        &mut self,
        total_bytes: u64,
        total_msgs: u64,
        uncompressed_bytes: u64,
        max_node_bytes: u64,
        step_comm_seconds: f64,
    ) {
        self.bytes_sent += total_bytes;
        self.messages += total_msgs;
        self.bytes_uncompressed += uncompressed_bytes;
        self.steps += 1;
        if step_comm_seconds > 0.0 {
            let bw = max_node_bytes as f64 / step_comm_seconds;
            if bw > self.peak_bw_bps {
                self.peak_bw_bps = bw;
            }
        }
    }

    /// Effective compression ratio, `uncompressed / sent` (1.0 if nothing
    /// was sent).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_sent == 0 {
            1.0
        } else {
            self.bytes_uncompressed as f64 / self.bytes_sent as f64
        }
    }
}

/// Per-(source, destination) communication matrix of a run: who sent how
/// many wire bytes (and packets) to whom. Recorded by the simulator for
/// every routed transfer; row sums reconcile with the per-node sent
/// bytes in the run report, and the total with
/// [`TrafficStats::bytes_sent`] when all traffic is routed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficMatrix {
    /// Number of nodes (the matrix is `nodes × nodes`, row-major).
    pub nodes: usize,
    bytes: Vec<u64>,
    messages: Vec<u64>,
}

impl TrafficMatrix {
    /// An all-zero `nodes × nodes` matrix.
    pub fn new(nodes: usize) -> Self {
        TrafficMatrix {
            nodes,
            bytes: vec![0; nodes * nodes],
            messages: vec![0; nodes * nodes],
        }
    }

    /// Accumulates one transfer from `src` to `dst`.
    pub fn record(&mut self, src: usize, dst: usize, bytes: u64, messages: u64) {
        let i = src * self.nodes + dst;
        self.bytes[i] += bytes;
        self.messages[i] += messages;
    }

    /// Wire bytes sent from `src` to `dst`.
    pub fn bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.nodes + dst]
    }

    /// Messages sent from `src` to `dst`.
    pub fn messages(&self, src: usize, dst: usize) -> u64 {
        self.messages[src * self.nodes + dst]
    }

    /// Total wire bytes sent by `src` (row sum).
    pub fn row_bytes(&self, src: usize) -> u64 {
        self.bytes[src * self.nodes..(src + 1) * self.nodes]
            .iter()
            .sum()
    }

    /// Total wire bytes received by `dst` (column sum).
    pub fn col_bytes(&self, dst: usize) -> u64 {
        (0..self.nodes).map(|src| self.bytes(src, dst)).sum()
    }

    /// Total wire bytes across all pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all pairs.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// True when no transfer has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0) && self.messages.iter().all(|&m| m == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = TrafficStats::default();
        t.record_step(1000, 10, 2000, 600, 0.001);
        t.record_step(500, 5, 500, 500, 0.01);
        assert_eq!(t.bytes_sent, 1500);
        assert_eq!(t.messages, 15);
        assert_eq!(t.steps, 2);
        assert!((t.peak_bw_bps - 600_000.0).abs() < 1e-6);
        assert!((t.compression_ratio() - 2500.0 / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_step_ignored_for_peak() {
        let mut t = TrafficStats::default();
        t.record_step(100, 1, 100, 100, 0.0);
        assert_eq!(t.peak_bw_bps, 0.0);
    }

    #[test]
    fn empty_compression_ratio_is_one() {
        assert_eq!(TrafficStats::default().compression_ratio(), 1.0);
    }

    #[test]
    fn matrix_sums_reconcile() {
        let mut m = TrafficMatrix::new(3);
        assert!(m.is_empty());
        m.record(0, 1, 100, 2);
        m.record(0, 2, 50, 1);
        m.record(2, 0, 7, 1);
        m.record(0, 1, 10, 1);
        assert!(!m.is_empty());
        assert_eq!(m.bytes(0, 1), 110);
        assert_eq!(m.messages(0, 1), 3);
        assert_eq!(m.row_bytes(0), 160);
        assert_eq!(m.row_bytes(1), 0);
        assert_eq!(m.col_bytes(0), 7);
        assert_eq!(m.total_bytes(), 167);
        assert_eq!(m.total_messages(), 5);
        assert_eq!((0..3).map(|n| m.row_bytes(n)).sum::<u64>(), m.total_bytes());
    }
}
