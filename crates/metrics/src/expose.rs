//! Prometheus text-exposition rendering for a [`Registry`], plus the
//! minimal parser the tests and CI smokes use to assert on scrapes.
//!
//! No HTTP anywhere: the daemon ships this text over its existing
//! line-delimited TCP protocol (the `metrics` verb), terminated by a
//! literal `# EOF` line in the OpenMetrics tradition so a line-oriented
//! client knows where the multi-line payload ends.
//!
//! Rendering is deterministic by construction: families and series
//! iterate in `BTreeMap` order, label sets are canonicalized at
//! registration, bucket bounds are code constants, and floats print via
//! `{:?}` (shortest round-trip). Two registries holding the same values
//! render byte-identical text.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::telemetry::{Histogram, Registry, Series};

/// Terminator line for the multi-line `metrics` payload.
pub const EXPOSITION_EOF: &str = "# EOF";

/// Renders the registry in Prometheus text-exposition format,
/// terminated by [`EXPOSITION_EOF`].
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, (help, kind, series)) in registry.snapshot() {
        writeln!(out, "# HELP {name} {help}").expect("string write");
        writeln!(out, "# TYPE {name} {}", kind.as_str()).expect("string write");
        for (labels, s) in series {
            match s {
                Series::Counter(c) => {
                    writeln!(out, "{name}{labels} {}", c.get()).expect("string write");
                }
                Series::Gauge(g) => {
                    writeln!(out, "{name}{labels} {}", g.get()).expect("string write");
                }
                Series::Histogram(h) => render_histogram(&mut out, &name, &labels, &h),
            }
        }
    }
    out.push_str(EXPOSITION_EOF);
    out.push('\n');
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let cumulative = h.cumulative();
    for (i, c) in cumulative.iter().enumerate() {
        let le = if i < h.bounds().len() {
            format!("{:?}", h.bounds()[i])
        } else {
            "+Inf".to_string()
        };
        let with_le = merge_label(labels, &format!("le=\"{le}\""));
        writeln!(out, "{name}_bucket{with_le} {c}").expect("string write");
    }
    writeln!(out, "{name}_sum{labels} {:?}", h.sum_seconds()).expect("string write");
    writeln!(out, "{name}_count{labels} {}", h.count()).expect("string write");
}

/// Splices one extra `k="v"` pair into a rendered label string.
fn merge_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &labels[..labels.len() - 1])
    }
}

/// One parsed sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: BTreeMap<String, String>,
    pub value: f64,
}

impl Sample {
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(|s| s.as_str())
    }
}

/// Parses exposition text back into samples. Comment (`#`) and blank
/// lines are skipped; any malformed sample line is an error. This is a
/// deliberate subset of the format — just enough for round-trip tests
/// and smoke assertions, not a general scraper.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for raw in text.lines() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line)?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator in `{line}`"))?;
    let value = if value == "+Inf" {
        f64::INFINITY
    } else {
        value
            .parse::<f64>()
            .map_err(|e| format!("bad value `{value}`: {e}"))?
    };
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in `{line}`"))?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("bad metric name `{name}`"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<BTreeMap<String, String>, String> {
    let mut labels = BTreeMap::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (key, after_key) = rest
            .split_once("=\"")
            .ok_or_else(|| format!("bad label pair in `{body}`"))?;
        // scan for the closing quote, honouring backslash escapes
        let mut value = String::new();
        let mut chars = after_key.char_indices();
        let mut close = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape in `{body}`")),
                },
                '"' => {
                    close = Some(i);
                    break;
                }
                _ => value.push(c),
            }
        }
        let close = close.ok_or_else(|| format!("unterminated label value in `{body}`"))?;
        labels.insert(key.to_string(), value);
        rest = &after_key[close + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Ok(labels)
}

/// Convenience for assertions: the value of the first sample matching
/// `name` and all of `labels`.
pub fn sample_value(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.get(*k).map(|x| x.as_str()) == Some(*v))
        })
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Registry {
        let reg = Registry::new();
        reg.counter("srv_requests_total", "total requests", &[])
            .add(7);
        reg.counter(
            "srv_cell_total",
            "per-cell requests",
            &[("algorithm", "bfs"), ("framework", "native")],
        )
        .add(3);
        reg.gauge("srv_in_flight", "in flight", &[]).set(2);
        let h = reg.histogram(
            "srv_stage_seconds",
            "stage time",
            &[("stage", "queue_wait")],
        );
        h.observe(0.0009);
        h.observe(0.2);
        h.observe(0.2);
        reg
    }

    #[test]
    fn render_is_deterministic_and_parses_back() {
        let a = render(&populated());
        let b = render(&populated());
        assert_eq!(a, b, "two identical registries render identical text");
        assert!(a.ends_with("# EOF\n"));

        let samples = parse(&a).expect("parse own output");
        assert_eq!(sample_value(&samples, "srv_requests_total", &[]), Some(7.0));
        assert_eq!(
            sample_value(
                &samples,
                "srv_cell_total",
                &[("algorithm", "bfs"), ("framework", "native")]
            ),
            Some(3.0)
        );
        assert_eq!(sample_value(&samples, "srv_in_flight", &[]), Some(2.0));
        assert_eq!(
            sample_value(
                &samples,
                "srv_stage_seconds_count",
                &[("stage", "queue_wait")]
            ),
            Some(3.0)
        );
        // cumulative buckets: the 0.0009 sample lands at le=0.0009765625,
        // the two 0.2 samples at le=0.25, and +Inf sees all three
        assert_eq!(
            sample_value(
                &samples,
                "srv_stage_seconds_bucket",
                &[("stage", "queue_wait"), ("le", "0.0009765625")]
            ),
            Some(1.0)
        );
        assert_eq!(
            sample_value(
                &samples,
                "srv_stage_seconds_bucket",
                &[("stage", "queue_wait"), ("le", "0.25")]
            ),
            Some(3.0)
        );
        assert_eq!(
            sample_value(
                &samples,
                "srv_stage_seconds_bucket",
                &[("stage", "queue_wait"), ("le", "+Inf")]
            ),
            Some(3.0)
        );
    }

    #[test]
    fn histogram_sections_carry_sum_and_help_lines() {
        let text = render(&populated());
        assert!(text.contains("# HELP srv_stage_seconds stage time"));
        assert!(text.contains("# TYPE srv_stage_seconds histogram"));
        assert!(text.contains("srv_stage_seconds_sum{stage=\"queue_wait\"} 0.4009"));
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        assert_eq!(
            type_lines.len(),
            4,
            "one TYPE line per family: {type_lines:?}"
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("no_value_here").is_err());
        assert!(parse("name{unterminated 1").is_err());
        assert!(parse("name{a=\"b} 1").is_err());
        assert!(parse("bad-name 1").is_err());
        assert!(parse("# just a comment\n\n")
            .expect("comments ok")
            .is_empty());
    }

    #[test]
    fn escaped_labels_round_trip() {
        let reg = Registry::new();
        reg.counter("c", "c", &[("msg", "a\"b\\c\nd")]).inc();
        let samples = parse(&render(&reg)).expect("parse");
        assert_eq!(samples[0].label("msg"), Some("a\"b\\c\nd"));
    }
}
