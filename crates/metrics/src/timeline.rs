//! The step-level trace timeline — the *temporal* record behind the
//! paper's §5.4/Figure 6 system metrics.
//!
//! Aggregate totals (a [`crate::RunReport`]) can answer "how much", but
//! not "when": peak network bandwidth, the memory watermark's growth and
//! per-phase time breakdowns are all properties of the step *series*.
//! The simulator appends one [`StepRecord`] per BSP barrier; the
//! [`Timeline`] collector derives the series metrics and feeds the
//! Chrome-trace/CSV exporters in the bench harness.
//!
//! Reconciliation is exact by construction: the simulator's clock is
//! advanced by `compute_s + comm_s + barrier_s + recovery_s +
//! resilience_s + rebalance_s` of the record it pushes (same additions,
//! same association), so
//! `timeline.total_seconds() == report.sim_seconds` holds bit-for-bit,
//! and `timeline.total_bytes() == report.traffic.bytes_sent` likewise.

/// One BSP step as folded by the simulator's barrier.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepRecord {
    /// Zero-based step index.
    pub step: u32,
    /// Engine-assigned phase label active when the step ended (e.g.
    /// `bfs:top-down`, `gd:q-side`, `superstep:3/split:7`).
    pub phase: String,
    /// Critical-path compute seconds (max over nodes).
    pub compute_s: f64,
    /// *Exposed* communication seconds — what overlap failed to hide.
    pub comm_s: f64,
    /// Barrier/coordination seconds (the profile's per-step overhead).
    pub barrier_s: f64,
    /// Recovery seconds folded into the step: checkpoint writes plus
    /// any failure-detection latency and restore/replay after a node
    /// failure (zero without faults).
    pub recovery_s: f64,
    /// Resilience-protocol seconds folded into the step: retransmission
    /// timeouts with exponential backoff plus slow-link excess wire time
    /// (zero unless the fault plan has link-level terms).
    pub resilience_s: f64,
    /// Membership seconds folded into the step: state-migration
    /// transfers and joiner warm-start restores when the cluster
    /// rebalanced at this barrier (zero unless the fault plan has
    /// membership events).
    pub rebalance_s: f64,
    /// Wire bytes sent by all nodes during the step.
    pub bytes_sent: u64,
    /// Messages sent by all nodes during the step.
    pub messages: u64,
    /// Wire bytes sent by the busiest node during the step.
    pub max_node_bytes: u64,
    /// Cumulative memory watermark at step end: max over nodes of each
    /// node's peak bytes so far (monotone across the run).
    pub mem_peak_bytes: u64,
}

impl StepRecord {
    /// The step's duration on the simulated clock. Summing durations in
    /// step order reproduces `sim_seconds` exactly (identical float
    /// operations in identical order).
    #[inline]
    pub fn duration_s(&self) -> f64 {
        self.compute_s
            + self.comm_s
            + self.barrier_s
            + self.recovery_s
            + self.resilience_s
            + self.rebalance_s
    }
}

/// Time/bytes aggregated over all steps sharing one phase label.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseStat {
    /// The phase label.
    pub phase: String,
    /// Steps carrying this label.
    pub steps: u32,
    /// Total duration of those steps, seconds.
    pub seconds: f64,
    /// Total wire bytes those steps sent.
    pub bytes_sent: u64,
}

/// The per-step series of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    /// Node count of the run (denominator for per-node bandwidths).
    pub nodes: usize,
    /// One record per BSP step, in execution order.
    pub steps: Vec<StepRecord>,
}

impl Timeline {
    /// An empty timeline for a `nodes`-node run.
    pub fn new(nodes: usize) -> Self {
        Timeline {
            nodes,
            steps: Vec::new(),
        }
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total simulated seconds — bit-identical to the run's
    /// `sim_seconds` (see module docs).
    pub fn total_seconds(&self) -> f64 {
        self.steps.iter().map(StepRecord::duration_s).sum()
    }

    /// Total wire bytes — equals `traffic.bytes_sent` exactly.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes_sent).sum()
    }

    /// **Peak** network bandwidth per node, bytes/sec: the maximum over
    /// steps of `(bytes_sent / nodes) / duration`. This is what Fig 6(d)
    /// reports; it is ≥ the run-average by the weighted-mean inequality
    /// (the average weights each step's rate by its duration).
    pub fn peak_net_bw_per_node(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.steps
            .iter()
            .filter(|s| s.duration_s() > 0.0)
            .map(|s| s.bytes_sent as f64 / self.nodes as f64 / s.duration_s())
            .fold(0.0, f64::max)
    }

    /// Mean network bandwidth per node over the whole run, bytes/sec.
    pub fn mean_net_bw_per_node(&self) -> f64 {
        let t = self.total_seconds();
        if self.nodes == 0 || t <= 0.0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.nodes as f64 / t
        }
    }

    /// The memory watermark over time: `(step end time, mem_peak_bytes)`
    /// per step. The watermark is monotone, so the last entry equals the
    /// run's `peak_mem_bytes`.
    pub fn mem_series(&self) -> Vec<(f64, u64)> {
        let mut t = 0.0;
        self.steps
            .iter()
            .map(|s| {
                t += s.duration_s();
                (t, s.mem_peak_bytes)
            })
            .collect()
    }

    /// Peak memory over the run (max of the watermark series).
    pub fn peak_mem_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.mem_peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Per-phase time/traffic breakdown, in first-appearance order.
    pub fn phase_breakdown(&self) -> Vec<PhaseStat> {
        let mut out: Vec<PhaseStat> = Vec::new();
        for s in &self.steps {
            match out.iter_mut().find(|p| p.phase == s.phase) {
                Some(p) => {
                    p.steps += 1;
                    p.seconds += s.duration_s();
                    p.bytes_sent += s.bytes_sent;
                }
                None => out.push(PhaseStat {
                    phase: s.phase.clone(),
                    steps: 1,
                    seconds: s.duration_s(),
                    bytes_sent: s.bytes_sent,
                }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: u32, phase: &str, c: f64, m: f64, b: f64, bytes: u64) -> StepRecord {
        StepRecord {
            step,
            phase: phase.into(),
            compute_s: c,
            comm_s: m,
            barrier_s: b,
            recovery_s: 0.0,
            resilience_s: 0.0,
            rebalance_s: 0.0,
            bytes_sent: bytes,
            messages: bytes / 100,
            max_node_bytes: bytes / 2,
            mem_peak_bytes: u64::from(step) * 10,
        }
    }

    fn sample() -> Timeline {
        Timeline {
            nodes: 2,
            steps: vec![
                rec(0, "load", 0.1, 0.0, 0.01, 0),
                rec(1, "iterate", 0.2, 0.3, 0.01, 600),
                rec(2, "iterate", 0.2, 0.1, 0.01, 1000),
            ],
        }
    }

    #[test]
    fn totals_sum_over_steps() {
        let tl = sample();
        assert!((tl.total_seconds() - 0.93).abs() < 1e-12);
        assert_eq!(tl.total_bytes(), 1600);
        assert_eq!(tl.len(), 3);
        assert!(!tl.is_empty());
    }

    #[test]
    fn peak_bw_exceeds_mean() {
        let tl = sample();
        let peak = tl.peak_net_bw_per_node();
        let mean = tl.mean_net_bw_per_node();
        // step 2: 1000 B / 2 nodes / 0.31 s ≈ 1613 B/s is the peak
        assert!((peak - 1000.0 / 2.0 / 0.31).abs() < 1e-9, "peak {peak}");
        assert!(peak >= mean, "peak {peak} < mean {mean}");
    }

    #[test]
    fn empty_timeline_is_zero() {
        let tl = Timeline::new(4);
        assert_eq!(tl.total_seconds(), 0.0);
        assert_eq!(tl.peak_net_bw_per_node(), 0.0);
        assert_eq!(tl.mean_net_bw_per_node(), 0.0);
        assert_eq!(tl.peak_mem_bytes(), 0);
        assert!(tl.mem_series().is_empty());
    }

    #[test]
    fn mem_series_is_watermark() {
        let tl = sample();
        let series = tl.mem_series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[2].1, 20);
        assert!((series[2].0 - tl.total_seconds()).abs() < 1e-12);
        assert_eq!(tl.peak_mem_bytes(), 20);
    }

    #[test]
    fn phase_breakdown_aggregates_in_order() {
        let tl = sample();
        let phases = tl.phase_breakdown();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].phase, "load");
        assert_eq!(phases[0].steps, 1);
        assert_eq!(phases[1].phase, "iterate");
        assert_eq!(phases[1].steps, 2);
        assert_eq!(phases[1].bytes_sent, 1600);
        assert!((phases[1].seconds - 0.82).abs() < 1e-12);
    }
}
