//! Process-wide telemetry registry: counters, gauges, and fixed-bucket
//! log-scale histograms.
//!
//! The design goal is the same one [`crate::timeline`] states for the
//! offline simulator: observability that reconciles *exactly*, so tests
//! and CI smokes can assert on it instead of eyeballing dashboards.
//! Three properties make that possible:
//!
//! * **Bucket bounds are code constants.** [`TIME_BUCKETS_S`] is a
//!   compile-time table of exact powers of two, so two histograms fed
//!   the same sample multiset — in any thread interleaving — report
//!   bit-identical bucket counts and render byte-identical exposition
//!   text.
//! * **Sums are integers.** Histogram sums accumulate saturating
//!   nanoseconds in an `AtomicU64`, never floats, because float
//!   addition is not associative and would make the rendered `_sum`
//!   depend on arrival order.
//! * **Handles are cheap.** [`Counter`], [`Gauge`], and [`Histogram`]
//!   are `Arc`-backed atomics: recording on the hot path is a couple of
//!   relaxed atomic ops, no locks. The registry lock is only taken at
//!   registration and scrape time.
//!
//! The registry is instance-based, not a global static: every daemon,
//! sweep, or test owns its own [`Registry`] so concurrent tests in one
//! process cannot pollute each other's series.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Histogram bucket upper bounds for durations, in seconds: exact
/// powers of two from 2^-20 s (≈ 0.95 µs) to 2^14 s (≈ 4.5 h), plus an
/// implicit `+Inf` overflow bucket. Powers of two are exactly
/// representable in an `f64`, so the rendered `le="..."` labels are
/// stable across platforms and the "percentile within one bucket bound"
/// guarantee is a factor-of-two error bound.
pub const TIME_BUCKETS_S: [f64; 35] = {
    let mut bounds = [0.0f64; 35];
    let mut i = 0;
    let mut v = 1.0f64 / (1u64 << 20) as f64; // 2^-20
    while i < 35 {
        bounds[i] = v;
        v *= 2.0;
        i += 1;
    }
    bounds
};

/// The four stages of a serving-request span, in wire/stat order.
pub const SPAN_STAGES: [&str; 4] = ["queue_wait", "cache_lookup", "execute", "respond"];

/// Monotonically increasing `u64` metric. `store` exists for
/// collect-on-scrape mirrors (e.g. [`ResultCache`] exporting its own
/// atomics into a registry); live instruments use `inc`/`add`.
///
/// [`ResultCache`]: ../../graphmaze_core/struct.ResultCache.html
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the value — only for mirroring an external counter
    /// at scrape time, never for hot-path increments.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (in-flight requests, draining flag, ...).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    bounds: &'static [f64],
    /// One slot per bound plus the trailing `+Inf` overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Saturating nanoseconds: integer addition commutes, so the sum is
    /// identical under any recording interleaving.
    sum_nanos: AtomicU64,
}

/// Fixed-bucket histogram over seconds. Buckets hold cumulative-free
/// per-bucket counts internally; [`Histogram::cumulative`] produces the
/// Prometheus-style cumulative view at read time.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        let buckets = (0..=bounds.len())
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Histogram(Arc::new(HistogramCore {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }))
    }

    pub fn bounds(&self) -> &'static [f64] {
        self.0.bounds
    }

    /// Records a sample in seconds. Negative and NaN samples clamp to
    /// zero — telemetry must never panic the serving path.
    pub fn observe(&self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let nanos = (s * 1e9).round();
        let nanos = if nanos >= u64::MAX as f64 {
            u64::MAX
        } else {
            nanos as u64
        };
        self.observe_nanos_in(s, nanos);
    }

    /// Records a duration with its exact integer nanosecond value, so
    /// repeated identical durations sum without float error.
    pub fn observe_duration(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.observe_nanos_in(d.as_secs_f64(), nanos);
    }

    fn observe_nanos_in(&self, seconds: f64, nanos: u64) {
        let idx = self.0.bounds.partition_point(|b| *b < seconds);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // saturating add: fetch_update never fails with this closure
        let _ = self
            .0
            .sum_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(nanos))
            });
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum_seconds(&self) -> f64 {
        self.0.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Cumulative bucket counts, one per bound plus the final `+Inf`
    /// entry (== total count once recording has quiesced).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.0
            .buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }

    /// Nearest-rank quantile estimate, `q` in `[0, 1]`: returns the
    /// upper bound of the bucket holding the rank-`⌈q·count⌉` sample,
    /// so the estimate is never below the true quantile and at most one
    /// bucket bound above it. Returns `0.0` for an empty histogram and
    /// the last finite bound for samples past it.
    pub fn quantile(&self, q: f64) -> f64 {
        let cumulative = self.cumulative();
        let count = *cumulative.last().unwrap_or(&0);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        for (i, c) in cumulative.iter().enumerate() {
            if *c >= rank {
                return if i < self.0.bounds.len() {
                    self.0.bounds[i]
                } else {
                    self.0.bounds[self.0.bounds.len() - 1]
                };
            }
        }
        self.0.bounds[self.0.bounds.len() - 1]
    }
}

/// Metric family kind, used for `# TYPE` lines and misuse checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: &'static str,
    pub(crate) kind: MetricKind,
    /// Keyed by the canonical rendered label string (`{a="b",c="d"}` or
    /// empty), so iteration — and therefore exposition — is sorted and
    /// deterministic.
    pub(crate) series: BTreeMap<String, Series>,
}

/// What [`Registry::snapshot`] hands the exposition renderer: family
/// name → (help, kind, canonical-label-string → series handle).
pub(crate) type FamilySnapshot =
    BTreeMap<String, (&'static str, MetricKind, Vec<(String, Series)>)>;

/// A set of named metric families. Get-or-create accessors hand out
/// cloneable atomic handles; the internal lock is only held during
/// registration and scraping, never while recording.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Canonical label-set rendering: sorted by key, values escaped,
    /// empty string for no labels.
    pub fn label_string(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let mut pairs: Vec<(&str, &str)> = labels.to_vec();
        pairs.sort_unstable();
        let body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    pub fn counter(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    pub fn gauge(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, labels) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Histogram over [`TIME_BUCKETS_S`] — the only bucket table in the
    /// tree, by design: every duration histogram is comparable.
    pub fn histogram(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, MetricKind::Histogram, labels) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
    ) -> Series {
        let key = Self::label_string(labels);
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {} and re-requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Series::Counter(Counter::default()),
                MetricKind::Gauge => Series::Gauge(Gauge::default()),
                MetricKind::Histogram => Series::Histogram(Histogram::new(&TIME_BUCKETS_S)),
            })
            .clone()
    }

    /// Snapshot for the exposition renderer: family name → (help, kind,
    /// label-string → series handle).
    pub(crate) fn snapshot(&self) -> FamilySnapshot {
        let families = self.families.lock().expect("registry lock");
        families
            .iter()
            .map(|(name, fam)| {
                let series = fam
                    .series
                    .iter()
                    .map(|(k, s)| (k.clone(), s.clone()))
                    .collect();
                (name.clone(), (fam.help, fam.kind, series))
            })
            .collect()
    }
}

pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// One completed serving-request span: five timestamps collapsed into
/// four integer-nanosecond stage durations plus the measured total.
/// Stage durations are consecutive `Instant` differences, so
/// `queue_ns + lookup_ns + execute_ns + respond_ns == total_ns` holds
/// *exactly* (the sum telescopes) — the span-accounting test asserts
/// equality, not tolerance.
///
/// Lives in `metrics` (not `serve`) so `bench::trace` can render spans
/// into a Chrome-trace lane without a dependency cycle.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Client-supplied request id (or a synthesized one).
    pub id: String,
    /// Human cell label, e.g. `pagerank/giraph`.
    pub label: String,
    /// `hit` | `miss` | `failed` | `error` | `timeout`.
    pub outcome: String,
    /// Span start as seconds since daemon start (one clock, one origin).
    pub start_s: f64,
    /// enqueue → permit acquired.
    pub queue_ns: u64,
    /// permit acquired → cache lookup resolved.
    pub lookup_ns: u64,
    /// cache lookup → engine result (0 for cache hits by definition).
    pub execute_ns: u64,
    /// engine result → response flushed to the socket.
    pub respond_ns: u64,
    /// enqueue → response flushed; equals the stage sum exactly.
    pub total_ns: u64,
}

impl SpanRecord {
    /// The telescoped stage sum; equals [`SpanRecord::total_ns`] by
    /// construction.
    pub fn stage_sum_ns(&self) -> u64 {
        self.queue_ns + self.lookup_ns + self.execute_ns + self.respond_ns
    }

    /// Stage durations in [`SPAN_STAGES`] order.
    pub fn stages_ns(&self) -> [u64; 4] {
        [
            self.queue_ns,
            self.lookup_ns,
            self.execute_ns,
            self.respond_ns,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_bounds_are_doubling_powers_of_two() {
        assert_eq!(TIME_BUCKETS_S.len(), 35);
        assert_eq!(TIME_BUCKETS_S[0], 1.0 / 1048576.0);
        assert_eq!(TIME_BUCKETS_S[20], 1.0);
        assert_eq!(TIME_BUCKETS_S[34], 16384.0);
        for w in TIME_BUCKETS_S.windows(2) {
            assert_eq!(w[1], w[0] * 2.0, "exact doubling");
        }
    }

    #[test]
    fn histogram_counts_are_interleaving_invariant() {
        // the same 4000-sample multiset recorded serially and from four
        // racing threads must produce identical buckets and sums
        let samples: Vec<f64> = (0..4000)
            .map(|i| ((i * 2654435761u64 as usize) % 100_000) as f64 * 1e-5)
            .collect();
        let serial = Histogram::new(&TIME_BUCKETS_S);
        for s in &samples {
            serial.observe(*s);
        }
        let racy = Histogram::new(&TIME_BUCKETS_S);
        thread::scope(|scope| {
            for chunk in samples.chunks(1000) {
                let h = racy.clone();
                scope.spawn(move || {
                    for s in chunk {
                        h.observe(*s);
                    }
                });
            }
        });
        assert_eq!(serial.cumulative(), racy.cumulative());
        assert_eq!(serial.count(), racy.count());
        assert_eq!(serial.sum_seconds(), racy.sum_seconds(), "integer sums");
    }

    #[test]
    fn quantiles_are_within_one_bucket_bound_of_exact() {
        let h = Histogram::new(&TIME_BUCKETS_S);
        let mut samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for s in &samples {
            h.observe(*s);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99] {
            let exact = samples[(q * samples.len() as f64).ceil() as usize - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "estimate never below exact: {est} < {exact}");
            assert!(
                est <= exact * 2.0,
                "p{q}: {est} beyond one power-of-two bucket above {exact}"
            );
        }
        assert_eq!(Histogram::new(&TIME_BUCKETS_S).quantile(0.5), 0.0);
    }

    #[test]
    fn observe_duration_sums_exactly() {
        let h = Histogram::new(&TIME_BUCKETS_S);
        for _ in 0..1000 {
            h.observe_duration(Duration::from_nanos(333_333_333));
        }
        // 1000 × 333_333_333 ns = 333.333333 s with zero float error
        assert_eq!(h.sum_seconds(), 333.333333, "integer nanosecond sum");
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("reqs", "requests", &[("fw", "giraph")]);
        let b = reg.counter("reqs", "requests", &[("fw", "giraph")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same underlying series");
        let other = reg.counter("reqs", "requests", &[("fw", "galois")]);
        assert_eq!(other.get(), 0, "distinct labels, distinct series");
        let g = reg.gauge("in_flight", "in flight", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_is_a_programmer_error() {
        let reg = Registry::new();
        reg.counter("x", "x", &[]);
        reg.gauge("x", "x", &[]);
    }

    #[test]
    fn label_strings_are_canonical() {
        assert_eq!(Registry::label_string(&[]), "");
        assert_eq!(
            Registry::label_string(&[("b", "2"), ("a", "1")]),
            r#"{a="1",b="2"}"#,
            "sorted by key"
        );
        assert_eq!(
            Registry::label_string(&[("a", "x\"y\\z\n")]),
            "{a=\"x\\\"y\\\\z\\n\"}",
        );
    }

    #[test]
    fn span_records_telescope() {
        let span = SpanRecord {
            id: "r1".into(),
            label: "bfs/native".into(),
            outcome: "hit".into(),
            start_s: 0.5,
            queue_ns: 10,
            lookup_ns: 20,
            execute_ns: 0,
            respond_ns: 30,
            total_ns: 60,
        };
        assert_eq!(span.stage_sum_ns(), span.total_ns);
        assert_eq!(span.stages_ns(), [10, 20, 0, 30]);
    }
}
