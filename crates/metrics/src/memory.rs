//! Per-node memory accounting.
//!
//! The paper's Figure 6 shows memory footprint as a first-class metric, and
//! two of its headline findings are out-of-memory failures: CombBLAS
//! triangle counting ("ran out of memory for real-world inputs while
//! computing the A² matrix product") and Giraph's whole-superstep message
//! buffering. [`MemTracker`] reproduces both as typed [`OutOfMemory`]
//! errors when charged allocations exceed node capacity.

/// Error returned when a charged allocation exceeds node capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The node that failed.
    pub node: usize,
    /// Bytes in use before the failing allocation.
    pub in_use: u64,
    /// Size of the failing allocation.
    pub requested: u64,
    /// Node capacity.
    pub capacity: u64,
    /// Label of the failing allocation (e.g. `"spgemm:A2"`).
    pub label: String,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {} out of memory: {} in use + {} requested ({}) > capacity {}",
            self.node, self.in_use, self.requested, self.label, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks charged allocations on one simulated node.
#[derive(Clone, Debug)]
pub struct MemTracker {
    node: usize,
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl MemTracker {
    /// A tracker for `node` with the given byte capacity.
    pub fn new(node: usize, capacity: u64) -> Self {
        MemTracker {
            node,
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Charges an allocation; fails if it would exceed capacity.
    pub fn alloc(&mut self, bytes: u64, label: &str) -> Result<(), OutOfMemory> {
        if self.in_use.saturating_add(bytes) > self.capacity {
            return Err(OutOfMemory {
                node: self.node,
                in_use: self.in_use,
                requested: bytes,
                capacity: self.capacity,
                label: label.to_string(),
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases a previously charged allocation (clamped at zero).
    pub fn free(&mut self, bytes: u64) {
        self.in_use = self.in_use.saturating_sub(bytes);
    }

    /// The node this tracker accounts for.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Bytes currently in use.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Highest in-use watermark seen.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Node capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_and_peak() {
        let mut m = MemTracker::new(0, 100);
        m.alloc(40, "a").unwrap();
        m.alloc(50, "b").unwrap();
        assert_eq!(m.in_use(), 90);
        m.free(60);
        assert_eq!(m.in_use(), 30);
        assert_eq!(m.peak(), 90);
    }

    #[test]
    fn oom_is_typed_and_informative() {
        let mut m = MemTracker::new(3, 100);
        m.alloc(80, "graph").unwrap();
        let err = m.alloc(30, "spgemm:A2").unwrap_err();
        assert_eq!(err.node, 3);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.requested, 30);
        assert_eq!(err.label, "spgemm:A2");
        assert!(err.to_string().contains("spgemm:A2"));
        // failed alloc does not change state
        assert_eq!(m.in_use(), 80);
    }

    #[test]
    fn free_clamps_at_zero() {
        let mut m = MemTracker::new(0, 10);
        m.alloc(5, "x").unwrap();
        m.free(100);
        assert_eq!(m.in_use(), 0);
    }
}
