//! Lossy-link resilience counters — the cost of keeping the message
//! plane reliable when the network is not.
//!
//! [`RetransmitStats`] records what the ack/retransmit protocol, the
//! heartbeat failure detector and speculative straggler re-execution
//! *spent* to mask link faults: retransmitted bytes, exponential-backoff
//! timeout seconds, heartbeat traffic, failure-detection latency and
//! duplicated work. All counters are zero unless the active
//! [`FaultPlan`] carries link-level terms (`linkdrop`/`dup`/`slowlink`),
//! so fault-free reports stay bit-identical with earlier journal
//! versions.
//!
//! [`FaultPlan`]: https://docs.rs/graphmaze-cluster (cluster::faults)

/// Counters for the resilience machinery of one run. Carried in
/// [`crate::RunReport`] and journal schema v4.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RetransmitStats {
    /// Retransmissions performed: one per transmission attempt lost on a
    /// lossy link (`linkdrop`), capped per transfer by the attempt limit.
    pub retransmits: u64,
    /// Wire bytes of those retransmissions (charged to the sender and
    /// the traffic matrix like any other transfer).
    pub retransmitted_bytes: u64,
    /// Transfers duplicated in flight (`dup`).
    pub duplicates: u64,
    /// Wire bytes of the duplicate deliveries.
    pub duplicate_bytes: u64,
    /// Simulated seconds spent in retransmission timeouts (exponential
    /// backoff) and slow-link excess wire time — the timeline's
    /// `resilience_s` column sum.
    pub timeout_seconds: f64,
    /// Heartbeats exchanged by the failure detector.
    pub heartbeats: u64,
    /// Wire bytes of those heartbeats.
    pub heartbeat_bytes: u64,
    /// Beats the detector waited for a dead peer before suspecting it.
    pub missed_beats: u64,
    /// Peers declared suspect after K missed beats.
    pub suspicions: u32,
    /// Failure-detection latency (K × heartbeat period per suspicion),
    /// charged to the recovery lane before restore/replay begins.
    pub detection_seconds: f64,
    /// Straggler partitions speculatively re-executed on a buddy node.
    pub speculative_reexecs: u64,
    /// Compute seconds the buddies spent on that speculation.
    pub speculative_seconds: f64,
    /// Duplicate result messages suppressed by the Mailbox combiner
    /// (the speculating buddy's copies never reach the wire).
    pub suppressed_duplicates: u64,
}

impl RetransmitStats {
    /// Whether nothing resilience-related happened (fault-free runs and
    /// plans without link-level terms).
    pub fn is_zero(&self) -> bool {
        *self == RetransmitStats::default()
    }

    /// Total extra wire bytes the lossy link cost this run.
    pub fn overhead_bytes(&self) -> u64 {
        self.retransmitted_bytes + self.duplicate_bytes + self.heartbeat_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = RetransmitStats::default();
        assert!(s.is_zero());
        assert_eq!(s.overhead_bytes(), 0);
    }

    #[test]
    fn any_counter_breaks_is_zero() {
        let s = RetransmitStats {
            retransmits: 1,
            ..Default::default()
        };
        assert!(!s.is_zero());
        let t = RetransmitStats {
            timeout_seconds: 0.5,
            ..Default::default()
        };
        assert!(!t.is_zero());
    }

    #[test]
    fn overhead_sums_all_extra_traffic() {
        let s = RetransmitStats {
            retransmitted_bytes: 100,
            duplicate_bytes: 30,
            heartbeat_bytes: 7,
            ..Default::default()
        };
        assert_eq!(s.overhead_bytes(), 137);
    }
}
