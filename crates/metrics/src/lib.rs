//! # graphmaze-metrics
//!
//! Metering primitives for the cluster simulator: counted work
//! ([`Work`]), per-node memory accounting ([`MemTracker`]), network
//! traffic statistics ([`TrafficStats`]) and the final run report
//! ([`RunReport`]) corresponding to the paper's `sar`/`sysstat`
//! measurements (§5.4, Figure 6).
//!
//! Everything here is *measured on real executions* — the algorithms in
//! `graphmaze-native` and `graphmaze-engines` really run, and these
//! counters record exactly what they did. Only the conversion of counts
//! to seconds (done in `graphmaze-cluster`) uses the paper's hardware
//! constants.

pub mod expose;
pub mod memory;
pub mod rebalance;
pub mod recovery;
pub mod report;
pub mod retransmit;
pub mod telemetry;
pub mod timeline;
pub mod traffic;
pub mod work;

pub use expose::{parse as parse_exposition, render as render_exposition, Sample, EXPOSITION_EOF};
pub use memory::{MemTracker, OutOfMemory};
pub use rebalance::RebalanceStats;
pub use recovery::RecoveryStats;
pub use report::RunReport;
pub use retransmit::RetransmitStats;
pub use telemetry::{
    Counter, Gauge, Histogram, MetricKind, Registry, SpanRecord, SPAN_STAGES, TIME_BUCKETS_S,
};
pub use timeline::{PhaseStat, StepRecord, Timeline};
pub use traffic::{TrafficMatrix, TrafficStats};
pub use work::Work;
