//! Fault-recovery accounting: what injected faults cost a run.
//!
//! The simulator (in `graphmaze-cluster`) accumulates one
//! [`RecoveryStats`] per run while consulting its fault plan: checkpoint
//! writes, rollback/replay after a node failure, straggler slots,
//! dropped-and-retransmitted sends, and transient memory-pressure events.
//! The block rides on [`crate::RunReport`] and is zero for fault-free
//! runs.

/// Per-run fault and recovery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Superstep checkpoints written.
    pub checkpoints: u32,
    /// Bytes written across all checkpoints (max-node state per
    /// checkpoint — nodes write in parallel, the largest binds).
    pub checkpoint_bytes: u64,
    /// Simulated seconds spent writing checkpoints.
    pub checkpoint_seconds: f64,
    /// Whole-node failures recovered from (checkpoint/restart engines).
    pub failures: u32,
    /// BSP steps re-executed during rollback-and-replay, counting the
    /// failed step itself.
    pub steps_replayed: u32,
    /// Simulated seconds reading the last checkpoint back.
    pub restore_seconds: f64,
    /// Simulated seconds re-executing steps since the last checkpoint.
    pub replay_seconds: f64,
    /// (node, step) slots that ran slowed-down compute.
    pub straggler_events: u64,
    /// Sends dropped by the network and retransmitted.
    pub dropped_sends: u64,
    /// Wire bytes retransmitted for dropped sends.
    pub retransmitted_bytes: u64,
    /// Allocations that landed during transient memory pressure.
    pub mem_pressure_events: u64,
}

impl RecoveryStats {
    /// Whether nothing fault-related happened (always true for runs
    /// without an active fault plan).
    pub fn is_zero(&self) -> bool {
        *self == RecoveryStats::default()
    }

    /// Total simulated seconds attributable to resilience: checkpoint
    /// writes plus restore plus replay. Equals the sum of the timeline's
    /// `recovery_s` column by construction.
    pub fn recovery_seconds(&self) -> f64 {
        self.checkpoint_seconds + self.restore_seconds + self.replay_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let r = RecoveryStats::default();
        assert!(r.is_zero());
        assert_eq!(r.recovery_seconds(), 0.0);
    }

    #[test]
    fn recovery_seconds_sums_components() {
        let r = RecoveryStats {
            checkpoint_seconds: 1.5,
            restore_seconds: 0.25,
            replay_seconds: 2.0,
            ..Default::default()
        };
        assert!(!r.is_zero());
        assert!((r.recovery_seconds() - 3.75).abs() < 1e-12);
    }
}
