//! Counted computational work.
//!
//! Graph kernels are bound by one of three node resources (paper §5.1,
//! Table 4): streaming memory bandwidth, random-access latency, or — rarely
//! — arithmetic. [`Work`] counts all three so the cost model can take the
//! binding maximum.

/// Work performed by a metered region, in hardware-neutral units.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Work {
    /// Bytes read/written with streaming (prefetchable) access.
    pub seq_bytes: u64,
    /// Cache-missing random accesses (irregular gathers/scatters).
    pub rand_accesses: u64,
    /// Arithmetic operations (multiply-add counts as 2).
    pub flops: u64,
}

impl Work {
    /// No work.
    pub const ZERO: Work = Work {
        seq_bytes: 0,
        rand_accesses: 0,
        flops: 0,
    };

    /// Pure streaming work of `bytes`.
    pub fn stream(bytes: u64) -> Work {
        Work {
            seq_bytes: bytes,
            ..Work::ZERO
        }
    }

    /// Pure random-access work of `n` accesses.
    pub fn random(n: u64) -> Work {
        Work {
            rand_accesses: n,
            ..Work::ZERO
        }
    }

    /// Pure arithmetic work of `n` flops.
    pub fn flops(n: u64) -> Work {
        Work {
            flops: n,
            ..Work::ZERO
        }
    }

    /// Component-wise accumulation.
    #[inline]
    pub fn accumulate(&mut self, other: Work) {
        self.seq_bytes += other.seq_bytes;
        self.rand_accesses += other.rand_accesses;
        self.flops += other.flops;
    }

    /// Scales every component by an integer factor (framework per-op
    /// overhead multipliers).
    pub fn scaled(self, factor: f64) -> Work {
        debug_assert!(factor >= 0.0);
        Work {
            seq_bytes: (self.seq_bytes as f64 * factor) as u64,
            rand_accesses: (self.rand_accesses as f64 * factor) as u64,
            flops: (self.flops as f64 * factor) as u64,
        }
    }

    /// True if all components are zero.
    pub fn is_zero(&self) -> bool {
        *self == Work::ZERO
    }
}

impl std::ops::Add for Work {
    type Output = Work;

    fn add(self, rhs: Work) -> Work {
        let mut w = self;
        w.accumulate(rhs);
        w
    }
}

impl std::iter::Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        iter.fold(Work::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Work::stream(10).seq_bytes, 10);
        assert_eq!(Work::random(5).rand_accesses, 5);
        assert_eq!(Work::flops(3).flops, 3);
        assert!(Work::ZERO.is_zero());
    }

    #[test]
    fn add_and_sum() {
        let w = Work::stream(10) + Work::random(5) + Work::flops(2);
        assert_eq!(
            w,
            Work {
                seq_bytes: 10,
                rand_accesses: 5,
                flops: 2
            }
        );
        let total: Work = [Work::stream(1), Work::stream(2)].into_iter().sum();
        assert_eq!(total.seq_bytes, 3);
    }

    #[test]
    fn scaled_applies_factor() {
        let w = Work {
            seq_bytes: 100,
            rand_accesses: 10,
            flops: 4,
        }
        .scaled(2.5);
        assert_eq!(
            w,
            Work {
                seq_bytes: 250,
                rand_accesses: 25,
                flops: 10
            }
        );
        assert_eq!(Work::stream(7).scaled(0.0), Work::ZERO);
    }
}
