//! Elasticity accounting: what cluster membership changes cost a run.
//!
//! The simulator (in `graphmaze-cluster`) accumulates one
//! [`RebalanceStats`] per run while processing the fault plan's
//! membership events: node joins (warm-started from the last
//! checkpoint), graceful leaves (mailboxes drained at the barrier, state
//! migrated off), and the live repartitioning both trigger — logical
//! partitions moving between physical nodes, their bytes charged through
//! the router's packetization rule into the traffic matrix. The block
//! rides on [`crate::RunReport`] and is zero for static-cluster runs.

/// Per-run elasticity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RebalanceStats {
    /// Nodes that joined the cluster mid-run.
    pub joins: u32,
    /// Nodes that gracefully left the cluster mid-run.
    pub leaves: u32,
    /// Barriers at which a repartitioning executed (the issue's
    /// "steps-to-rebalance": one rebalance per membership barrier).
    pub rebalances: u32,
    /// Wire bytes of vertex state and adjacency migrated between
    /// physical nodes, charged into the traffic matrix.
    pub migrated_bytes: u64,
    /// Vertices whose owner changed across all rebalances (0 when the
    /// engine never declared its partition sizes).
    pub migrated_vertices: u64,
    /// Simulated seconds the barrier stalled for migrations and
    /// warm-starts. Equals the sum of the timeline's `rebalance_s`
    /// column by construction.
    pub stall_seconds: f64,
    /// Subset of `stall_seconds`: joiner checkpoint-restore reads.
    pub warmstart_seconds: f64,
    /// Messages a leaving node flushed at its final barrier (the
    /// graceful drain, as opposed to `kill`'s rollback).
    pub drained_messages: u64,
    /// Wire bytes that never touched the network because the sending
    /// and receiving logical partitions were co-located on one physical
    /// node after a shrink.
    pub colocated_bytes: u64,
    /// Largest active node count seen during the run (0 for
    /// static-cluster runs).
    pub peak_nodes: u32,
    /// Active node count when the run finished (0 for static-cluster
    /// runs).
    pub final_nodes: u32,
}

impl RebalanceStats {
    /// Whether no membership machinery engaged (always true for runs
    /// without membership or hardware-profile terms in the fault plan).
    pub fn is_zero(&self) -> bool {
        *self == RebalanceStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let r = RebalanceStats::default();
        assert!(r.is_zero());
        assert_eq!(r.stall_seconds, 0.0);
    }

    #[test]
    fn any_membership_event_breaks_zero() {
        let r = RebalanceStats {
            joins: 1,
            rebalances: 1,
            migrated_bytes: 4096,
            stall_seconds: 0.25,
            ..Default::default()
        };
        assert!(!r.is_zero());
    }
}
