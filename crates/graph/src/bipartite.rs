//! Bipartite ratings graphs for collaborative filtering.
//!
//! A ratings matrix `R` (users × items) is the edge-weight matrix of a
//! bipartite graph (paper Figure 1). We keep both orientations as weighted
//! CSRs so SGD/GD can stream either by-user or by-item.

use crate::csr::WeightedCsr;
use crate::{VertexId, Weight};

/// A bipartite, edge-weighted ratings graph.
///
/// Users and items have independent id spaces `0..num_users` and
/// `0..num_items`.
#[derive(Clone, Debug)]
pub struct RatingsGraph {
    num_users: u32,
    num_items: u32,
    /// user → (item, rating)
    by_user: WeightedCsr,
    /// item → (user, rating)
    by_item: WeightedCsr,
}

impl RatingsGraph {
    /// Builds from `(user, item, rating)` triples.
    ///
    /// Panics (debug) if any user/item id is out of range.
    pub fn from_ratings(
        num_users: u32,
        num_items: u32,
        ratings: &[(VertexId, VertexId, Weight)],
    ) -> Self {
        debug_assert!(ratings
            .iter()
            .all(|&(u, v, _)| u < num_users && v < num_items));
        let by_user = WeightedCsr::from_edges(u64::from(num_users), ratings);
        let flipped: Vec<_> = ratings.iter().map(|&(u, v, w)| (v, u, w)).collect();
        let by_item = WeightedCsr::from_edges(u64::from(num_items), &flipped);
        RatingsGraph {
            num_users,
            num_items,
            by_user,
            by_item,
        }
    }

    /// Number of users.
    #[inline]
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of items.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of ratings (edges).
    #[inline]
    pub fn num_ratings(&self) -> u64 {
        self.by_user.num_edges()
    }

    /// `(item, rating)` pairs of a user.
    pub fn ratings_of_user(&self, u: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.by_user.edges_of(u)
    }

    /// `(user, rating)` pairs of an item.
    pub fn ratings_of_item(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.by_item.edges_of(v)
    }

    /// The user-oriented weighted CSR.
    #[inline]
    pub fn by_user(&self) -> &WeightedCsr {
        &self.by_user
    }

    /// The item-oriented weighted CSR.
    #[inline]
    pub fn by_item(&self) -> &WeightedCsr {
        &self.by_item
    }

    /// Number of ratings by user `u`.
    #[inline]
    pub fn user_degree(&self, u: VertexId) -> u32 {
        self.by_user.structure().degree(u)
    }

    /// Number of ratings of item `v`.
    #[inline]
    pub fn item_degree(&self, v: VertexId) -> u32 {
        self.by_item.structure().degree(v)
    }

    /// Mean of all ratings (0 if empty).
    pub fn mean_rating(&self) -> f64 {
        if self.num_ratings() == 0 {
            return 0.0;
        }
        let sum: f64 = (0..self.num_users)
            .flat_map(|u| self.by_user.weights_of(u))
            .map(|&w| f64::from(w))
            .sum();
        sum / self.num_ratings() as f64
    }

    /// Flat `(user, item, rating)` triples in user-major order.
    pub fn triples(&self) -> Vec<(VertexId, VertexId, Weight)> {
        let mut out = Vec::with_capacity(self.num_ratings() as usize);
        for u in 0..self.num_users {
            for (v, w) in self.ratings_of_user(u) {
                out.push((u, v, w));
            }
        }
        out
    }

    /// Bytes of backing storage (both orientations).
    pub fn byte_size(&self) -> u64 {
        self.by_user.byte_size() + self.by_item.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RatingsGraph {
        // 3 users, 2 items
        RatingsGraph::from_ratings(3, 2, &[(0, 0, 5.0), (0, 1, 3.0), (1, 1, 4.0), (2, 0, 1.0)])
    }

    #[test]
    fn dimensions_and_counts() {
        let g = sample();
        assert_eq!(g.num_users(), 3);
        assert_eq!(g.num_items(), 2);
        assert_eq!(g.num_ratings(), 4);
        assert_eq!(g.user_degree(0), 2);
        assert_eq!(g.item_degree(1), 2);
    }

    #[test]
    fn both_orientations_agree() {
        let g = sample();
        let by_user: Vec<_> = g.ratings_of_user(0).collect();
        assert_eq!(by_user, vec![(0, 5.0), (1, 3.0)]);
        let mut by_item: Vec<_> = g.ratings_of_item(1).collect();
        by_item.sort_by_key(|p| p.0);
        assert_eq!(by_item, vec![(0, 3.0), (1, 4.0)]);
    }

    #[test]
    fn mean_rating_correct() {
        let g = sample();
        assert!((g.mean_rating() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn triples_round_trip() {
        let g = sample();
        let t = g.triples();
        let g2 = RatingsGraph::from_ratings(3, 2, &t);
        assert_eq!(g2.triples(), t);
    }

    #[test]
    fn empty_graph_mean_is_zero() {
        let g = RatingsGraph::from_ratings(2, 2, &[]);
        assert_eq!(g.mean_rating(), 0.0);
        assert_eq!(g.num_ratings(), 0);
    }
}
