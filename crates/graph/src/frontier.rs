//! BFS frontiers with sparse/dense duality.
//!
//! Direction-optimizing BFS (Satish et al.'s native implementation follows
//! \[28\]) needs the current frontier both as a queue (top-down expansion)
//! and as a bit-vector (bottom-up membership tests). [`Frontier`] keeps a
//! vertex list plus an optional dense bit-vector, and decides representation
//! by occupancy.

use crate::bitvec::BitVec;
use crate::VertexId;

/// A set of active vertices for one BFS/traversal level.
#[derive(Clone, Debug)]
pub struct Frontier {
    num_vertices: usize,
    vertices: Vec<VertexId>,
    dense: Option<BitVec>,
}

impl Frontier {
    /// An empty frontier over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Frontier {
            num_vertices,
            vertices: Vec::new(),
            dense: None,
        }
    }

    /// A frontier containing exactly `v`.
    pub fn singleton(num_vertices: usize, v: VertexId) -> Self {
        let mut f = Frontier::new(num_vertices);
        f.push(v);
        f
    }

    /// Builds a frontier from a vertex list (deduplicated by the caller).
    pub fn from_vertices(num_vertices: usize, vertices: Vec<VertexId>) -> Self {
        debug_assert!(vertices.iter().all(|&v| (v as usize) < num_vertices));
        Frontier {
            num_vertices,
            vertices,
            dense: None,
        }
    }

    /// Adds a vertex (caller guarantees no duplicates).
    #[inline]
    pub fn push(&mut self, v: VertexId) {
        debug_assert!((v as usize) < self.num_vertices);
        self.vertices.push(v);
        if let Some(d) = &mut self.dense {
            d.set(v as usize);
        }
    }

    /// Number of active vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if no vertices are active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Active vertices as a slice (sparse view).
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Occupancy in `[0, 1]`: `len / num_vertices`.
    pub fn occupancy(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.vertices.len() as f64 / self.num_vertices as f64
        }
    }

    /// Materializes (and caches) the dense bit-vector view.
    pub fn dense(&mut self) -> &BitVec {
        if self.dense.is_none() {
            let mut bv = BitVec::new(self.num_vertices);
            for &v in &self.vertices {
                bv.set(v as usize);
            }
            self.dense = Some(bv);
        }
        self.dense.as_ref().expect("just materialized")
    }

    /// Membership test; uses the dense view if materialized, else scans.
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.dense {
            Some(d) => d.get(v as usize),
            None => self.vertices.contains(&v),
        }
    }

    /// Whether bottom-up traversal should be preferred, per the
    /// direction-optimizing heuristic: switch when the frontier's edge
    /// volume exceeds `1/alpha` of the remaining edge volume. We use the
    /// simpler occupancy form: switch bottom-up when more than `threshold`
    /// of all vertices are active.
    pub fn prefer_bottom_up(&self, threshold: f64) -> bool {
        self.occupancy() > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_that_vertex() {
        let f = Frontier::singleton(10, 3);
        assert_eq!(f.len(), 1);
        assert!(f.contains(3));
        assert!(!f.contains(4));
    }

    #[test]
    fn dense_view_matches_sparse() {
        let mut f = Frontier::from_vertices(100, vec![1, 50, 99]);
        let d = f.dense().clone();
        assert_eq!(d.count_ones(), 3);
        assert!(d.get(1) && d.get(50) && d.get(99));
        // pushes after materialization keep views consistent
        f.push(7);
        assert!(f.dense().get(7));
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn occupancy_and_direction_heuristic() {
        let f = Frontier::from_vertices(10, vec![0, 1, 2]);
        assert!((f.occupancy() - 0.3).abs() < 1e-12);
        assert!(f.prefer_bottom_up(0.1));
        assert!(!f.prefer_bottom_up(0.5));
    }

    #[test]
    fn empty_frontier() {
        let f = Frontier::new(0);
        assert!(f.is_empty());
        assert_eq!(f.occupancy(), 0.0);
    }
}
