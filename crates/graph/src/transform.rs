//! Graph transformations: relabeling and orientation.
//!
//! Degree-descending relabeling improves locality (hubs get small ids and
//! share cache lines); degree-based DAG orientation is the standard
//! triangle-counting preprocessing (orient each edge toward the
//! higher-degree endpoint, breaking ties by id) that bounds intersection
//! work on power-law graphs.

use crate::csr::Csr;
use crate::degree::vertices_by_degree_desc;
use crate::VertexId;

/// Computes the permutation mapping old ids → new ids that sorts vertices
/// by descending degree.
pub fn degree_desc_permutation(g: &Csr) -> Vec<VertexId> {
    let order = vertices_by_degree_desc(g);
    let mut perm = vec![0 as VertexId; g.num_vertices()];
    for (new_id, &old_id) in order.iter().enumerate() {
        perm[old_id as usize] = new_id as VertexId;
    }
    perm
}

/// Applies a permutation (old id → new id) to edge tuples.
pub fn relabel_edges(
    edges: &[(VertexId, VertexId)],
    perm: &[VertexId],
) -> Vec<(VertexId, VertexId)> {
    edges
        .iter()
        .map(|&(s, d)| (perm[s as usize], perm[d as usize]))
        .collect()
}

/// Orients each undirected edge from the lower-degree endpoint to the
/// higher-degree endpoint (ties broken by id), removing self-loops and
/// duplicates. The result is a DAG whose out-degrees are bounded by
/// O(sqrt(m)) on power-law graphs — the key to fast triangle counting.
pub fn orient_by_degree(
    num_vertices: u64,
    edges: &[(VertexId, VertexId)],
    degree_of: impl Fn(VertexId) -> u32,
) -> Vec<(VertexId, VertexId)> {
    let _ = num_vertices;
    let mut out: Vec<(VertexId, VertexId)> = edges
        .iter()
        .filter(|&&(s, d)| s != d)
        .map(|&(s, d)| {
            let (ds, dd) = (degree_of(s), degree_of(d));
            if (ds, s) <= (dd, d) {
                (s, d)
            } else {
                (d, s)
            }
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Verifies that an edge set is a DAG orientation under `rank`: every edge
/// goes from lower rank to higher rank.
pub fn is_oriented_by(edges: &[(VertexId, VertexId)], rank: impl Fn(VertexId) -> u64) -> bool {
    edges.iter().all(|&(s, d)| rank(s) < rank(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_puts_hub_first() {
        // 0 is the hub
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let perm = degree_desc_permutation(&g);
        assert_eq!(perm[0], 0); // hub keeps id 0
                                // vertex 1 (degree 1) comes before 2,3 (degree 0)
        assert_eq!(perm[1], 1);
    }

    #[test]
    fn relabel_round_trip() {
        let edges = vec![(0u32, 1u32), (1, 2)];
        let perm = vec![2u32, 0, 1];
        let relabeled = relabel_edges(&edges, &perm);
        assert_eq!(relabeled, vec![(2, 0), (0, 1)]);
        // inverse permutation restores
        let mut inv = vec![0u32; 3];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        assert_eq!(relabel_edges(&relabeled, &inv), edges);
    }

    #[test]
    fn orient_by_degree_is_acyclic() {
        // triangle 0-1-2 plus hub 0
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0), (0, 3)];
        let degrees = [3u32, 2, 2, 1];
        let oriented = orient_by_degree(4, &edges, |v| degrees[v as usize]);
        // edges point toward higher (degree, id): ranks by (degree, id)
        assert!(is_oriented_by(&oriented, |v| {
            (u64::from(degrees[v as usize]) << 32) | u64::from(v)
        }));
        assert_eq!(oriented.len(), 4);
    }

    #[test]
    fn orient_drops_self_loops_and_dups() {
        let edges = vec![(1u32, 1u32), (0, 1), (1, 0)];
        let oriented = orient_by_degree(2, &edges, |_| 1);
        assert_eq!(oriented, vec![(0, 1)]);
    }
}
