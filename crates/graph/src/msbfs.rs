//! Bit-parallel multi-source BFS: 64 sources per u64 word pass.
//!
//! The §6.1.1 bit-vector trick taken one step further (ROADMAP item 2,
//! the `bit_gossip` technique): instead of one visited *bit* per vertex,
//! each vertex carries one visited *word* — bit `b` of vertex `v`'s word
//! means "source `b` has reached `v`". A level-synchronous pass then
//! advances **all 64 sources at once**: frontier vertices OR-gossip
//! their masks to their neighbors edge-parallel through
//! [`AtomicBitVec::fetch_or_word`], and a settle pass claims newly
//! arrived bits and records their distance. Batches larger than 64
//! sources run as consecutive word passes.
//!
//! Determinism: the kernel is level-synchronous, so bit `b` settles at
//! vertex `v` exactly at level `dist(source_b, v)` — the first level any
//! in-neighbor of `v` carried bit `b`. `fetch_or` is commutative and
//! associative, and the settle pass walks vertices in index order, so
//! distances *and* frontier order are bit-identical for every thread
//! count and every interleaving.
//!
//! [`msbfs_with`] adds the §6.1 direction-optimizing switch: dense
//! levels run bottom-up, each unsettled vertex *gathering* the OR of its
//! neighbors' frontier masks (early-exiting once every wanted bit is
//! found) instead of frontier vertices scattering theirs. The gather
//! needs no atomics — each vertex is written by exactly one worker — and
//! stays bit-identical at any thread count. It requires a symmetric
//! adjacency; distances are unchanged either way (BFS hop distances are
//! unique), so the switch is a pure wall-clock lever.

use crate::bitvec::AtomicBitVec;
use crate::csr::Csr;
use crate::par::par_for_chunks;
use crate::VertexId;

/// The unreached sentinel distance (matches scalar BFS).
pub const UNREACHED: u32 = u32::MAX;

/// Sources carried per word pass — the width of a `u64`.
pub const WORD_SOURCES: usize = 64;

/// Largest batch a single call accepts (8 word passes). Callers with
/// more sources should loop; the cap keeps the per-pass distance matrix
/// (`64 × n` u32s) bounded.
pub const MAX_BATCH: usize = 512;

/// Frontier occupancy above which [`msbfs_with`] runs a level bottom-up
/// (matches the scalar BFS switch).
const BOTTOM_UP_THRESHOLD: f64 = 0.05;

/// Multi-source BFS over `adj` from `sources`, using `threads` workers.
/// Returns one distance row per source, in source order: `rows[i][v]` is
/// the hop distance from `sources[i]` to `v`, [`UNREACHED`] if `v` is
/// not reachable. Sources need not be distinct. Panics if a source is
/// out of range or the batch exceeds [`MAX_BATCH`].
///
/// Always traverses top-down, which is correct for any adjacency,
/// directed or not. For symmetric graphs, [`msbfs_with`] is faster.
pub fn msbfs(adj: &Csr, sources: &[VertexId], threads: usize) -> Vec<Vec<u32>> {
    msbfs_with(adj, sources, threads, false)
}

/// [`msbfs`] with the direction-optimizing switch controllable. When
/// `direction_optimizing` is true, dense levels run bottom-up, which
/// requires every edge of `adj` to be stored in both directions (as
/// `UndirectedGraph` guarantees) — the caller owns that invariant.
/// Distance rows are identical either way.
pub fn msbfs_with(
    adj: &Csr,
    sources: &[VertexId],
    threads: usize,
    direction_optimizing: bool,
) -> Vec<Vec<u32>> {
    assert!(
        sources.len() <= MAX_BATCH,
        "batch of {} sources exceeds MAX_BATCH ({MAX_BATCH})",
        sources.len()
    );
    let n = adj.num_vertices();
    for &s in sources {
        assert!(
            (s as usize) < n,
            "source {s} out of range (num_vertices={n})"
        );
    }
    let mut rows = Vec::with_capacity(sources.len());
    for group in sources.chunks(WORD_SOURCES) {
        word_pass(adj, group, threads, direction_optimizing, &mut rows);
    }
    rows
}

/// One 64-wide pass: advances `group` (≤ 64 sources) to completion and
/// appends one distance row per source to `rows`.
fn word_pass(
    adj: &Csr,
    group: &[VertexId],
    threads: usize,
    direction_optimizing: bool,
    rows: &mut Vec<Vec<u32>>,
) {
    let n = adj.num_vertices();
    let k = group.len();
    debug_assert!(k <= WORD_SOURCES);
    if k == 0 {
        return;
    }
    // per-vertex state: settled mask, gossip inbox, packed distances
    // (dist[v * 64 + b] = level at which bit b settled at v)
    let mut seen = vec![0u64; n];
    let next = AtomicBitVec::new(n * WORD_SOURCES);
    let mut dist = vec![UNREACHED; n * WORD_SOURCES];

    // seed: merge duplicate source vertices into one mask per vertex
    let mut seeds: Vec<(VertexId, u64)> = group
        .iter()
        .enumerate()
        .map(|(b, &s)| (s, 1u64 << b))
        .collect();
    seeds.sort_unstable_by_key(|&(v, _)| v);
    let mut frontier: Vec<(VertexId, u64)> = Vec::with_capacity(seeds.len());
    for (v, m) in seeds.drain(..) {
        match frontier.last_mut() {
            Some((lv, lm)) if *lv == v => *lm |= m,
            _ => frontier.push((v, m)),
        }
    }
    for &(v, m) in &frontier {
        seen[v as usize] = m;
        let mut bits = m;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            dist[v as usize * WORD_SOURCES + b] = 0;
        }
    }

    // bit `b` is wanted at `v` until it settles there; once `seen[v]`
    // covers the whole group the vertex is done
    let full: u64 = if k == WORD_SOURCES {
        u64::MAX
    } else {
        (1u64 << k) - 1
    };
    // dense frontier masks, allocated on the first bottom-up level and
    // kept clear between levels by erasing the old frontier's entries
    let mut front: Vec<u64> = Vec::new();

    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        if direction_optimizing && frontier.len() as f64 / n as f64 > BOTTOM_UP_THRESHOLD {
            // bottom-up: every unsettled vertex gathers the OR of its
            // neighbors' frontier masks. One writer per vertex, walked
            // in index order — deterministic without atomics. The early
            // exit fires once every still-wanted bit has been found.
            if front.is_empty() {
                front = vec![0u64; n];
            }
            for &(v, m) in &frontier {
                front[v as usize] = m;
            }
            let workers = threads.max(1).min(n.max(1));
            let chunk = n.div_ceil(workers);
            let parts: Vec<Vec<(VertexId, u64)>> = std::thread::scope(|sc| {
                let handles: Vec<_> = seen
                    .chunks_mut(chunk)
                    .zip(dist.chunks_mut(chunk * WORD_SOURCES))
                    .enumerate()
                    .map(|(t, (seen_chunk, dist_chunk))| {
                        let front = &front;
                        sc.spawn(move || {
                            let base = t * chunk;
                            let mut part: Vec<(VertexId, u64)> = Vec::new();
                            for (j, sv) in seen_chunk.iter_mut().enumerate() {
                                let want = full & !*sv;
                                if want == 0 {
                                    continue;
                                }
                                let mut gain = 0u64;
                                for &u in adj.neighbors((base + j) as VertexId) {
                                    gain |= front[u as usize];
                                    if gain & want == want {
                                        break;
                                    }
                                }
                                let m = gain & want;
                                if m != 0 {
                                    *sv |= m;
                                    let mut bits = m;
                                    while bits != 0 {
                                        let b = bits.trailing_zeros() as usize;
                                        bits &= bits - 1;
                                        dist_chunk[j * WORD_SOURCES + b] = level;
                                    }
                                    part.push(((base + j) as VertexId, m));
                                }
                            }
                            part
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("bottom-up worker panicked"))
                    .collect()
            });
            for &(v, _) in &frontier {
                front[v as usize] = 0;
            }
            frontier = parts.concat();
            continue;
        }
        // expand: OR-gossip every frontier mask over its edges. `seen`
        // is read-only in this phase, so the pre-filter is race-free;
        // `fetch_or_word` commutes, so thread order cannot matter.
        {
            let (frontier, seen) = (&frontier, &seen);
            par_for_chunks(frontier.len(), threads, |_, range| {
                for &(v, m) in &frontier[range] {
                    for &w in adj.neighbors(v) {
                        if m & !seen[w as usize] != 0 {
                            next.fetch_or_word(w as usize, m);
                        }
                    }
                }
            });
        }
        // settle: claim newly arrived bits in vertex order and record
        // their distance. The inbox is monotone (bits are never cleared);
        // `& !seen` keeps already-settled bits from re-settling, so the
        // word never needs resetting between levels.
        let workers = threads.max(1).min(n.max(1));
        let chunk = n.div_ceil(workers);
        let parts: Vec<Vec<(VertexId, u64)>> = std::thread::scope(|sc| {
            let handles: Vec<_> = seen
                .chunks_mut(chunk)
                .zip(dist.chunks_mut(chunk * WORD_SOURCES))
                .enumerate()
                .map(|(t, (seen_chunk, dist_chunk))| {
                    let next = &next;
                    sc.spawn(move || {
                        let base = t * chunk;
                        let mut part: Vec<(VertexId, u64)> = Vec::new();
                        for (j, sv) in seen_chunk.iter_mut().enumerate() {
                            let m = next.load_word(base + j) & !*sv;
                            if m != 0 {
                                *sv |= m;
                                let mut bits = m;
                                while bits != 0 {
                                    let b = bits.trailing_zeros() as usize;
                                    bits &= bits - 1;
                                    dist_chunk[j * WORD_SOURCES + b] = level;
                                }
                                part.push(((base + j) as VertexId, m));
                            }
                        }
                        part
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("settle worker panicked"))
                .collect()
        });
        frontier = parts.concat();
    }

    // per-source row extraction from the packed per-vertex layout,
    // transposed: one sequential read of each vertex's 64-entry block
    // scattered into k row streams, instead of k strided sweeps of the
    // whole packed matrix
    let start = rows.len();
    rows.extend((0..k).map(|_| vec![0u32; n]));
    let out = &mut rows[start..];
    for v in 0..n {
        let block = &dist[v * WORD_SOURCES..v * WORD_SOURCES + k];
        for (row, &d) in out.iter_mut().zip(block) {
            row[v] = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook sequential BFS, the oracle.
    fn scalar_bfs(adj: &Csr, source: VertexId) -> Vec<u32> {
        let n = adj.num_vertices();
        let mut dist = vec![UNREACHED; n];
        dist[source as usize] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(v) = queue.pop_front() {
            for &w in adj.neighbors(v) {
                if dist[w as usize] == UNREACHED {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    fn path_graph(n: u32) -> Csr {
        let mut edges = Vec::new();
        for i in 0..n - 1 {
            edges.push((i, i + 1));
            edges.push((i + 1, i));
        }
        Csr::from_edges(u64::from(n), &edges)
    }

    #[test]
    fn path_distances_are_exact() {
        let adj = path_graph(6);
        let rows = msbfs(&adj, &[0, 5, 2], 2);
        assert_eq!(rows[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rows[1], vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(rows[2], vec![2, 1, 0, 1, 2, 3]);
    }

    /// A deterministic pseudo-random sparse graph, symmetrized.
    fn random_symmetric(n: u32, pairs: usize) -> Csr {
        let mut edges = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..pairs {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) as u32 % n;
            let b = (state & 0xffff_ffff) as u32 % n;
            edges.push((a, b));
            edges.push((b, a));
        }
        Csr::from_edges(u64::from(n), &edges)
    }

    #[test]
    fn matches_scalar_bfs_per_source() {
        let n = 300u32;
        let adj = random_symmetric(n, 900);
        let sources: Vec<u32> = (0..72).map(|i| (i * 37) % n).collect();
        let rows = msbfs(&adj, &sources, 4);
        assert_eq!(rows.len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rows[i], scalar_bfs(&adj, s), "source {s}");
        }
    }

    #[test]
    fn direction_optimization_does_not_change_rows() {
        // dense enough that frontier occupancy crosses the bottom-up
        // threshold, so both directions genuinely run
        let n = 300u32;
        let adj = random_symmetric(n, 900);
        let sources: Vec<u32> = (0..72).map(|i| (i * 37) % n).collect();
        let plain = msbfs(&adj, &sources, 2);
        for threads in [1, 4] {
            assert_eq!(
                msbfs_with(&adj, &sources, threads, true),
                plain,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let adj = path_graph(100);
        let sources: Vec<u32> = (0..64).collect();
        let base = msbfs(&adj, &sources, 1);
        for threads in [2, 3, 8] {
            assert_eq!(msbfs(&adj, &sources, threads), base, "threads={threads}");
        }
    }

    #[test]
    fn duplicate_sources_get_identical_rows() {
        let adj = path_graph(10);
        let rows = msbfs(&adj, &[3, 3, 7], 2);
        assert_eq!(rows[0], rows[1]);
        assert_eq!(rows[0][3], 0);
        assert_eq!(rows[2][7], 0);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        // two components: 0-1-2 and 3-4
        let adj = Csr::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]);
        let rows = msbfs(&adj, &[0, 4], 1);
        assert_eq!(rows[0], vec![0, 1, 2, UNREACHED, UNREACHED]);
        assert_eq!(rows[1], vec![UNREACHED, UNREACHED, UNREACHED, 1, 0]);
    }

    #[test]
    fn empty_batch_returns_no_rows() {
        let adj = path_graph(4);
        assert!(msbfs(&adj, &[], 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let adj = path_graph(4);
        msbfs(&adj, &[4], 1);
    }

    #[test]
    #[should_panic(expected = "MAX_BATCH")]
    fn oversized_batch_panics() {
        let adj = path_graph(4);
        msbfs(&adj, &vec![0; MAX_BATCH + 1], 1);
    }
}
