//! Fixed-size bit-vectors.
//!
//! The paper (§6.1.1) credits bit-vectors with "slightly over 2X" speedups
//! in native BFS and triangle counting: constant-time membership tests with
//! a footprint of one bit per vertex keep the visited/neighbor sets resident
//! in cache. [`BitVec`] is the single-threaded variant; [`AtomicBitVec`]
//! supports concurrent setting from parallel frontier expansion.

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

/// A fixed-size, heap-allocated bit-vector.
///
/// ```
/// use graphmaze_graph::BitVec;
/// let mut visited = BitVec::new(1 << 20);
/// assert!(visited.test_and_set(42));   // claimed
/// assert!(!visited.test_and_set(42));  // already set
/// assert_eq!(visited.count_ones(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit-vector of `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        BitVec {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory footprint of the backing storage in bytes.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    /// Tests bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Sets bit `i` and returns whether it was previously clear
    /// (i.e. whether this call changed it).
    #[inline]
    pub fn test_and_set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was_clear = *w & mask == 0;
        *w |= mask;
        was_clear
    }

    /// Clears all bits (keeps capacity).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            len: self.len,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// In-place union. Panics on length mismatch.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of bits set in both `self` and `other`.
    /// This is the hot loop of bit-vector triangle counting.
    pub fn intersection_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Raw words, for serialization / compression.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bit-vector from raw words produced by [`BitVec::words`].
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(
            words.len() == len.div_ceil(WORD_BITS),
            "word count mismatch"
        );
        BitVec { words, len }
    }
}

/// Iterator over set-bit indices of a [`BitVec`].
pub struct IterOnes<'a> {
    words: &'a [u64],
    len: usize,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * WORD_BITS + bit;
                return if idx < self.len { Some(idx) } else { None };
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// A bit-vector whose bits can be set concurrently from many threads.
///
/// Used for the "visited" set in parallel BFS: `test_and_set` is a single
/// `fetch_or`, so claiming a vertex is wait-free.
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitVec {
    /// Creates an atomic bit-vector of `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        let mut words = Vec::with_capacity(len.div_ceil(WORD_BITS));
        words.resize_with(len.div_ceil(WORD_BITS), || AtomicU64::new(0));
        AtomicBitVec { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i` (relaxed load).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS].load(Ordering::Relaxed) >> (i % WORD_BITS)) & 1 == 1
    }

    /// Atomically sets bit `i`, returning whether it was previously clear.
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        let prev = self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Sets bit `i` without caring about the previous value.
    #[inline]
    pub fn set(&self, i: usize) {
        self.test_and_set(i);
    }

    /// Snapshots the current contents into a plain [`BitVec`].
    pub fn snapshot(&self) -> BitVec {
        BitVec::from_words(
            self.words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            self.len,
        )
    }

    /// Number of set bits (relaxed; exact only at quiescence).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Clears all bits. Requires `&mut`, i.e. exclusive access.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Number of backing `u64` words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Atomically ORs `mask` into word `w`, returning the *previous*
    /// word value — the word-level primitive of bit-parallel multi-source
    /// BFS, where one word carries 64 source masks and `fetch_or` gossips
    /// them edge-parallel. Panics if `w >= num_words()`.
    #[inline]
    pub fn fetch_or_word(&self, w: usize, mask: u64) -> u64 {
        self.words[w].fetch_or(mask, Ordering::Relaxed)
    }

    /// Relaxed load of word `w`. Panics if `w >= num_words()`.
    #[inline]
    pub fn load_word(&self, w: usize) -> u64 {
        self.words[w].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bv = BitVec::new(130);
        assert_eq!(bv.len(), 130);
        assert!(!bv.get(0));
        bv.set(0);
        bv.set(63);
        bv.set(64);
        bv.set(129);
        assert!(bv.get(0) && bv.get(63) && bv.get(64) && bv.get(129));
        assert!(!bv.get(65));
        bv.clear(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 3);
    }

    #[test]
    fn test_and_set_reports_change() {
        let mut bv = BitVec::new(10);
        assert!(bv.test_and_set(3));
        assert!(!bv.test_and_set(3));
        assert!(bv.get(3));
    }

    #[test]
    fn iter_ones_matches_set_bits() {
        let mut bv = BitVec::new(200);
        let bits = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &b in &bits {
            bv.set(b);
        }
        let collected: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(collected, bits);
    }

    #[test]
    fn iter_ones_empty_and_full_word() {
        let bv = BitVec::new(64);
        assert_eq!(bv.iter_ones().count(), 0);
        let mut bv = BitVec::new(64);
        for i in 0..64 {
            bv.set(i);
        }
        assert_eq!(bv.iter_ones().count(), 64);
    }

    #[test]
    fn intersection_count_counts_common_bits() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(3) {
            b.set(i);
        }
        // multiples of 6 in 0..100: 0,6,...,96 -> 17
        assert_eq!(a.intersection_count(&b), 17);
    }

    #[test]
    fn union_with_merges() {
        let mut a = BitVec::new(70);
        let mut b = BitVec::new(70);
        a.set(1);
        b.set(69);
        a.union_with(&b);
        assert!(a.get(1) && a.get(69));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn words_round_trip() {
        let mut a = BitVec::new(77);
        a.set(5);
        a.set(76);
        let b = BitVec::from_words(a.words().to_vec(), 77);
        assert_eq!(a, b);
    }

    #[test]
    fn atomic_set_from_threads() {
        let bv = AtomicBitVec::new(1000);
        std::thread::scope(|s| {
            for t in 0..4 {
                let bv = &bv;
                s.spawn(move || {
                    for i in (t..1000).step_by(4) {
                        bv.set(i);
                    }
                });
            }
        });
        assert_eq!(bv.count_ones(), 1000);
        let snap = bv.snapshot();
        assert_eq!(snap.count_ones(), 1000);
    }

    #[test]
    fn atomic_test_and_set_claims_once() {
        let bv = AtomicBitVec::new(64);
        assert!(bv.test_and_set(7));
        assert!(!bv.test_and_set(7));
    }

    #[test]
    fn clear_all_resets() {
        let mut bv = BitVec::new(100);
        bv.set(42);
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
        let mut abv = AtomicBitVec::new(100);
        abv.set(42);
        abv.clear_all();
        assert_eq!(abv.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bv = BitVec::new(10);
        bv.get(10);
    }

    #[test]
    fn word_ops_round_trip() {
        let bv = AtomicBitVec::new(130);
        assert_eq!(bv.num_words(), 3);
        assert_eq!(bv.fetch_or_word(0, 0b1010), 0);
        assert_eq!(bv.fetch_or_word(0, 0b0110), 0b1010);
        assert_eq!(bv.load_word(0), 0b1110);
        assert!(bv.get(1) && bv.get(2) && bv.get(3) && !bv.get(0));
        bv.fetch_or_word(2, 1 << 1); // bit 129
        assert!(bv.get(129));
        assert_eq!(bv.snapshot().count_ones(), 4);
    }

    /// Interleaving torture: N threads each OR a deterministic stream of
    /// masks into random words. Whatever the interleaving, the quiescent
    /// image must equal the sequential OR of all masks — `fetch_or` loses
    /// nothing. Exercises lengths that are not word multiples.
    #[test]
    fn concurrent_fetch_or_converges_to_sequential_or_image() {
        // SplitMix64, the workspace-standard deterministic generator
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        for len in [1usize, 63, 64, 65, 127, 1000] {
            let words = len.div_ceil(64);
            let threads = 8;
            let per_thread = 2000;
            // expected image: sequential OR of every (word, mask) op
            let mut want = vec![0u64; words];
            for t in 0..threads as u64 {
                let mut st = 0x5eed_0000 + t;
                for _ in 0..per_thread {
                    let w = (splitmix(&mut st) as usize) % words;
                    let mask = splitmix(&mut st);
                    want[w] |= mask;
                }
            }
            let bv = AtomicBitVec::new(len);
            std::thread::scope(|s| {
                for t in 0..threads as u64 {
                    let bv = &bv;
                    s.spawn(move || {
                        let mut st = 0x5eed_0000 + t;
                        for _ in 0..per_thread {
                            let w = (splitmix(&mut st) as usize) % words;
                            let mask = splitmix(&mut st);
                            bv.fetch_or_word(w, mask);
                        }
                    });
                }
            });
            let got: Vec<u64> = (0..words).map(|w| bv.load_word(w)).collect();
            assert_eq!(got, want, "len={len}");
        }
    }

    /// Word-boundary edge cases for the concurrent vector: empty, a
    /// single bit, and concurrent test/claim interleaved with word ORs.
    #[test]
    fn atomic_word_boundary_edge_cases() {
        let bv = AtomicBitVec::new(0);
        assert!(bv.is_empty());
        assert_eq!(bv.num_words(), 0);
        assert_eq!(bv.snapshot().count_ones(), 0);

        let bv = AtomicBitVec::new(1);
        assert_eq!(bv.num_words(), 1);
        assert!(bv.test_and_set(0));
        assert_eq!(bv.load_word(0), 1);

        // concurrent claimers + word-OR writers on the same word: every
        // bit claimed exactly once, and the word image is the full OR
        let bv = AtomicBitVec::new(64);
        let claims = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (bv, claims) = (&bv, &claims);
                s.spawn(move || {
                    for i in 0..64 {
                        if bv.test_and_set(i) {
                            claims.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            let bv = &bv;
            s.spawn(move || {
                for i in 0..64 {
                    bv.fetch_or_word(0, 1u64 << i);
                }
            });
        });
        assert_eq!(claims.load(Ordering::Relaxed), 64, "each bit claimed once");
        assert_eq!(bv.load_word(0), u64::MAX);
    }
}
