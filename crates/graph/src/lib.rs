//! # graphmaze-graph
//!
//! In-memory graph substrate for the `graphmaze` workspace: flat,
//! cache-friendly graph representations and the low-level data structures
//! the paper's hand-optimized "native" implementations rely on
//! (Satish et al., *Navigating the Maze of Graph Analytics Frameworks
//! using Massive Graph Datasets*, SIGMOD 2014).
//!
//! The design follows the paper's §3.1/§6.1 observations:
//!
//! * graphs are stored in **Compressed Sparse Row** form so that edge
//!   traversal is a single contiguous stream ([`Csr`]);
//! * BFS and triangle counting use **bit-vectors** for constant-time
//!   membership with minimal cache footprint ([`BitVec`], [`AtomicBitVec`]);
//! * frontiers switch between sparse and dense representations
//!   ([`Frontier`]);
//! * collaborative filtering uses a **bipartite ratings graph**
//!   ([`RatingsGraph`]);
//! * intra-node parallelism uses scoped threads over contiguous chunks
//!   ([`par`]), mirroring the paper's OpenMP usage.
//!
//! Vertex ids are `u32` ([`VertexId`]): the paper's largest graphs have
//! ~537 M vertices, within `u32` range; edge counts use `u64`.

pub mod bipartite;
pub mod bitvec;
pub mod cc;
pub mod csr;
pub mod degree;
pub mod edgelist;
pub mod fixtures;
pub mod frontier;
pub mod io;
pub mod msbfs;
pub mod par;
pub mod transform;

pub use bipartite::RatingsGraph;
pub use bitvec::{AtomicBitVec, BitVec};
pub use cc::{connected_components, ComponentStats, UnionFind};
pub use csr::{Csr, DirectedGraph, UndirectedGraph};
pub use degree::DegreeStats;
pub use edgelist::{EdgeList, WeightedEdgeList};
pub use frontier::Frontier;

/// Vertex identifier. `u32` keeps adjacency arrays half the size of `usize`
/// arrays, doubling effective memory bandwidth on edge streams (§6.1.1).
pub type VertexId = u32;

/// Edge weight / rating type used by collaborative filtering.
pub type Weight = f32;

/// Errors produced by graph construction and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint was >= the declared vertex count.
    VertexOutOfRange { vertex: u64, num_vertices: u64 },
    /// Input could not be parsed.
    Parse { line: usize, msg: String },
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range (num_vertices={num_vertices})"
                )
            }
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
