//! Edge-list representations and normalization passes.
//!
//! Generators (RMAT in particular) emit raw edge tuples "with possible
//! duplicates" (paper §4.1.2). The passes here — dedup, self-loop removal,
//! symmetrization, acyclic orientation — are exactly the post-processing
//! the paper applies before handing graphs to the frameworks.

use crate::{GraphError, VertexId, Weight};

/// An unweighted directed edge list over `num_vertices` vertices.
///
/// The interpretation of each `(src, dst)` pair (directed vs undirected)
/// is decided by the conversion used ([`crate::Csr::from_edges`] /
/// [`EdgeList::symmetrize`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: u64,
    edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: u64) -> Self {
        assert!(
            num_vertices <= u64::from(u32::MAX) + 1,
            "vertex ids must fit u32"
        );
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list from parts, validating endpoint ranges.
    pub fn from_edges(
        num_vertices: u64,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Result<Self, GraphError> {
        for &(s, d) in &edges {
            if u64::from(s) >= num_vertices || u64::from(d) >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u64::from(s.max(d)),
                    num_vertices,
                });
            }
        }
        Ok(EdgeList {
            num_vertices,
            edges,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of edge tuples currently stored (duplicates included).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Appends an edge. Panics if an endpoint is out of range.
    #[inline]
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!(
            u64::from(src) < self.num_vertices && u64::from(dst) < self.num_vertices,
            "edge ({src},{dst}) out of range {}",
            self.num_vertices
        );
        self.edges.push((src, dst));
    }

    /// Reserves space for `n` additional edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// The raw edge tuples.
    #[inline]
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Sorts edges and removes exact duplicates.
    pub fn dedup(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Removes self-loops `(v, v)`.
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|&(s, d)| s != d);
    }

    /// Adds the reverse of every edge, then dedups — producing the
    /// "2 edges in both directions" form the paper uses for BFS (§4.1.2).
    pub fn symmetrize(&mut self) {
        let rev: Vec<(VertexId, VertexId)> = self.edges.iter().map(|&(s, d)| (d, s)).collect();
        self.edges.extend(rev);
        self.dedup();
    }

    /// Orients every edge from the smaller to the larger endpoint id and
    /// dedups, yielding an acyclic (DAG) orientation. The paper uses this
    /// for triangle counting "to avoid cycles" (§4.1.2). Self-loops are
    /// dropped.
    pub fn orient_by_id(&mut self) {
        self.edges.retain(|&(s, d)| s != d);
        for e in &mut self.edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.dedup();
    }

    /// Consumes the list, returning the edge vector.
    pub fn into_edges(self) -> Vec<(VertexId, VertexId)> {
        self.edges
    }
}

/// A weighted edge list; used to carry ratings for collaborative filtering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WeightedEdgeList {
    num_vertices: u64,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl WeightedEdgeList {
    /// Creates an empty weighted edge list over `num_vertices` vertices.
    pub fn new(num_vertices: u64) -> Self {
        assert!(
            num_vertices <= u64::from(u32::MAX) + 1,
            "vertex ids must fit u32"
        );
        WeightedEdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Appends a weighted edge.
    #[inline]
    pub fn push(&mut self, src: VertexId, dst: VertexId, w: Weight) {
        debug_assert!(
            u64::from(src) < self.num_vertices && u64::from(dst) < self.num_vertices,
            "edge ({src},{dst}) out of range {}",
            self.num_vertices
        );
        self.edges.push((src, dst, w));
    }

    /// The raw weighted edge tuples.
    #[inline]
    pub fn edges(&self) -> &[(VertexId, VertexId, Weight)] {
        &self.edges
    }

    /// Sorts by endpoints and keeps the **first** weight seen for each
    /// duplicated endpoint pair.
    pub fn dedup_keep_first(&mut self) {
        self.edges.sort_by_key(|a| (a.0, a.1));
        self.edges
            .dedup_by(|next, prev| (next.0, next.1) == (prev.0, prev.1));
    }

    /// Consumes the list, returning the edge vector.
    pub fn into_edges(self) -> Vec<(VertexId, VertexId, Weight)> {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el(edges: &[(u32, u32)]) -> EdgeList {
        EdgeList::from_edges(10, edges.to_vec()).unwrap()
    }

    #[test]
    fn from_edges_validates_range() {
        assert!(EdgeList::from_edges(3, vec![(0, 2)]).is_ok());
        let err = EdgeList::from_edges(3, vec![(0, 3)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            }
        ));
    }

    #[test]
    fn dedup_removes_duplicates_and_sorts() {
        let mut e = el(&[(2, 1), (0, 1), (2, 1), (0, 1)]);
        e.dedup();
        assert_eq!(e.edges(), &[(0, 1), (2, 1)]);
    }

    #[test]
    fn remove_self_loops_only_drops_loops() {
        let mut e = el(&[(1, 1), (1, 2), (3, 3)]);
        e.remove_self_loops();
        assert_eq!(e.edges(), &[(1, 2)]);
    }

    #[test]
    fn symmetrize_adds_reverses_once() {
        let mut e = el(&[(0, 1), (1, 0), (2, 3)]);
        e.symmetrize();
        assert_eq!(e.edges(), &[(0, 1), (1, 0), (2, 3), (3, 2)]);
    }

    #[test]
    fn orient_by_id_yields_dag_edges() {
        let mut e = el(&[(3, 1), (1, 3), (2, 2), (0, 4)]);
        e.orient_by_id();
        assert_eq!(e.edges(), &[(0, 4), (1, 3)]);
        assert!(e.edges().iter().all(|&(s, d)| s < d));
    }

    #[test]
    fn weighted_dedup_keeps_first_weight() {
        let mut w = WeightedEdgeList::new(5);
        w.push(1, 2, 5.0);
        w.push(0, 1, 3.0);
        w.push(1, 2, 9.0);
        w.dedup_keep_first();
        assert_eq!(w.num_edges(), 2);
        // sorted order: (0,1) then (1,2); (1,2) keeps whichever sorted first,
        // which after a stable sort by endpoints is the first inserted (5.0).
        assert_eq!(w.edges()[1], (1, 2, 5.0));
    }

    #[test]
    fn push_and_counts() {
        let mut e = EdgeList::new(4);
        assert_eq!(e.num_edges(), 0);
        e.push(0, 1);
        e.push(1, 2);
        assert_eq!(e.num_edges(), 2);
        assert_eq!(e.num_vertices(), 4);
    }
}
