//! Connected components via union-find.
//!
//! Used by the dataset analysis tooling (real-world stand-ins should be
//! dominated by one giant component, as social graphs are) and by
//! examples that need reachability structure.

use crate::VertexId;

/// Weighted quick-union with path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `v`'s component.
    pub fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            // path halving
            self.parent[v as usize] = self.parent[self.parent[v as usize] as usize];
            v = self.parent[v as usize];
        }
        v
    }

    /// Merges the components of `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are connected.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of `v`'s component.
    pub fn component_size(&mut self, v: u32) -> u32 {
        let r = self.find(v);
        self.size[r as usize]
    }
}

/// Summary of a graph's (weak) connectivity structure.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentStats {
    /// Number of connected components (isolated vertices count).
    pub num_components: usize,
    /// Vertices in the largest component.
    pub largest: usize,
    /// Largest component as a fraction of all vertices.
    pub largest_fraction: f64,
}

/// Computes weakly-connected components over an edge set (direction
/// ignored).
pub fn connected_components(
    num_vertices: usize,
    edges: &[(VertexId, VertexId)],
) -> (UnionFind, ComponentStats) {
    let mut uf = UnionFind::new(num_vertices);
    for &(s, d) in edges {
        uf.union(s, d);
    }
    let mut largest = 0usize;
    for v in 0..num_vertices as u32 {
        largest = largest.max(uf.component_size(v) as usize);
    }
    let stats = ComponentStats {
        num_components: uf.num_components(),
        largest,
        largest_fraction: if num_vertices == 0 {
            0.0
        } else {
            largest as f64 / num_vertices as f64
        },
    };
    (uf, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_size(3), 4);
    }

    #[test]
    fn component_stats_on_two_islands() {
        let edges = vec![(0u32, 1u32), (1, 2), (3, 4)];
        let (_, stats) = connected_components(6, &edges);
        assert_eq!(stats.num_components, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(stats.largest, 3);
        assert!((stats.largest_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let (_, stats) = connected_components(0, &[]);
        assert_eq!(stats.num_components, 0);
        assert_eq!(stats.largest_fraction, 0.0);
    }

    #[test]
    fn fully_connected_chain() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let (mut uf, stats) = connected_components(100, &edges);
        assert_eq!(stats.num_components, 1);
        assert_eq!(stats.largest, 100);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn cc_agrees_with_bfs_reachability() {
        // deterministic pseudo-random edges
        let mut edges = Vec::new();
        let mut x = 12345u64;
        for _ in 0..60 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((x >> 33) % 40) as u32;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let d = ((x >> 33) % 40) as u32;
            edges.push((s, d));
        }
        let (mut uf, _) = connected_components(40, &edges);
        let g = crate::csr::UndirectedGraph::from_edges(40, &edges);
        // BFS from 0: exactly the vertices connected to 0
        let mut dist = [u32::MAX; 40];
        dist[0] = 0;
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(u) = queue.pop_front() {
            for &v in g.adj.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        for v in 0..40u32 {
            assert_eq!(
                dist[v as usize] != u32::MAX,
                uf.connected(0, v),
                "vertex {v}"
            );
        }
    }
}
