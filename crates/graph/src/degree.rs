//! Degree statistics and distribution analysis.
//!
//! Used to validate that generated graphs follow the skewed power-law
//! (Zipf) shape the paper requires of its synthetic data (§4.1), and to
//! drive degree-aware partitioning / high-degree replication.

use crate::csr::Csr;
use crate::VertexId;

/// Summary statistics of a degree sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of (directed) edges.
    pub num_edges: u64,
    /// Minimum degree.
    pub min: u32,
    /// Maximum degree.
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// Fraction of vertices with degree 0.
    pub isolated_fraction: f64,
    /// Gini coefficient of the degree sequence — 0 for uniform degrees,
    /// → 1 for extreme skew. Real-world power-law graphs land ≳ 0.5.
    pub gini: f64,
}

impl DegreeStats {
    /// Computes statistics over the out-degrees of `g`.
    pub fn of(g: &Csr) -> Self {
        let n = g.num_vertices();
        let mut degrees: Vec<u32> = (0..n).map(|v| g.degree(v as VertexId)).collect();
        Self::of_degrees(&mut degrees, g.num_edges())
    }

    /// Computes statistics from a raw degree sequence (sorted in place).
    pub fn of_degrees(degrees: &mut [u32], num_edges: u64) -> Self {
        let n = degrees.len();
        if n == 0 {
            return DegreeStats {
                num_vertices: 0,
                num_edges: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                isolated_fraction: 0.0,
                gini: 0.0,
            };
        }
        degrees.sort_unstable();
        let min = degrees[0];
        let max = degrees[n - 1];
        let total: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
        let mean = total as f64 / n as f64;
        let isolated = degrees.iter().take_while(|&&d| d == 0).count();
        // Gini over the sorted sequence: G = (2*sum(i*x_i)/(n*sum(x)) - (n+1)/n)
        let gini = if total == 0 {
            0.0
        } else {
            let weighted: f64 = degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * f64::from(d))
                .sum();
            (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
        };
        DegreeStats {
            num_vertices: n,
            num_edges,
            min,
            max,
            mean,
            isolated_fraction: isolated as f64 / n as f64,
            gini,
        }
    }
}

/// Log2-bucketed degree histogram: `buckets[k]` counts vertices with
/// degree in `[2^k, 2^(k+1))`; degree-0 vertices are counted separately.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Count of degree-0 vertices.
    pub zero: u64,
    /// `buckets[k]` = number of vertices with `floor(log2(degree)) == k`.
    pub buckets: Vec<u64>,
}

impl DegreeHistogram {
    /// Histogram of out-degrees of `g`.
    pub fn of(g: &Csr) -> Self {
        let mut h = DegreeHistogram::default();
        for v in 0..g.num_vertices() {
            let d = g.degree(v as VertexId);
            if d == 0 {
                h.zero += 1;
            } else {
                let k = (31 - d.leading_zeros()) as usize;
                if h.buckets.len() <= k {
                    h.buckets.resize(k + 1, 0);
                }
                h.buckets[k] += 1;
            }
        }
        h
    }

    /// Least-squares slope of `log2(count)` vs bucket index over non-empty
    /// buckets. Power-law graphs give a clearly negative slope; uniform
    /// (Erdős–Rényi) graphs concentrate around the mean instead.
    pub fn log_log_slope(&self) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (k as f64, (c as f64).log2()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            None
        } else {
            Some((n * sxy - sx * sy) / denom)
        }
    }
}

/// Returns vertex ids sorted by descending degree — the "hubs first" order
/// used for high-degree replication partitioning.
pub fn vertices_by_degree_desc(g: &Csr) -> Vec<VertexId> {
    let mut ids: Vec<VertexId> = (0..g.num_vertices() as u32).collect();
    ids.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: u32) -> Csr {
        // vertex 0 points to everyone else
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        Csr::from_edges(u64::from(n), &edges)
    }

    #[test]
    fn stats_of_star_graph() {
        let g = star(11);
        let s = DegreeStats::of(&g);
        assert_eq!(s.num_vertices, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 10);
        assert!((s.mean - 10.0 / 11.0).abs() < 1e-12);
        assert!((s.isolated_fraction - 10.0 / 11.0).abs() < 1e-12);
        // One vertex owns all degree: near-maximal skew.
        assert!(s.gini > 0.9, "gini {} should be near 1", s.gini);
    }

    #[test]
    fn gini_zero_for_uniform_degrees() {
        let mut degs = vec![4u32; 100];
        let s = DegreeStats::of_degrees(&mut degs, 400);
        assert!(s.gini.abs() < 1e-9);
    }

    #[test]
    fn empty_degree_stats() {
        let s = DegreeStats::of_degrees(&mut [], 0);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        // degrees: 0, 1, 2, 3, 8
        let edges = vec![
            (1, 0),
            (2, 0),
            (2, 1),
            (3, 0),
            (3, 1),
            (3, 2),
            (4, 0),
            (4, 1),
            (4, 2),
            (4, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (4, 8),
        ];
        let g = Csr::from_edges(9, &edges);
        let h = DegreeHistogram::of(&g);
        assert_eq!(h.zero, 5); // vertices 0,5,6,7,8
        assert_eq!(h.buckets[0], 1); // degree 1
        assert_eq!(h.buckets[1], 2); // degrees 2,3
        assert_eq!(h.buckets[3], 1); // degree 8
    }

    #[test]
    fn slope_negative_for_skewed() {
        // counts 8,4,2,1 across buckets → slope -1 in log2 space
        let h = DegreeHistogram {
            zero: 0,
            buckets: vec![8, 4, 2, 1],
        };
        let s = h.log_log_slope().expect("slope");
        assert!((s + 1.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn slope_none_when_degenerate() {
        let h = DegreeHistogram {
            zero: 0,
            buckets: vec![5],
        };
        assert!(h.log_log_slope().is_none());
    }

    #[test]
    fn hubs_first_ordering() {
        let g = star(5);
        let order = vertices_by_degree_desc(&g);
        assert_eq!(order[0], 0);
    }
}
