//! Shared test fixtures: the paper's worked example graphs.
//!
//! Figure 2 of the paper walks every framework through the same 4-vertex
//! example; its edge list used to be copy-pasted into each crate's test
//! module. Constructing it here keeps every test suite (CSR layout,
//! SpMV, Datalog, native PageRank) pinned to the *same* graph.

use crate::csr::{Csr, DirectedGraph};
use crate::VertexId;

/// Vertex count of Figure 2's example graph.
pub const FIG2_VERTICES: u64 = 4;

/// Figure 2's edges: 0→1, 0→2, 1→2, 1→3, 2→3.
pub fn fig2_edges() -> Vec<(VertexId, VertexId)> {
    vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]
}

/// Figure 2 as a CSR with sorted adjacency lists.
pub fn fig2_csr() -> Csr {
    let mut c = Csr::from_edges(FIG2_VERTICES, &fig2_edges());
    c.sort_neighbors();
    c
}

/// Figure 2 as a directed graph (out- and in-CSR).
pub fn fig2_directed() -> DirectedGraph {
    DirectedGraph::from_edges(FIG2_VERTICES, &fig2_edges())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape() {
        let g = fig2_csr();
        assert_eq!(g.num_vertices() as u64, FIG2_VERTICES);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(1), &[2, 3]);
        let d = fig2_directed();
        assert_eq!(d.inn.neighbors(3), &[1, 2]);
    }
}
