//! Minimal scoped-thread parallelism helpers.
//!
//! The paper's native code uses OpenMP within a node (§4.3). We mirror that
//! with crossbeam scoped threads over contiguous index chunks: static
//! scheduling for regular loops ([`par_for_chunks`]), and a chunk-grained
//! dynamic scheduler for skewed work ([`par_for_dynamic`]) since power-law
//! degree distributions make static splits imbalanced.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the default worker count: `GRAPHMAZE_THREADS` env override, else
/// the machine's available parallelism, else 1.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("GRAPHMAZE_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..len` into `threads` nearly equal chunks and runs `f(chunk_idx,
/// range)` on scoped threads. `f` runs on the caller thread when
/// `threads <= 1` or `len == 0`.
pub fn par_for_chunks<F>(len: usize, threads: usize, f: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = threads.max(1).min(len);
    if threads == 1 {
        f(0, 0..len);
        return;
    }
    let chunk = len.div_ceil(threads);
    crossbeam::scope(|s| {
        for t in 0..threads {
            let f = &f;
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(len);
            if lo < hi {
                s.spawn(move |_| f(t, lo..hi));
            }
        }
    })
    .expect("worker thread panicked");
}

/// Dynamic (work-stealing-ish) parallel for: workers repeatedly claim
/// `grain`-sized chunks of `0..len` from a shared atomic cursor and call
/// `f(range)`. Suits power-law skewed per-index work.
pub fn par_for_dynamic<F>(len: usize, threads: usize, grain: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = threads.max(1);
    let grain = grain.max(1);
    if threads == 1 {
        f(0..len);
        return;
    }
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let cursor = &cursor;
            s.spawn(move |_| loop {
                let lo = cursor.fetch_add(grain, Ordering::Relaxed);
                if lo >= len {
                    break;
                }
                f(lo..(lo + grain).min(len));
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map-reduce over `0..len`: each worker folds its chunk with
/// `fold(acc, idx)` starting from `init()`, partials are combined with
/// `combine`.
pub fn par_reduce<T, I, FF, C>(len: usize, threads: usize, init: I, fold: FF, combine: C) -> T
where
    T: Send,
    I: Fn() -> T + Sync,
    FF: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if len == 0 {
        return init();
    }
    let threads = threads.max(1).min(len);
    if threads == 1 {
        return (0..len).fold(init(), &fold);
    }
    let chunk = len.div_ceil(threads);
    let partials: Vec<T> = crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let init = &init;
            let fold = &fold;
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(len);
            if lo < hi {
                handles.push(s.spawn(move |_| (lo..hi).fold(init(), fold)));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("worker thread panicked");
    let mut iter = partials.into_iter();
    let first = iter.next().expect("at least one partial");
    iter.fold(first, combine)
}

/// Runs `f(t)` for `t in 0..threads` on scoped threads and returns the
/// results in order. The basic "one task per simulated node" primitive.
pub fn par_tasks<T, F>(threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 {
        return (0..threads).map(&f).collect();
    }
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                s.spawn(move |_| f(t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("worker thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_for_chunks_covers_all_indices_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        par_for_chunks(1000, 7, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_dynamic_covers_all_indices_once() {
        let hits: Vec<AtomicU64> = (0..997).map(|_| AtomicU64::new(0)).collect();
        par_for_dynamic(997, 5, 16, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_reduce_sums() {
        let total = par_reduce(1001, 4, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, 1000 * 1001 / 2);
    }

    #[test]
    fn par_reduce_single_thread_matches() {
        let a = par_reduce(100, 1, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        let b = par_reduce(100, 8, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(a, b);
    }

    #[test]
    fn par_tasks_returns_in_order() {
        let out = par_tasks(6, |t| t * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn zero_len_is_noop() {
        par_for_chunks(0, 4, |_, _| panic!("must not run"));
        par_for_dynamic(0, 4, 8, |_| panic!("must not run"));
        assert_eq!(par_reduce(0, 4, || 7u32, |a, _| a, |a, _| a), 7);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
