//! Compressed Sparse Row graph storage.
//!
//! CSR "allows for the edges to be stored as a single, contiguous array"
//! so that edge streams hit hardware prefetchers (paper §3.1). PageRank
//! stores **incoming** edges in CSR (each vertex pulls the ranks of its
//! in-neighbors); BFS and triangle counting use outgoing adjacency.

use crate::{EdgeList, VertexId, Weight, WeightedEdgeList};

/// A CSR adjacency structure: `targets[offsets[v]..offsets[v+1]]` are the
/// neighbors of vertex `v`.
///
/// ```
/// use graphmaze_graph::csr::Csr;
/// // the paper's Figure 2 graph
/// let g = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
/// assert_eq!(g.neighbors(1), &[2, 3]);
/// assert_eq!(g.transpose().neighbors(3), &[1, 2]); // in-edges of 3
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from directed edge tuples using a two-pass counting
    /// sort: one pass to histogram out-degrees, one to scatter targets.
    pub fn from_edges(num_vertices: u64, edges: &[(VertexId, VertexId)]) -> Self {
        let n = usize::try_from(num_vertices).expect("vertex count fits usize");
        let mut offsets = vec![0u64; n + 1];
        for &(s, _) in edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; edges.len()];
        for &(s, d) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = d;
            *c += 1;
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR from an [`EdgeList`] (interpreting tuples as directed).
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Csr::from_edges(el.num_vertices(), el.edges())
    }

    /// Rebuilds a CSR from raw parts (deserialization). Panics (debug) on
    /// violated invariants; use `graphmaze_graph::io::read_binary_csr`
    /// for validated input.
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().expect("non-empty") as usize, targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The offsets array (length `num_vertices + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The flat targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Returns the transposed graph (in-edges become out-edges).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut offsets = vec![0u64; n + 1];
        for &d in &self.targets {
            offsets[d as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; self.targets.len()];
        for v in 0..n {
            for &d in self.neighbors(v as VertexId) {
                let c = &mut cursor[d as usize];
                targets[*c as usize] = v as VertexId;
                *c += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// Sorts every adjacency list ascending. Sorted adjacency enables the
    /// linear-time set intersections Galois and native triangle counting
    /// rely on (paper §3.2).
    pub fn sort_neighbors(&mut self) {
        for v in 0..self.num_vertices() {
            let (a, b) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
            self.targets[a..b].sort_unstable();
        }
    }

    /// True if every adjacency list is sorted ascending.
    pub fn neighbors_sorted(&self) -> bool {
        (0..self.num_vertices()).all(|v| {
            self.neighbors(v as VertexId)
                .windows(2)
                .all(|w| w[0] <= w[1])
        })
    }

    /// Binary-searches `v`'s (sorted) adjacency list for `target`.
    #[inline]
    pub fn has_edge_sorted(&self, v: VertexId, target: VertexId) -> bool {
        self.neighbors(v).binary_search(&target).is_ok()
    }

    /// Bytes of backing storage (offsets + targets).
    pub fn byte_size(&self) -> u64 {
        (self.offsets.len() * 8 + self.targets.len() * 4) as u64
    }

    /// Total degree histogram convenience: max out-degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }
}

/// A CSR with a parallel weight per target (for ratings graphs).
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedCsr {
    csr: Csr,
    weights: Vec<Weight>,
}

impl WeightedCsr {
    /// Builds a weighted CSR from weighted directed edges.
    pub fn from_edges(num_vertices: u64, edges: &[(VertexId, VertexId, Weight)]) -> Self {
        let n = usize::try_from(num_vertices).expect("vertex count fits usize");
        let mut offsets = vec![0u64; n + 1];
        for &(s, _, _) in edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut weights = vec![0.0 as Weight; edges.len()];
        for &(s, d, w) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = d;
            weights[*c as usize] = w;
            *c += 1;
        }
        WeightedCsr {
            csr: Csr { offsets, targets },
            weights,
        }
    }

    /// Builds from a [`WeightedEdgeList`].
    pub fn from_edge_list(el: &WeightedEdgeList) -> Self {
        WeightedCsr::from_edges(el.num_vertices(), el.edges())
    }

    /// The unweighted structure.
    #[inline]
    pub fn structure(&self) -> &Csr {
        &self.csr
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.csr.num_edges()
    }

    /// Neighbor ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }

    /// Weights parallel to [`WeightedCsr::neighbors`].
    #[inline]
    pub fn weights_of(&self, v: VertexId) -> &[Weight] {
        &self.weights
            [self.csr.offsets[v as usize] as usize..self.csr.offsets[v as usize + 1] as usize]
    }

    /// `(neighbor, weight)` pairs of `v`.
    pub fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights_of(v).iter().copied())
    }

    /// Bytes of backing storage.
    pub fn byte_size(&self) -> u64 {
        self.csr.byte_size() + (self.weights.len() * std::mem::size_of::<Weight>()) as u64
    }

    /// Returns the transpose with weights carried along.
    pub fn transpose(&self) -> WeightedCsr {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.weights.len());
        for v in 0..n {
            for (d, w) in self.edges_of(v as VertexId) {
                edges.push((d, v as VertexId, w));
            }
        }
        WeightedCsr::from_edges(n as u64, &edges)
    }
}

/// A directed graph holding both orientations: `out` (forward) and `inn`
/// (transpose). PageRank streams `inn`; traversals stream `out`.
#[derive(Clone, Debug)]
pub struct DirectedGraph {
    /// Forward adjacency (out-edges).
    pub out: Csr,
    /// Reverse adjacency (in-edges).
    pub inn: Csr,
}

impl DirectedGraph {
    /// Builds both orientations from directed edge tuples.
    pub fn from_edges(num_vertices: u64, edges: &[(VertexId, VertexId)]) -> Self {
        let out = Csr::from_edges(num_vertices, edges);
        let inn = out.transpose();
        DirectedGraph { out, inn }
    }

    /// Builds from an [`EdgeList`].
    pub fn from_edge_list(el: &EdgeList) -> Self {
        DirectedGraph::from_edges(el.num_vertices(), el.edges())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.out.num_edges()
    }

    /// Bytes of backing storage (both orientations).
    pub fn byte_size(&self) -> u64 {
        self.out.byte_size() + self.inn.byte_size()
    }
}

/// An undirected graph stored as a symmetric CSR (each undirected edge
/// appears in both adjacency lists).
#[derive(Clone, Debug)]
pub struct UndirectedGraph {
    /// Symmetric adjacency.
    pub adj: Csr,
}

impl UndirectedGraph {
    /// Builds from undirected edge tuples: each `(u, v)` contributes both
    /// `u → v` and `v → u` (self-loops contribute once).
    pub fn from_edges(num_vertices: u64, edges: &[(VertexId, VertexId)]) -> Self {
        let mut sym = Vec::with_capacity(edges.len() * 2);
        for &(s, d) in edges {
            sym.push((s, d));
            if s != d {
                sym.push((d, s));
            }
        }
        UndirectedGraph {
            adj: Csr::from_edges(num_vertices, &sym),
        }
    }

    /// Builds from an already-symmetrized [`EdgeList`] without duplicating.
    pub fn from_symmetric_edge_list(el: &EdgeList) -> Self {
        UndirectedGraph {
            adj: Csr::from_edge_list(el),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.num_vertices()
    }

    /// Number of undirected edges (half the stored directed count, plus
    /// self-loops counted once).
    #[inline]
    pub fn num_directed_edges(&self) -> u64 {
        self.adj.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fixtures::fig2_edges as fig2;

    #[test]
    fn csr_matches_fig2_adjacency() {
        let g = Csr::from_edges(4, &fig2());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2, 3]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn transpose_matches_fig2_in_edges() {
        let g = Csr::from_edges(4, &fig2());
        let t = g.transpose();
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(3), &[1, 2]);
        // double transpose is identity
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn csr_preserves_insertion_order_within_vertex() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1)]);
        assert_eq!(g.neighbors(0), &[2, 1]);
        let mut g = g;
        g.sort_neighbors();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.neighbors_sorted());
        assert!(g.has_edge_sorted(0, 2));
        assert!(!g.has_edge_sorted(0, 0));
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn vertices_with_no_edges() {
        let g = Csr::from_edges(5, &[(2, 3)]);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn weighted_csr_carries_weights() {
        let w = WeightedCsr::from_edges(3, &[(0, 1, 5.0), (0, 2, 2.5), (2, 0, 1.0)]);
        assert_eq!(w.neighbors(0), &[1, 2]);
        assert_eq!(w.weights_of(0), &[5.0, 2.5]);
        let pairs: Vec<_> = w.edges_of(0).collect();
        assert_eq!(pairs, vec![(1, 5.0), (2, 2.5)]);
        assert_eq!(w.num_edges(), 3);
    }

    #[test]
    fn weighted_transpose_preserves_weights() {
        let w = WeightedCsr::from_edges(3, &[(0, 1, 5.0), (2, 1, 7.0)]);
        let t = w.transpose();
        let mut pairs: Vec<_> = t.edges_of(1).collect();
        pairs.sort_by_key(|p| p.0);
        assert_eq!(pairs, vec![(0, 5.0), (2, 7.0)]);
    }

    #[test]
    fn directed_graph_both_orientations() {
        let g = DirectedGraph::from_edges(4, &fig2());
        assert_eq!(g.out.neighbors(0), &[1, 2]);
        assert_eq!(g.inn.neighbors(3), &[1, 2]);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn undirected_graph_symmetric() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.adj.neighbors(1), &[0, 2]);
        assert_eq!(g.num_directed_edges(), 4);
    }

    #[test]
    fn undirected_self_loop_counted_once() {
        let g = UndirectedGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.adj.neighbors(0), &[0, 1]);
        assert_eq!(g.num_directed_edges(), 3);
    }

    #[test]
    fn byte_size_accounts_offsets_and_targets() {
        let g = Csr::from_edges(4, &fig2());
        assert_eq!(g.byte_size(), 5 * 8 + 5 * 4);
    }
}
