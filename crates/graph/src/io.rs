//! Edge-list IO: whitespace-separated text and a compact binary format.
//!
//! Text format: one `src dst [weight]` per line; lines starting with `#`
//! or `%` are comments (SNAP / Matrix-Market-adjacent conventions).
//! Binary format: `GMZE` magic, version, counts, then little-endian
//! `u32` pairs (and `f32` weights for the weighted variant).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{EdgeList, GraphError, WeightedEdgeList};

const MAGIC: &[u8; 4] = b"GMZE";
const VERSION_UNWEIGHTED: u8 = 1;
const VERSION_WEIGHTED: u8 = 2;

/// Reads a text edge list. `num_vertices` is inferred as `max id + 1`
/// unless a larger `min_vertices` is given.
pub fn read_text_edge_list<R: Read>(reader: R, min_vertices: u64) -> Result<EdgeList, GraphError> {
    let mut edges = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                msg: "missing field".into(),
            })?
            .parse::<u32>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                msg: e.to_string(),
            })
        };
        let s = parse(it.next(), lineno)?;
        let d = parse(it.next(), lineno)?;
        max_id = max_id.max(u64::from(s)).max(u64::from(d));
        edges.push((s, d));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        (max_id + 1).max(min_vertices)
    };
    EdgeList::from_edges(n, edges)
}

/// Writes a text edge list (`src dst` per line).
pub fn write_text_edge_list<W: Write>(w: W, el: &EdgeList) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "# graphmaze edge list: {} vertices {} edges",
        el.num_vertices(),
        el.num_edges()
    )?;
    for &(s, d) in el.edges() {
        writeln!(w, "{s} {d}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the compact binary format.
pub fn write_binary_edge_list<W: Write>(w: W, el: &EdgeList) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION_UNWEIGHTED])?;
    w.write_all(&el.num_vertices().to_le_bytes())?;
    w.write_all(&el.num_edges().to_le_bytes())?;
    for &(s, d) in el.edges() {
        w.write_all(&s.to_le_bytes())?;
        w.write_all(&d.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the compact binary format.
pub fn read_binary_edge_list<R: Read>(r: R) -> Result<EdgeList, GraphError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            msg: "bad magic".into(),
        });
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION_UNWEIGHTED {
        return Err(GraphError::Parse {
            line: 0,
            msg: format!("bad version {}", ver[0]),
        });
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8);
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8);
    let mut edges = Vec::with_capacity(m as usize);
    let mut b4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut b4)?;
        let s = u32::from_le_bytes(b4);
        r.read_exact(&mut b4)?;
        let d = u32::from_le_bytes(b4);
        edges.push((s, d));
    }
    EdgeList::from_edges(n, edges)
}

/// Writes a weighted binary edge list.
pub fn write_binary_weighted<W: Write>(w: W, el: &WeightedEdgeList) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION_WEIGHTED])?;
    w.write_all(&el.num_vertices().to_le_bytes())?;
    w.write_all(&el.num_edges().to_le_bytes())?;
    for &(s, d, wt) in el.edges() {
        w.write_all(&s.to_le_bytes())?;
        w.write_all(&d.to_le_bytes())?;
        w.write_all(&wt.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a weighted binary edge list.
pub fn read_binary_weighted<R: Read>(r: R) -> Result<WeightedEdgeList, GraphError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            msg: "bad magic".into(),
        });
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION_WEIGHTED {
        return Err(GraphError::Parse {
            line: 0,
            msg: format!("bad version {}", ver[0]),
        });
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8);
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8);
    let mut el = WeightedEdgeList::new(n);
    let mut b4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut b4)?;
        let s = u32::from_le_bytes(b4);
        r.read_exact(&mut b4)?;
        let d = u32::from_le_bytes(b4);
        r.read_exact(&mut b4)?;
        let wt = f32::from_le_bytes(b4);
        el.push(s, d, wt);
    }
    Ok(el)
}

const CSR_VERSION: u8 = 3;

/// Serializes a prebuilt CSR (offsets + targets) — loading this is a
/// straight buffer read, skipping the counting-sort rebuild entirely.
/// This is the on-disk cache format for large generated graphs.
pub fn write_binary_csr<W: Write>(w: W, csr: &crate::csr::Csr) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&[CSR_VERSION])?;
    w.write_all(&(csr.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&csr.num_edges().to_le_bytes())?;
    for &o in csr.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in csr.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Deserializes a CSR written by [`write_binary_csr`], validating the
/// offsets invariant (monotone, final offset = edge count).
pub fn read_binary_csr<R: Read>(r: R) -> Result<crate::csr::Csr, GraphError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            msg: "bad magic".into(),
        });
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != CSR_VERSION {
        return Err(GraphError::Parse {
            line: 0,
            msg: format!("bad version {}", ver[0]),
        });
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8);
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut b8)?;
        offsets.push(u64::from_le_bytes(b8));
    }
    if offsets.first() != Some(&0)
        || offsets.last() != Some(&m)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(GraphError::Parse {
            line: 0,
            msg: "corrupt CSR offsets".into(),
        });
    }
    let mut targets = Vec::with_capacity(m as usize);
    let mut b4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut b4)?;
        let t = u32::from_le_bytes(b4);
        if u64::from(t) >= n as u64 {
            return Err(GraphError::VertexOutOfRange {
                vertex: u64::from(t),
                num_vertices: n as u64,
            });
        }
        targets.push(t);
    }
    Ok(crate::csr::Csr::from_parts(offsets, targets))
}

/// Convenience: round-trips through a file path (binary format).
pub fn save_binary(path: &Path, el: &EdgeList) -> Result<(), GraphError> {
    write_binary_edge_list(std::fs::File::create(path)?, el)
}

/// Convenience: loads from a file path (binary format).
pub fn load_binary(path: &Path) -> Result<EdgeList, GraphError> {
    read_binary_edge_list(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let el = EdgeList::from_edges(5, vec![(0, 1), (3, 4), (2, 2)]).unwrap();
        let mut buf = Vec::new();
        write_text_edge_list(&mut buf, &el).unwrap();
        let back = read_text_edge_list(&buf[..], 0).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.num_vertices(), 5);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let text = "# comment\n% another\n\n1 2\n3 4 0.5\n";
        let el = read_text_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(el.edges(), &[(1, 2), (3, 4)]);
        assert_eq!(el.num_vertices(), 5);
    }

    #[test]
    fn text_parse_error_reports_line() {
        let text = "1 2\nfoo bar\n";
        let err = read_text_edge_list(text.as_bytes(), 0).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn min_vertices_respected() {
        let el = read_text_edge_list("0 1\n".as_bytes(), 100).unwrap();
        assert_eq!(el.num_vertices(), 100);
        let empty = read_text_edge_list("".as_bytes(), 7).unwrap();
        assert_eq!(empty.num_vertices(), 7);
    }

    #[test]
    fn binary_round_trip() {
        let el = EdgeList::from_edges(10, vec![(0, 9), (5, 5), (9, 0)]).unwrap();
        let mut buf = Vec::new();
        write_binary_edge_list(&mut buf, &el).unwrap();
        let back = read_binary_edge_list(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary_edge_list(&b"NOPE\x01"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn weighted_binary_round_trip() {
        let mut el = WeightedEdgeList::new(4);
        el.push(0, 1, 4.5);
        el.push(2, 3, -1.25);
        let mut buf = Vec::new();
        write_binary_weighted(&mut buf, &el).unwrap();
        let back = read_binary_weighted(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn csr_round_trip() {
        let el = EdgeList::from_edges(6, vec![(0, 5), (2, 1), (2, 3), (5, 0)]).unwrap();
        let csr = crate::csr::Csr::from_edge_list(&el);
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &csr).unwrap();
        let back = read_binary_csr(&buf[..]).unwrap();
        assert_eq!(back, csr);
    }

    #[test]
    fn csr_reader_rejects_corrupt_offsets() {
        let el = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        let csr = crate::csr::Csr::from_edge_list(&el);
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &csr).unwrap();
        // corrupt an offsets byte (non-monotone)
        buf[21 + 8] = 0xff;
        assert!(read_binary_csr(&buf[..]).is_err());
    }

    #[test]
    fn csr_reader_rejects_out_of_range_target() {
        let el = EdgeList::from_edges(3, vec![(0, 1)]).unwrap();
        let csr = crate::csr::Csr::from_edge_list(&el);
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &csr).unwrap();
        let tlen = buf.len();
        buf[tlen - 4..].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_binary_csr(&buf[..]),
            Err(GraphError::VertexOutOfRange { vertex: 99, .. })
        ));
    }

    #[test]
    fn weighted_reader_rejects_unweighted_stream() {
        let el = EdgeList::from_edges(2, vec![(0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_binary_edge_list(&mut buf, &el).unwrap();
        assert!(read_binary_weighted(&buf[..]).is_err());
    }
}
