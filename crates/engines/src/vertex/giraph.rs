//! Giraph 1.1 runtime binding (paper §3, §5.4, §6.1.3).
//!
//! Mechanisms, all named by the paper: Hadoop-hosted BSP with a heavy
//! per-superstep coordination cost; only **4 workers per 24-core node**
//! (memory pressure), capping CPU utilization near 16%; a Netty-class
//! transport under 0.5 GB/s; **whole-superstep message buffering** with
//! JVM object overhead per message — the reason Triangle Counting runs
//! out of memory unless each superstep is split into many
//! mini-supersteps (§6.1.3, "it was only using this optimization that we
//! were able to run Triangle Counting on Giraph").

use graphmaze_cluster::{ExecProfile, SimError};
use graphmaze_graph::csr::{Csr, DirectedGraph, UndirectedGraph};
use graphmaze_graph::{RatingsGraph, VertexId};
use graphmaze_metrics::RunReport;

use super::engine::{run, EngineConfig};
use super::gas::Gas;
use super::programs::{
    msbfs_rows, msbfs_seed_msgs, pack_bipartite, BfsProgram, CfGdProgram, MsBfsProgram,
    PageRankProgram, TriangleProgram, BFS_UNREACHED,
};

/// JVM heap overhead charged per buffered message object (the value
/// `ExecProfile::giraph().router` declares).
pub const MESSAGE_OBJECT_OVERHEAD: u64 = 48;

/// Giraph's engine configuration. `splits` is the superstep-splitting
/// factor (1 = the stock runtime; the paper's fix uses 100). Message-
/// plane knobs (overhead, compression) come from the profile's
/// [`graphmaze_cluster::RouterConfig`].
pub fn config(max_supersteps: u32, splits: u32) -> EngineConfig {
    let profile = ExecProfile::giraph();
    EngineConfig {
        profile,
        use_combiner: false,
        buffer_whole_superstep: true,
        superstep_splits: splits,
        per_message_overhead_bytes: profile.router.per_message_overhead_bytes,
        max_supersteps,
        replicate_hubs_factor: None,
        compress_ids: profile.router.compress_ids, // plain 1-D vertex partitioning
        speculative_reexec: profile.speculative_reexec,
    }
}

/// Giraph with the paper's roadmap applied: 10x network, all 24 workers
/// (enabled by streaming message buffers instead of whole-superstep
/// buffering), id compression, lighter barriers. "Boosting network
/// bandwidth by 10x should make Giraph very competitive with other
/// frameworks."
pub fn config_improved(max_supersteps: u32, splits: u32) -> EngineConfig {
    let profile = ExecProfile::giraph_improved();
    EngineConfig {
        profile,
        buffer_whole_superstep: false,
        compress_ids: profile.router.compress_ids,
        ..config(max_supersteps, splits)
    }
}

/// PageRank under the roadmap configuration ([`config_improved`]).
pub fn pagerank_improved(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let prog = PageRankProgram { r, iterations };
    let init = vec![1.0f64; g.num_vertices()];
    run(
        &g.out,
        None,
        &Gas(prog),
        init,
        vec![],
        true,
        &config_improved(iterations + 2, 1),
        nodes,
        1,
    )
}

/// PageRank on Giraph.
pub fn pagerank(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let prog = PageRankProgram { r, iterations };
    let init = vec![1.0f64; g.num_vertices()];
    run(
        &g.out,
        None,
        &Gas(prog),
        init,
        vec![],
        true,
        &config(iterations + 2, 1),
        nodes,
        1,
    )
}

/// BFS on Giraph.
pub fn bfs(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
) -> Result<(Vec<u32>, RunReport), SimError> {
    let mut init = vec![BFS_UNREACHED; g.num_vertices()];
    init[source as usize] = 0;
    let max = g.num_vertices() as u32 + 2;
    run(
        &g.adj,
        None,
        &Gas(BfsProgram),
        init,
        vec![(source, 0)],
        false,
        &config(max, 1),
        nodes,
        1,
    )
}

/// Bit-parallel multi-source BFS on Giraph: the word-level kernel forced
/// into the per-vertex model, mask vectors shipped as whole-superstep
/// buffered JVM message objects. Returns one distance row per source
/// (identical to `graphmaze_native::msbfs::msbfs`) and the report.
pub fn msbfs(
    g: &UndirectedGraph,
    sources: &[VertexId],
    nodes: usize,
) -> Result<(Vec<Vec<u32>>, RunReport), SimError> {
    let prog = MsBfsProgram {
        num_sources: sources.len(),
    };
    let init = vec![prog.initial_state(); g.num_vertices()];
    let max = g.num_vertices() as u32 + 2;
    let (values, report) = run(
        &g.adj,
        None,
        &Gas(prog),
        init,
        msbfs_seed_msgs(sources),
        false,
        &config(max, 1),
        nodes,
        1,
    )?;
    Ok((msbfs_rows(&values, sources.len()), report))
}

/// Triangle counting on Giraph with superstep splitting. `splits = 1`
/// reproduces the stock runtime, which exhausts memory on large inputs
/// (returns [`SimError::OutOfMemory`]); the paper's fix uses many splits.
pub fn triangles_split(
    oriented: &Csr,
    nodes: usize,
    splits: u32,
) -> Result<(u64, RunReport), SimError> {
    let (values, report) = run(
        oriented,
        None,
        &Gas(TriangleProgram),
        vec![0u64; oriented.num_vertices()],
        vec![],
        true,
        &config(4, splits),
        nodes,
        2,
    )?;
    Ok((values.iter().sum(), report))
}

/// Triangle counting with the paper's splitting fix applied (100 splits).
pub fn triangles(oriented: &Csr, nodes: usize) -> Result<(u64, RunReport), SimError> {
    triangles_split(oriented, nodes, 100)
}

/// Collaborative filtering by alternating GD, with superstep splitting
/// ("message passing happens in phases so that only 1/s vertices have to
/// send messages in a given superstep", §3.2).
pub fn cf_gd(
    g: &RatingsGraph,
    k: usize,
    lambda: f64,
    gamma: f64,
    iterations: u32,
    nodes: usize,
    splits: u32,
) -> Result<(Vec<Vec<f64>>, RunReport), SimError> {
    let (csr, weights) = pack_bipartite(g);
    let prog = CfGdProgram {
        num_users: g.num_users(),
        k,
        lambda,
        gamma,
        iterations,
    };
    let init: Vec<Vec<f64>> = (0..csr.num_vertices())
        .map(|i| {
            (0..k)
                .map(|j| {
                    let x = (i as u64 * 31 + j as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    (x >> 11) as f64 / (1u64 << 53) as f64 * 0.1
                })
                .collect()
        })
        .collect();
    run(
        &csr,
        Some(&weights),
        &Gas(prog),
        init,
        vec![],
        true,
        &config(2 * iterations + 2, splits),
        nodes,
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};
    use graphmaze_native::pagerank::pagerank as native_pagerank;
    use graphmaze_native::triangle::{orient_and_sort, triangles as native_triangles};
    use graphmaze_native::PAGERANK_R;

    fn rmat_el(scale: u32, seed: u64) -> graphmaze_graph::EdgeList {
        rmat::generate(&RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        })
    }

    #[test]
    fn pagerank_matches_native_but_much_slower() {
        let el = rmat_el(9, 31);
        let g = DirectedGraph::from_edge_list(&el);
        let want = native_pagerank(&g, PAGERANK_R, 5, 2);
        let (got, giraph_rep) = pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
        let (_, native_rep) = graphmaze_native::pagerank::pagerank_cluster(
            &g,
            PAGERANK_R,
            5,
            graphmaze_native::NativeOptions::all(),
            4,
        )
        .unwrap();
        // Giraph is 1–3 orders of magnitude off native (Table 5/6).
        let slowdown = giraph_rep.slowdown_vs(&native_rep);
        assert!(slowdown > 10.0, "Giraph slowdown {slowdown}");
    }

    #[test]
    fn giraph_cpu_utilization_capped_by_workers() {
        let el = rmat_el(9, 32);
        let g = DirectedGraph::from_edge_list(&el);
        let (_, rep) = pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        assert!(
            rep.cpu_utilization <= 4.0 / 24.0 + 1e-9,
            "util {}",
            rep.cpu_utilization
        );
    }

    #[test]
    fn triangle_split_matches_native_count() {
        let el = rmat_el(9, 33);
        let oriented = orient_and_sort(&el);
        let want = native_triangles(&oriented, 2);
        let (got, _) = triangles(&oriented, 4).unwrap();
        assert_eq!(got, want);
        let (got_split, rep_split) = triangles_split(&oriented, 4, 8).unwrap();
        assert_eq!(got_split, want);
        let (_, rep_whole) = triangles_split(&oriented, 4, 1).unwrap();
        assert!(
            rep_split.peak_mem_bytes < rep_whole.peak_mem_bytes,
            "{} !< {}",
            rep_split.peak_mem_bytes,
            rep_whole.peak_mem_bytes
        );
    }

    #[test]
    fn bfs_pays_per_superstep_overhead() {
        let mut el = rmat_el(9, 34);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let (dist, rep) = bfs(&g, 0, 4).unwrap();
        let want = graphmaze_native::bfs::bfs(&g, 0, 2);
        assert_eq!(dist, want);
        // each superstep costs ≈1 s of Hadoop coordination
        assert!(
            rep.sim_seconds > 0.8 * f64::from(rep.steps),
            "sim {} steps {}",
            rep.sim_seconds,
            rep.steps
        );
    }
}
