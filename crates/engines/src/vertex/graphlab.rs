//! GraphLab v2.2 runtime binding (paper §3, §5, §6.2).
//!
//! Mechanisms: C++ vertex programs over a 1-D partition with high-degree
//! awareness, **sockets** for communication (the paper's measured
//! 2.5–3× bandwidth deficit vs MPI), message **combiners** ("a limited
//! form of compression that takes advantage of local reductions"), and
//! computation/communication overlap via the async engine. For triangle
//! counting GraphLab "keeps a cuckoo-hash data structure", which shows
//! up as a lower per-probe cost than Giraph's boxed sets.

use graphmaze_cluster::{ExecProfile, SimError};
use graphmaze_graph::csr::{Csr, DirectedGraph, UndirectedGraph};
use graphmaze_graph::{RatingsGraph, VertexId};
use graphmaze_metrics::RunReport;

use super::engine::{run, EngineConfig};
use super::gas::Gas;
use super::programs::{
    msbfs_rows, msbfs_seed_msgs, pack_bipartite, BfsProgram, CfGdProgram, MsBfsProgram,
    PageRankProgram, TriangleProgram, BFS_UNREACHED,
};

/// GraphLab's engine configuration. Message-plane knobs come from the
/// profile's [`graphmaze_cluster::RouterConfig`].
pub fn config(max_supersteps: u32) -> EngineConfig {
    let profile = ExecProfile::graphlab();
    EngineConfig {
        profile,
        use_combiner: true,
        buffer_whole_superstep: false,
        superstep_splits: 1,
        per_message_overhead_bytes: profile.router.per_message_overhead_bytes,
        max_supersteps,
        // replicate vertices with ≥8x the average degree (§6.1.1)
        replicate_hubs_factor: Some(8.0),
        compress_ids: profile.router.compress_ids,
        speculative_reexec: profile.speculative_reexec,
    }
}

/// GraphLab with the paper's roadmap applied (MPI-class transport,
/// software prefetch, id compression). The paper: "incorporating these
/// changes should allow GraphLab to be within 5x of native performance."
pub fn config_improved(max_supersteps: u32) -> EngineConfig {
    let profile = ExecProfile::graphlab_improved();
    EngineConfig {
        profile,
        compress_ids: profile.router.compress_ids,
        ..config(max_supersteps)
    }
}

/// PageRank under the roadmap configuration ([`config_improved`]).
pub fn pagerank_improved(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let prog = PageRankProgram { r, iterations };
    let init = vec![1.0f64; g.num_vertices()];
    run(
        &g.out,
        None,
        &Gas(prog),
        init,
        vec![],
        true,
        &config_improved(iterations + 2),
        nodes,
        1,
    )
}

/// PageRank as a GraphLab vertex program. Returns ranks (matching the
/// native implementation within float tolerance) and the run report.
pub fn pagerank(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let prog = PageRankProgram { r, iterations };
    let init = vec![1.0f64; g.num_vertices()];
    run(
        &g.out,
        None,
        &Gas(prog),
        init,
        vec![],
        true,
        &config(iterations + 2),
        nodes,
        1,
    )
}

/// BFS as a GraphLab vertex program.
pub fn bfs(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
) -> Result<(Vec<u32>, RunReport), SimError> {
    let mut init = vec![BFS_UNREACHED; g.num_vertices()];
    init[source as usize] = 0;
    let max = g.num_vertices() as u32 + 2;
    run(
        &g.adj,
        None,
        &Gas(BfsProgram),
        init,
        vec![(source, 0)],
        false,
        &config(max),
        nodes,
        1,
    )
}

/// Bit-parallel multi-source BFS as a GraphLab vertex program. Mask
/// words are OR-merged by the combiner before hitting the socket
/// transport; distances match `graphmaze_native::msbfs::msbfs` exactly.
pub fn msbfs(
    g: &UndirectedGraph,
    sources: &[VertexId],
    nodes: usize,
) -> Result<(Vec<Vec<u32>>, RunReport), SimError> {
    let prog = MsBfsProgram {
        num_sources: sources.len(),
    };
    let init = vec![prog.initial_state(); g.num_vertices()];
    let max = g.num_vertices() as u32 + 2;
    let (values, report) = run(
        &g.adj,
        None,
        &Gas(prog),
        init,
        msbfs_seed_msgs(sources),
        false,
        &config(max),
        nodes,
        1,
    )?;
    Ok((msbfs_rows(&values, sources.len()), report))
}

/// Triangle counting as a GraphLab vertex program over a DAG-oriented,
/// sorted-adjacency CSR (see `graphmaze_native::triangle::orient_and_sort`).
pub fn triangles(oriented: &Csr, nodes: usize) -> Result<(u64, RunReport), SimError> {
    let (values, report) = run(
        oriented,
        None,
        &Gas(TriangleProgram),
        vec![0u64; oriented.num_vertices()],
        vec![],
        true,
        &config(4),
        nodes,
        2,
    )?;
    Ok((values.iter().sum(), report))
}

/// Collaborative filtering by alternating GD (GraphLab cannot express the
/// native SGD schedule, §3.2). Returns the packed factor rows (users then
/// items) and the report.
pub fn cf_gd(
    g: &RatingsGraph,
    k: usize,
    lambda: f64,
    gamma: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<Vec<f64>>, RunReport), SimError> {
    let (csr, weights) = pack_bipartite(g);
    let prog = CfGdProgram {
        num_users: g.num_users(),
        k,
        lambda,
        gamma,
        iterations,
    };
    let init: Vec<Vec<f64>> = (0..csr.num_vertices())
        .map(|i| {
            (0..k)
                .map(|j| {
                    let x = (i as u64 * 31 + j as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    (x >> 11) as f64 / (1u64 << 53) as f64 * 0.1
                })
                .collect()
        })
        .collect();
    run(
        &csr,
        Some(&weights),
        &Gas(prog),
        init,
        vec![],
        true,
        &config(2 * iterations + 2),
        nodes,
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};
    use graphmaze_native::pagerank::pagerank as native_pagerank;
    use graphmaze_native::triangle::{orient_and_sort, triangles as native_triangles};
    use graphmaze_native::{bfs::bfs as native_bfs, PAGERANK_R};

    fn rmat_el(scale: u32, seed: u64) -> graphmaze_graph::EdgeList {
        rmat::generate(&RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        })
    }

    #[test]
    fn pagerank_matches_native() {
        let el = rmat_el(9, 21);
        let g = DirectedGraph::from_edge_list(&el);
        let want = native_pagerank(&g, PAGERANK_R, 5, 2);
        let (got, report) = pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(report.traffic.bytes_sent > 0);
    }

    #[test]
    fn bfs_matches_native() {
        let mut el = rmat_el(9, 22);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let want = native_bfs(&g, 0, 2);
        let (got, _) = bfs(&g, 0, 4).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn triangles_match_native() {
        let el = rmat_el(9, 23);
        let oriented = orient_and_sort(&el);
        let want = native_triangles(&oriented, 2);
        let (got, _) = triangles(&oriented, 4).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn hub_replication_cuts_traffic_without_changing_results() {
        // RMAT hubs have thousands of out-edges; replication sends one
        // value per (hub, node) instead of one per edge (§6.1.1).
        let el = rmat_el(11, 25);
        let g = DirectedGraph::from_edge_list(&el);
        let with = pagerank(&g, PAGERANK_R, 3, 4).unwrap();
        let mut cfg_no_rep = config(5);
        cfg_no_rep.replicate_hubs_factor = None;
        let prog = PageRankProgram {
            r: PAGERANK_R,
            iterations: 3,
        };
        let without = run(
            &g.out,
            None,
            &Gas(prog),
            vec![1.0f64; g.num_vertices()],
            vec![],
            true,
            &cfg_no_rep,
            4,
            1,
        )
        .unwrap();
        for (a, b) in with.0.iter().zip(&without.0) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(
            with.1.traffic.bytes_sent < without.1.traffic.bytes_sent,
            "replication should cut traffic: {} !< {}",
            with.1.traffic.bytes_sent,
            without.1.traffic.bytes_sent
        );
    }

    #[test]
    fn graphlab_is_slower_than_native_pagerank() {
        let el = rmat_el(10, 24);
        let g = DirectedGraph::from_edge_list(&el);
        let (_, native_rep) = graphmaze_native::pagerank::pagerank_cluster(
            &g,
            PAGERANK_R,
            5,
            graphmaze_native::NativeOptions::all(),
            4,
        )
        .unwrap();
        let (_, gl_rep) = pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        let slowdown = gl_rep.slowdown_vs(&native_rep);
        assert!(slowdown > 1.5, "GraphLab slowdown {slowdown} vs native");
    }
}
