//! The four algorithms as vertex programs — the paper's Algorithm 1
//! (PageRank), Algorithm 2 (BFS), and the §3.2 descriptions of triangle
//! counting and collaborative filtering in the vertex model — written in
//! the declarative gather–apply–scatter form of [`super::gas`].
//!
//! Each program declares its gather algebra as a `spmv::semiring`
//! monoid: PageRank folds with `(+, 0)`, BFS with `(min, MAX)`,
//! multi-source BFS with word-wise OR; triangle counting and CF need the
//! raw inbox (`Collect`). Wrap a program in [`super::gas::Gas`] to run
//! it on the imperative Giraph/GraphLab engines; `engines::graphmat`
//! lowers the same declaration onto masked SpMSpV.

use graphmaze_graph::VertexId;

use super::engine::VertexGraphView;
use super::gas::{ApplyContext, GasProgram, GatherMode, Gathered};
use crate::spmv::semiring::{min_u32, or_words, plus_f64, GatherMonoid};

/// Algorithm 1 — one PageRank iteration per superstep:
///
/// ```text
/// PR ← r
/// for msg ∈ incoming messages: PR ← PR + (1 − r) · msg
/// send PR / degree to all outgoing edges
/// ```
///
/// Superstep 0 only scatters the initial rank; supersteps `1..=T` apply
/// the update, so after superstep `T` the values equal `T` synchronous
/// iterations of eq. (1).
pub struct PageRankProgram {
    /// Random-jump probability (the paper uses 0.3).
    pub r: f64,
    /// Number of PageRank iterations to run.
    pub iterations: u32,
}

impl GasProgram for PageRankProgram {
    type Value = f64;
    type Msg = f64;

    fn gather(&self) -> GatherMode<f64> {
        GatherMode::Fold(plus_f64())
    }

    fn apply(
        &self,
        superstep: u32,
        v: VertexId,
        value: &mut f64,
        gathered: Gathered<'_, f64>,
        g: &VertexGraphView<'_>,
        ctx: &mut ApplyContext,
    ) -> Option<f64> {
        if superstep > 0 {
            let sum = gathered.folded();
            *value = self.r + (1.0 - self.r) * sum;
        }
        if superstep < self.iterations {
            let d = g.degree(v);
            if d > 0 {
                return Some(*value / f64::from(d));
            }
        } else {
            ctx.vote_to_halt();
        }
        None
    }

    fn message_bytes(&self, _: &f64) -> u64 {
        8 // Table 1: constant 8 bytes/edge
    }

    fn value_bytes(&self) -> u64 {
        8
    }
}

/// PageRank with **early convergence detection** via the global
/// aggregator — the variant the paper notes "some Pagerank
/// implementations differ in whether early convergence is detected"
/// (§5.2, which is why it reports time per iteration). Each vertex
/// aggregates its |dPR|; when the previous superstep's global L1 delta
/// drops below `tolerance`, every vertex stops scattering and halts.
pub struct PageRankConvergentProgram {
    /// Random-jump probability.
    pub r: f64,
    /// Global L1 delta below which the computation stops.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
}

impl GasProgram for PageRankConvergentProgram {
    type Value = f64;
    type Msg = f64;

    fn gather(&self) -> GatherMode<f64> {
        GatherMode::Fold(plus_f64())
    }

    fn apply(
        &self,
        superstep: u32,
        v: VertexId,
        value: &mut f64,
        gathered: Gathered<'_, f64>,
        g: &VertexGraphView<'_>,
        ctx: &mut ApplyContext,
    ) -> Option<f64> {
        if superstep > 0 {
            let sum = gathered.folded();
            let new = self.r + (1.0 - self.r) * sum;
            ctx.aggregate((new - *value).abs());
            *value = new;
        }
        let converged = superstep > 1 && ctx.prev_aggregate() < self.tolerance;
        if superstep < self.max_iterations && !converged {
            let d = g.degree(v);
            if d > 0 {
                return Some(*value / f64::from(d));
            }
        } else {
            ctx.vote_to_halt();
        }
        None
    }

    fn message_bytes(&self, _: &f64) -> u64 {
        8
    }

    fn value_bytes(&self) -> u64 {
        8
    }
}

/// Algorithm 2 — BFS as min-propagation:
///
/// ```text
/// for msg ∈ incoming messages: Distance ← min(Distance, msg + 1)
/// send Distance to all outgoing edges (only when improved)
/// ```
pub struct BfsProgram;

/// The unreached sentinel distance.
pub const BFS_UNREACHED: u32 = u32::MAX;

impl GasProgram for BfsProgram {
    type Value = u32;
    type Msg = u32;

    fn gather(&self) -> GatherMode<u32> {
        GatherMode::Fold(min_u32())
    }

    fn apply(
        &self,
        superstep: u32,
        _v: VertexId,
        value: &mut u32,
        gathered: Gathered<'_, u32>,
        _g: &VertexGraphView<'_>,
        ctx: &mut ApplyContext,
    ) -> Option<u32> {
        // the empty inbox folds to MAX, whose saturated +1 never improves
        let incoming = gathered.folded();
        let improved = incoming.saturating_add(1) < *value;
        if improved {
            *value = incoming + 1;
        }
        // The source (value 0, woken by its seed message) scatters once.
        let is_seed = superstep == 0 && *value == 0;
        ctx.vote_to_halt();
        if improved || is_seed {
            Some(if is_seed { 0 } else { *value })
        } else {
            None
        }
    }

    /// Unweighted BFS settles on first reach, so deliveries to an
    /// already-reached vertex can never improve it — the lowered gather
    /// masks them off.
    fn gather_mask(&self, value: &u32) -> bool {
        *value == BFS_UNREACHED
    }

    fn message_bytes(&self, _: &u32) -> u64 {
        4 // Table 1: constant 4 bytes/edge
    }

    fn value_bytes(&self) -> u64 {
        4
    }
}

/// Bit-parallel multi-source BFS as a vertex program — the word-level
/// kernel forced into the per-vertex model (ROADMAP item 2). Each vertex
/// value carries one `u64` mask word per 64 sources ("which sources
/// reached me") plus per-source distances; messages are the newly
/// settled mask words, OR-combined. Every rule is uniform: bit `b`
/// arriving at superstep `s` means source `b` is `s` hops away (seeds
/// get their own mask as an initial message, settling at superstep 0).
///
/// The structural mismatch the paper's framework critique predicts is
/// visible in the message plane: where the native kernel gossips one
/// word per edge with `fetch_or`, the vertex model re-materializes the
/// whole mask vector as a heap message per edge per level.
pub struct MsBfsProgram {
    /// Total number of sources in the batch (bits `i*64+b` with
    /// `i*64+b >= num_sources` are never set).
    pub num_sources: usize,
}

/// Per-vertex msbfs state: settled source masks + per-source distances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsBfsState {
    /// One mask word per 64 sources; bit `b` of word `i` set means
    /// source `i*64+b` has reached this vertex.
    pub seen: Vec<u64>,
    /// Hop distance per source ([`BFS_UNREACHED`] until settled).
    pub dist: Vec<u32>,
}

impl MsBfsProgram {
    /// Mask words per message/value for this batch size.
    pub fn width(&self) -> usize {
        self.num_sources.div_ceil(64)
    }

    /// The all-unreached initial state.
    pub fn initial_state(&self) -> MsBfsState {
        MsBfsState {
            seen: vec![0u64; self.width()],
            dist: vec![BFS_UNREACHED; self.num_sources],
        }
    }
}

impl GasProgram for MsBfsProgram {
    type Value = MsBfsState;
    type Msg = Vec<u64>;

    fn gather(&self) -> GatherMode<Vec<u64>> {
        // OR distributes over the &!seen filter, so folding the inbox
        // first is bit-identical to filtering message by message
        GatherMode::Fold(or_words(self.width()))
    }

    fn apply(
        &self,
        superstep: u32,
        _v: VertexId,
        value: &mut MsBfsState,
        gathered: Gathered<'_, Vec<u64>>,
        _g: &VertexGraphView<'_>,
        ctx: &mut ApplyContext,
    ) -> Option<Vec<u64>> {
        let folded = gathered.folded();
        let mut newly = vec![0u64; self.width()];
        let mut any = false;
        for (i, &w) in folded.iter().enumerate() {
            let nw = w & !value.seen[i];
            if nw != 0 {
                newly[i] = nw;
                any = true;
            }
        }
        ctx.vote_to_halt();
        if !any {
            return None;
        }
        for (i, &nw) in newly.iter().enumerate() {
            if nw == 0 {
                continue;
            }
            value.seen[i] |= nw;
            let mut bits = nw;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                value.dist[i * 64 + b] = superstep;
            }
        }
        Some(newly)
    }

    /// Once every source has reached a vertex, arriving masks are fully
    /// `seen` and can have no effect — mask those deliveries off.
    fn gather_mask(&self, value: &MsBfsState) -> bool {
        value.dist.contains(&BFS_UNREACHED)
    }

    fn message_bytes(&self, msg: &Vec<u64>) -> u64 {
        msg.len() as u64 * 8 // one mask word per 64 sources
    }

    fn value_bytes(&self) -> u64 {
        (self.width() * 8 + self.num_sources * 4) as u64
    }

    fn flops_per_msg(&self) -> u64 {
        self.width() as u64 // one OR per mask word
    }
}

/// Triangle counting on a DAG-oriented graph (§3.2): superstep 0, every
/// vertex sends its out-neighbor list to each out-neighbor; superstep 1,
/// every vertex intersects received lists with its own out-neighbors.
/// The total count is the sum of all vertex values.
pub struct TriangleProgram;

impl GasProgram for TriangleProgram {
    type Value = u64;
    type Msg = Vec<VertexId>;

    fn gather(&self) -> GatherMode<Vec<VertexId>> {
        // neighbor lists have no useful ⊕ — apply walks each one
        GatherMode::Collect
    }

    fn apply(
        &self,
        superstep: u32,
        v: VertexId,
        value: &mut u64,
        gathered: Gathered<'_, Vec<VertexId>>,
        g: &VertexGraphView<'_>,
        ctx: &mut ApplyContext,
    ) -> Option<Vec<VertexId>> {
        ctx.vote_to_halt();
        if superstep == 0 {
            let nv = g.neighbors(v);
            if nv.is_empty() {
                None
            } else {
                Some(nv.to_vec())
            }
        } else {
            // sorted-merge intersection of each received list with N+(v)
            let own = g.neighbors(v);
            for list in gathered.all() {
                let (mut i, mut j) = (0, 0);
                while i < own.len() && j < list.len() {
                    match own[i].cmp(&list[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            *value += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            None
        }
    }

    fn message_bytes(&self, msg: &Vec<VertexId>) -> u64 {
        msg.len() as u64 * 4 // Table 1: variable 0–10⁶ bytes
    }

    fn value_bytes(&self) -> u64 {
        8
    }

    fn flops_per_msg(&self) -> u64 {
        8 // merge-compare per list element is folded into streamed bytes
    }
}

/// Collaborative filtering by alternating Gradient Descent (§3.2: "GD
/// involves aggregating information from all neighbors and sending the
/// updated vector at the end of the iteration").
///
/// The bipartite graph is packed into one id space: users `0..U`, items
/// `U..U+V`, with rating-weighted edges in both directions. Even
/// supersteps: users send `p_u` to rated items; odd supersteps: items
/// aggregate, update `q_v` (eq. (12)) and send it back; users then update
/// `p_u` (eq. (11)). One GD iteration = 2 supersteps.
pub struct CfGdProgram {
    /// Number of users (vertices `0..num_users` are users).
    pub num_users: u32,
    /// Latent dimension K.
    pub k: usize,
    /// Regularization λ.
    pub lambda: f64,
    /// Step size γ (constant across the run for the framework version).
    pub gamma: f64,
    /// GD iterations to run (2 supersteps each).
    pub iterations: u32,
}

/// A factor-vector message: `(sender, factors)`.
#[derive(Clone, Debug)]
pub struct FactorMsg {
    /// Sending vertex (packed id).
    pub from: VertexId,
    /// The sender's factor row.
    pub vec: Vec<f64>,
}

impl GasProgram for CfGdProgram {
    type Value = Vec<f64>;
    type Msg = FactorMsg;

    fn gather(&self) -> GatherMode<FactorMsg> {
        // the gradient needs each sender's identity for the rating
        // lookup, so the inbox cannot be pre-reduced
        GatherMode::Collect
    }

    fn apply(
        &self,
        superstep: u32,
        v: VertexId,
        value: &mut Vec<f64>,
        gathered: Gathered<'_, FactorMsg>,
        g: &VertexGraphView<'_>,
        ctx: &mut ApplyContext,
    ) -> Option<FactorMsg> {
        let msgs = gathered.all();
        let is_user = v < self.num_users;
        let my_turn_to_update = if is_user {
            superstep.is_multiple_of(2)
        } else {
            superstep % 2 == 1
        };
        if my_turn_to_update && superstep > 0 {
            // aggregate gradient from received factor vectors (eq. 11/12)
            let mut grad = vec![0.0; self.k];
            for m in msgs {
                let r = f64::from(g.edge_weight(v, m.from).expect("rated edge"));
                let e = r - dot(value, &m.vec);
                for i in 0..self.k {
                    grad[i] += e * m.vec[i] - self.lambda * value[i];
                }
            }
            for i in 0..self.k {
                value[i] += self.gamma * grad[i];
            }
        }
        ctx.vote_to_halt();
        let last_superstep = 2 * self.iterations;
        if superstep >= last_superstep {
            return None;
        }
        let my_turn_to_send = if is_user {
            superstep.is_multiple_of(2)
        } else {
            superstep % 2 == 1
        };
        if my_turn_to_send {
            Some(FactorMsg {
                from: v,
                vec: value.clone(),
            })
        } else {
            None
        }
    }

    fn message_bytes(&self, m: &FactorMsg) -> u64 {
        4 + m.vec.len() as u64 * 8 // Table 1: ~8K bytes at the paper's K
    }

    fn value_bytes(&self) -> u64 {
        self.k as u64 * 8
    }

    fn flops_per_msg(&self) -> u64 {
        (self.k * 6) as u64 // dot + gradient accumulate per message
    }
}

/// Seed messages for [`MsBfsProgram`]: source `i` wakes its vertex with
/// a mask vector carrying only bit `i`, settling it at superstep 0.
pub fn msbfs_seed_msgs(sources: &[VertexId]) -> Vec<(VertexId, Vec<u64>)> {
    let width = sources.len().div_ceil(64).max(1);
    sources
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let mut mask = vec![0u64; width];
            mask[i / 64] = 1u64 << (i % 64);
            (s, mask)
        })
        .collect()
}

/// Transposes per-vertex [`MsBfsState`] values into one distance row per
/// source — the layout the native kernel returns.
pub fn msbfs_rows(values: &[MsBfsState], num_sources: usize) -> Vec<Vec<u32>> {
    (0..num_sources)
        .map(|s| values.iter().map(|st| st.dist[s]).collect())
        .collect()
}

/// The gather monoid of a fold-mode program, if it declares one.
pub fn gather_monoid<P: GasProgram>(program: &P) -> Option<GatherMonoid<P::Msg>> {
    match program.gather() {
        GatherMode::Fold(m) => Some(m),
        GatherMode::Collect => None,
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Packs a bipartite ratings graph into one vertex id space for the
/// vertex engines: users keep their ids, item `v` becomes
/// `num_users + v`; every rating contributes both directed edges.
/// Adjacency is sorted so [`VertexGraphView::edge_weight`] can binary
/// search. Returns `(csr, weights)` aligned per edge.
pub fn pack_bipartite(g: &graphmaze_graph::RatingsGraph) -> (graphmaze_graph::csr::Csr, Vec<f32>) {
    let nu = g.num_users();
    let total = u64::from(nu) + u64::from(g.num_items());
    let mut edges: Vec<(VertexId, VertexId, f32)> =
        Vec::with_capacity(g.num_ratings() as usize * 2);
    for (u, v, r) in g.triples() {
        edges.push((u, nu + v, r));
        edges.push((nu + v, u, r));
    }
    edges.sort_by_key(|e| (e.0, e.1));
    let plain: Vec<(VertexId, VertexId)> = edges.iter().map(|&(s, d, _)| (s, d)).collect();
    let weights: Vec<f32> = edges.iter().map(|&(_, _, w)| w).collect();
    let csr = graphmaze_graph::csr::Csr::from_edges(total, &plain);
    (csr, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::engine::{run, EngineConfig};
    use crate::vertex::gas::Gas;
    use graphmaze_cluster::ExecProfile;
    use graphmaze_graph::csr::Csr;

    fn cfg(max: u32) -> EngineConfig {
        EngineConfig {
            profile: ExecProfile::graphlab(),
            use_combiner: true,
            buffer_whole_superstep: false,
            superstep_splits: 1,
            per_message_overhead_bytes: 0,
            max_supersteps: max,
            replicate_hubs_factor: None,
            compress_ids: false,
            speculative_reexec: false,
        }
    }

    #[test]
    fn convergent_pagerank_stops_early_and_matches_until() {
        use graphmaze_datagen::{rmat, RmatConfig, RmatParams};
        let el = rmat::generate(&RmatConfig {
            scale: 9,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed: 77,
            scramble_ids: false,
            threads: 1,
        });
        let g = graphmaze_graph::DirectedGraph::from_edge_list(&el);
        let prog = PageRankConvergentProgram {
            r: 0.3,
            tolerance: 1e-7,
            max_iterations: 500,
        };
        let (values, report) = run(
            &g.out,
            None,
            &Gas(prog),
            vec![1.0f64; g.num_vertices()],
            vec![],
            true,
            &cfg(510),
            2,
            1,
        )
        .unwrap();
        assert!(
            report.steps < 500,
            "should converge early, ran {} steps",
            report.steps
        );
        // agrees with the native convergence-detecting run
        let (want, iters) = graphmaze_native::pagerank::pagerank_until(&g, 0.3, 1e-7, 500, 1);
        assert!(iters < 500);
        for (a, b) in values.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn pagerank_program_matches_hand_computation() {
        // Figure 2 graph, 1 iteration: [0.3, 0.65, 1.0, 1.35]
        let csr = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let prog = PageRankProgram {
            r: 0.3,
            iterations: 1,
        };
        let (values, _) = run(
            &csr,
            None,
            &Gas(prog),
            vec![1.0f64; 4],
            vec![],
            true,
            &cfg(10),
            2,
            1,
        )
        .unwrap();
        let want = [0.3, 0.65, 1.0, 1.35];
        for (a, b) in values.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn bfs_program_levels() {
        // path 0-1-2-3 (symmetric)
        let csr = Csr::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        let prog = BfsProgram;
        let mut init = vec![BFS_UNREACHED; 4];
        init[0] = 0;
        let (values, _) = run(
            &csr,
            None,
            &Gas(prog),
            init,
            vec![(0, 0)],
            false,
            &cfg(20),
            2,
            1,
        )
        .unwrap();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn triangle_program_counts_fig2() {
        // oriented Figure 2 graph has 2 triangles
        let mut csr = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        csr.sort_neighbors();
        let (values, _) = run(
            &csr,
            None,
            &Gas(TriangleProgram),
            vec![0u64; 4],
            vec![],
            true,
            &cfg(5),
            2,
            1,
        )
        .unwrap();
        assert_eq!(values.iter().sum::<u64>(), 2);
    }

    #[test]
    fn cf_program_reduces_error() {
        // 2 users, 2 items packed as 2,3; user 0 rates both items
        let edges: Vec<(u32, u32, f32)> = vec![
            (0, 2, 5.0),
            (0, 3, 1.0),
            (1, 2, 3.0),
            (2, 0, 5.0),
            (2, 1, 3.0),
            (3, 0, 1.0),
        ];
        let mut sorted = edges.clone();
        sorted.sort_by_key(|e| (e.0, e.1));
        let plain: Vec<(u32, u32)> = sorted.iter().map(|&(s, d, _)| (s, d)).collect();
        let csr = Csr::from_edges(4, &plain);
        let weights: Vec<f32> = sorted.iter().map(|&(_, _, w)| w).collect();
        let prog = CfGdProgram {
            num_users: 2,
            k: 4,
            lambda: 0.01,
            gamma: 0.05,
            iterations: 30,
        };
        let init: Vec<Vec<f64>> = (0..4).map(|i| vec![0.1 + 0.01 * i as f64; 4]).collect();
        let err = |vals: &[Vec<f64>]| -> f64 {
            let pairs = [(0usize, 2usize, 5.0f64), (0, 3, 1.0), (1, 2, 3.0)];
            pairs
                .iter()
                .map(|&(u, v, r)| (r - dot(&vals[u], &vals[v])).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let before = err(&init);
        let (values, report) = run(
            &csr,
            Some(&weights),
            &Gas(prog),
            init,
            vec![],
            true,
            &cfg(100),
            1,
            2,
        )
        .unwrap();
        let after = err(&values);
        assert!(after < before * 0.5, "error {before} -> {after}");
        assert!(report.steps >= 60);
    }
}
