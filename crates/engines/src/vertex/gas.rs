//! The gather–apply–scatter (GAS) intermediate representation of vertex
//! programs — the declarative form every framework binding consumes.
//!
//! A [`GasProgram`] splits the monolithic `compute` of the classic
//! vertex model into three lowerable parts:
//!
//! * **gather** — how the inbox is reduced, declared as a
//!   [`GatherMode`]: either an associative ⊕ with identity (a
//!   [`GatherMonoid`] from `spmv::semiring`, e.g. `(+, 0)` for PageRank,
//!   `(min, MAX)` for BFS, word-wise OR for multi-source BFS) or
//!   `Collect` when the program needs every message verbatim (triangle
//!   lists, CF factor vectors).
//! * **apply** — the per-vertex state update, consuming the gathered
//!   inbox and optionally voting to halt / contributing to the global
//!   aggregator through an [`ApplyContext`].
//! * **scatter** — the message `apply` returns, broadcast by the engine
//!   to every out-neighbor. The uniform broadcast is what makes a
//!   program lowerable onto SpMV: the scatter frontier is exactly a
//!   sparse input vector.
//!
//! The [`Gas`] newtype is the compatibility shim: it implements the
//! imperative [`VertexProgram`] trait for any `GasProgram`, folding the
//! inbox with the declared monoid in arrival order — bit-identical to
//! the historical hand-written `compute` bodies — so the Giraph/GraphLab
//! engines run unchanged while `engines::graphmat` lowers the same
//! program onto masked SpMSpV.

use graphmaze_graph::VertexId;

use super::engine::{VertexContext, VertexGraphView, VertexProgram};
use crate::spmv::semiring::GatherMonoid;

/// How a program's gather step reduces the messages addressed to a
/// vertex.
pub enum GatherMode<M: Clone> {
    /// Reduce with an associative ⊕ folded from its identity. Engines
    /// may fold eagerly (CombBLAS-style sparse accumulator), at
    /// delivery (GraphLab's combiner), or at apply time — all three
    /// orders produce bit-identical results for an associative ⊕
    /// applied in arrival order.
    Fold(GatherMonoid<M>),
    /// No algebra: apply sees every message in arrival order.
    Collect,
}

/// The gathered inbox an apply step receives.
pub enum Gathered<'a, M> {
    /// The ⊕-reduction of the inbox (the monoid identity when empty —
    /// apply always runs for active vertices, even with nothing
    /// delivered).
    Folded(M),
    /// The raw inbox in arrival order (`Collect`-mode programs).
    All(&'a [M]),
}

impl<'a, M> Gathered<'a, M> {
    /// The folded reduction. Panics for `Collect`-mode programs.
    pub fn folded(self) -> M {
        match self {
            Gathered::Folded(m) => m,
            Gathered::All(_) => panic!("collect-mode program asked for a folded gather"),
        }
    }

    /// The raw inbox. Panics for `Fold`-mode programs.
    pub fn all(self) -> &'a [M] {
        match self {
            Gathered::All(msgs) => msgs,
            Gathered::Folded(_) => panic!("fold-mode program asked for the raw inbox"),
        }
    }
}

/// Apply-step context: halting and the global aggregator. Scatter is the
/// message `apply` returns — emission is the engine's job in the GAS
/// model, which is what lets the matrix backend batch it as a sparse
/// vector instead of per-edge sends.
pub struct ApplyContext {
    pub(crate) halt: bool,
    pub(crate) aggregate: f64,
    prev_aggregate: f64,
}

impl ApplyContext {
    pub(crate) fn new(prev_aggregate: f64) -> Self {
        ApplyContext {
            halt: false,
            aggregate: 0.0,
            prev_aggregate,
        }
    }

    /// Votes to halt: the vertex stays inactive until a message wakes it.
    #[inline]
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }

    /// Adds to this superstep's global aggregate (summed at the barrier).
    #[inline]
    pub fn aggregate(&mut self, value: f64) {
        self.aggregate += value;
    }

    /// The global aggregate of the *previous* superstep (0.0 at start).
    #[inline]
    pub fn prev_aggregate(&self) -> f64 {
        self.prev_aggregate
    }
}

/// A vertex program in declarative gather–apply–scatter form.
///
/// Every conforming program broadcasts one message to *all* out-neighbors
/// per scatter (or none) — the invariant the SpMV lowering relies on.
pub trait GasProgram {
    /// Per-vertex state.
    type Value: Clone;
    /// Message type.
    type Msg: Clone;

    /// The gather algebra — consulted once per superstep by lowering
    /// engines, per vertex by the compatibility shim.
    fn gather(&self) -> GatherMode<Self::Msg>;

    /// One apply step: consume the gathered inbox, update `value`, and
    /// return the message to broadcast to every out-neighbor (`None` =
    /// no scatter).
    fn apply(
        &self,
        superstep: u32,
        v: VertexId,
        value: &mut Self::Value,
        gathered: Gathered<'_, Self::Msg>,
        g: &VertexGraphView<'_>,
        ctx: &mut ApplyContext,
    ) -> Option<Self::Msg>;

    /// Complement output mask for the lowered gather (GraphBLAST's
    /// `y⟨¬m⟩ = Aᵀx`): return `false` when a delivery to a vertex in
    /// this state can neither change the value nor cause a scatter, so
    /// the SpMSpV may drop the entry. Must be exact — the default keeps
    /// everything.
    fn gather_mask(&self, _value: &Self::Value) -> bool {
        true
    }

    /// Wire size of a message, bytes (paper Table 1's "message size").
    fn message_bytes(&self, msg: &Self::Msg) -> u64;

    /// In-memory size of a vertex value, bytes.
    fn value_bytes(&self) -> u64;

    /// Arithmetic per received message (cost model).
    fn flops_per_msg(&self) -> u64 {
        2
    }
}

/// Compatibility shim: runs a declarative [`GasProgram`] on the
/// imperative [`VertexProgram`] engines (Giraph, GraphLab, GPS, GraphX).
/// The inbox is folded left-to-right from the monoid identity in arrival
/// order, reproducing the historical `compute` bodies bit-for-bit; the
/// declared ⊕ also becomes the engine-level message combiner.
pub struct Gas<P>(pub P);

impl<P: GasProgram> VertexProgram for Gas<P> {
    type Value = P::Value;
    type Msg = P::Msg;

    fn compute(
        &self,
        superstep: u32,
        v: VertexId,
        value: &mut Self::Value,
        msgs: &[Self::Msg],
        g: &VertexGraphView<'_>,
        ctx: &mut VertexContext<Self::Msg>,
    ) {
        let mut actx = ApplyContext::new(ctx.prev_aggregate());
        let scatter = match self.0.gather() {
            GatherMode::Fold(monoid) => {
                let folded = monoid.fold(msgs.iter());
                self.0
                    .apply(superstep, v, value, Gathered::Folded(folded), g, &mut actx)
            }
            GatherMode::Collect => {
                self.0
                    .apply(superstep, v, value, Gathered::All(msgs), g, &mut actx)
            }
        };
        ctx.aggregate(actx.aggregate);
        if actx.halt {
            ctx.vote_to_halt();
        }
        if let Some(msg) = scatter {
            for &dst in g.neighbors(v) {
                ctx.send(dst, msg.clone());
            }
        }
    }

    fn message_bytes(&self, msg: &Self::Msg) -> u64 {
        self.0.message_bytes(msg)
    }

    fn value_bytes(&self) -> u64 {
        self.0.value_bytes()
    }

    fn combine(&self, a: &Self::Msg, b: &Self::Msg) -> Option<Self::Msg> {
        match self.0.gather() {
            GatherMode::Fold(monoid) => Some((monoid.combine)(a, b)),
            GatherMode::Collect => None,
        }
    }

    fn flops_per_msg(&self) -> u64 {
        self.0.flops_per_msg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::semiring::plus_f64;

    /// Fold-mode toy: value = folded sum; scatters its value once at
    /// superstep 0, aggregates what it received.
    struct FoldSum;

    impl GasProgram for FoldSum {
        type Value = f64;
        type Msg = f64;

        fn gather(&self) -> GatherMode<f64> {
            GatherMode::Fold(plus_f64())
        }

        fn apply(
            &self,
            superstep: u32,
            v: VertexId,
            value: &mut f64,
            gathered: Gathered<'_, f64>,
            _g: &VertexGraphView<'_>,
            ctx: &mut ApplyContext,
        ) -> Option<f64> {
            let sum = gathered.folded();
            *value += sum;
            ctx.aggregate(sum);
            ctx.vote_to_halt();
            if superstep == 0 {
                Some(f64::from(v) + 1.0)
            } else {
                None
            }
        }

        fn message_bytes(&self, _: &f64) -> u64 {
            8
        }

        fn value_bytes(&self) -> u64 {
            8
        }
    }

    #[test]
    fn shim_folds_from_identity_and_broadcasts_scatter() {
        use graphmaze_graph::csr::Csr;
        // 0 -> {1, 2}, 1 -> {2}
        let csr = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let cfg = crate::vertex::engine::EngineConfig {
            profile: graphmaze_cluster::ExecProfile::graphlab(),
            use_combiner: false,
            buffer_whole_superstep: false,
            superstep_splits: 1,
            per_message_overhead_bytes: 0,
            max_supersteps: 10,
            replicate_hubs_factor: None,
            compress_ids: false,
            speculative_reexec: false,
        };
        let (values, _) = crate::vertex::engine::run(
            &csr,
            None,
            &Gas(FoldSum),
            vec![0.0f64; 3],
            vec![],
            true,
            &cfg,
            1,
            1,
        )
        .unwrap();
        // superstep 0: everyone applies an empty (identity) gather, then
        // floods v+1; superstep 1: 1 gets 1.0, 2 gets 1.0 + 2.0
        assert_eq!(values, vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn shim_combiner_is_the_declared_monoid() {
        let p = Gas(FoldSum);
        assert_eq!(p.combine(&2.0, &3.5), Some(5.5));
    }
}
