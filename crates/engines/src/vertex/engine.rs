//! The generic bulk-synchronous vertex-program executor.
//!
//! Semantics follow the paper's Giraph description (§3): supersteps in
//! BSP fashion; each active vertex receives the messages sent to it in
//! the previous superstep, updates its value, and sends messages;
//! "computation halts if all vertices have voted to halt and there are
//! no messages in flight". GraphLab's runtime differs in mechanisms
//! (combiners/local reduction, sockets, overlap, replication-aware
//! routing), which [`EngineConfig`] captures.

use graphmaze_cluster::{
    ClusterSpec, Combiner, FlushPolicy, Mailbox, Partition1D, Router, RouterConfig, Sim, SimError,
};
use graphmaze_graph::csr::Csr;
use graphmaze_graph::VertexId;
use graphmaze_metrics::{RunReport, Work};

/// Read-only view of the graph a vertex program may consult: its own
/// out-edges and degrees (a vertex program "can only access local data",
/// §3.1).
pub struct VertexGraphView<'a> {
    /// Out-adjacency CSR.
    pub out: &'a Csr,
    /// Optional edge weights aligned with `out.targets()` (ratings for
    /// collaborative filtering).
    pub weights: Option<&'a [f32]>,
}

impl VertexGraphView<'_> {
    /// Out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.out.degree(v)
    }

    /// Vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Weight of the edge `v → dst`, requiring sorted adjacency. `None`
    /// if the graph is unweighted or the edge is absent.
    pub fn edge_weight(&self, v: VertexId, dst: VertexId) -> Option<f32> {
        let w = self.weights?;
        let lo = self.out.offsets()[v as usize] as usize;
        let hi = self.out.offsets()[v as usize + 1] as usize;
        let idx = self.out.targets()[lo..hi].binary_search(&dst).ok()?;
        Some(w[lo + idx])
    }

    /// `(neighbor, weight)` pairs of `v` (weight 0 when unweighted).
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let lo = self.out.offsets()[v as usize] as usize;
        let hi = self.out.offsets()[v as usize + 1] as usize;
        (lo..hi).map(move |i| (self.out.targets()[i], self.weights.map_or(0.0, |w| w[i])))
    }
}

/// Per-vertex execution context: message emission, halting, and the
/// global **aggregator** (Pregel/Giraph's mechanism for convergence
/// detection: each vertex contributes a value, the engine sums them at
/// the barrier, and every vertex reads the previous superstep's total).
pub struct VertexContext<M> {
    outgoing: Vec<(VertexId, M)>,
    halt: bool,
    aggregate: f64,
    prev_aggregate: f64,
}

impl<M> VertexContext<M> {
    fn new(prev_aggregate: f64) -> Self {
        VertexContext {
            outgoing: Vec::new(),
            halt: false,
            aggregate: 0.0,
            prev_aggregate,
        }
    }

    /// Sends `msg` to vertex `to`, delivered next superstep.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.outgoing.push((to, msg));
    }

    /// Votes to halt: the vertex stays inactive until a message wakes it.
    #[inline]
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }

    /// Adds to this superstep's global aggregate (summed at the barrier).
    #[inline]
    pub fn aggregate(&mut self, value: f64) {
        self.aggregate += value;
    }

    /// The global aggregate of the *previous* superstep (0.0 at start).
    #[inline]
    pub fn prev_aggregate(&self) -> f64 {
        self.prev_aggregate
    }
}

/// A vertex program — the user code of GraphLab/Giraph (paper Algorithm 1
/// and 2 are implementations of this trait).
pub trait VertexProgram {
    /// Per-vertex state.
    type Value: Clone;
    /// Message type.
    type Msg: Clone;

    /// One `Compute` call: receive `msgs`, update `value`, send messages.
    fn compute(
        &self,
        superstep: u32,
        v: VertexId,
        value: &mut Self::Value,
        msgs: &[Self::Msg],
        g: &VertexGraphView<'_>,
        ctx: &mut VertexContext<Self::Msg>,
    );

    /// Wire size of a message, bytes (paper Table 1's "message size").
    fn message_bytes(&self, msg: &Self::Msg) -> u64;

    /// In-memory size of a vertex value, bytes.
    fn value_bytes(&self) -> u64;

    /// Optional message combiner (GraphLab's local reduction). `None`
    /// disables combining.
    fn combine(&self, _a: &Self::Msg, _b: &Self::Msg) -> Option<Self::Msg> {
        None
    }

    /// Arithmetic per received message (cost model).
    fn flops_per_msg(&self) -> u64 {
        2
    }
}

/// Runtime mechanisms that differ between the vertex frameworks.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Execution profile (comm layer, cores, overlap, per-step cost).
    pub profile: graphmaze_cluster::ExecProfile,
    /// Apply the program's combiner before messages leave a node.
    pub use_combiner: bool,
    /// Buffer the whole superstep's messages in memory before sending
    /// (Giraph's failure mode, §6.1.3) instead of streaming in phases.
    pub buffer_whole_superstep: bool,
    /// Split each superstep into this many mini-supersteps, each
    /// processing a slice of vertices (the paper's Giraph fix: "breaking
    /// up each superstep into 100 smaller supersteps"). 1 = no split.
    pub superstep_splits: u32,
    /// Per-buffered-message heap overhead, bytes (JVM object headers for
    /// Giraph; 0 for C++ runtimes).
    pub per_message_overhead_bytes: u64,
    /// Maximum supersteps before the engine gives up.
    pub max_supersteps: u32,
    /// High-degree replication threshold: vertices with degree ≥
    /// `threshold × average` are mirrored on every node, so one combined
    /// message per (hub, node) crosses the wire instead of one per edge —
    /// GraphLab's "advanced partitioning scheme where some nodes with
    /// large degree are duplicated in multiple nodes" (§6.1.1).
    /// `None` disables replication.
    pub replicate_hubs_factor: Option<f64>,
    /// Delta/bitmap-compress destination-id payloads of batched messages
    /// — the §6.2 roadmap recommendation ("techniques like data
    /// compression (bitvectors) ... should also help") applied to the
    /// vertex runtimes. Stock GraphLab/Giraph do not do this.
    pub compress_ids: bool,
    /// Speculatively re-execute straggler slices on a buddy node
    /// (Hadoop/Giraph-style speculative execution). Only takes effect
    /// when the active fault plan carries link-level terms; the buddy's
    /// duplicate result messages are suppressed by the Mailbox combiner
    /// and never reach the wire.
    pub speculative_reexec: bool,
}

/// Number of streaming phases assumed when messages are *not* buffered
/// whole (mirrors native overlap blocking).
const STREAM_PHASES: u64 = 16;

/// Runs `program` to completion (or `max_supersteps`) on the simulated
/// cluster. `initial_msgs` seeds vertex inboxes for superstep 0; every
/// vertex with an initial message (or `activate_all`) is active first.
///
/// Returns final vertex values and the run report.
#[allow(clippy::too_many_arguments)]
pub fn run<P: VertexProgram>(
    out_csr: &Csr,
    weights: Option<&[f32]>,
    program: &P,
    mut values: Vec<P::Value>,
    initial_msgs: Vec<(VertexId, P::Msg)>,
    activate_all: bool,
    cfg: &EngineConfig,
    nodes: usize,
    iterations_per_superstep_group: u32,
) -> Result<(Vec<P::Value>, RunReport), SimError> {
    let n = out_csr.num_vertices();
    assert_eq!(values.len(), n, "one value per vertex");
    if let Some(w) = weights {
        assert_eq!(w.len(), out_csr.targets().len(), "one weight per edge");
    }
    let mut sim = Sim::new(ClusterSpec::paper(nodes), cfg.profile);
    // the message plane, configured from the engine knobs (tests override
    // individual EngineConfig fields, so derive from those rather than
    // using the profile's RouterConfig verbatim)
    let mut router = Router::with_config(
        nodes,
        RouterConfig {
            flush: if cfg.buffer_whole_superstep {
                FlushPolicy::Barrier
            } else {
                cfg.profile.router.flush
            },
            per_message_overhead_bytes: cfg.per_message_overhead_bytes,
            compress_ids: cfg.compress_ids,
        },
    );
    let part = Partition1D::balanced_by_edges(out_csr, nodes);
    let view = VertexGraphView {
        out: out_csr,
        weights,
    };

    // static allocations: graph slice + values; the declared layout
    // lets an elastic plan's repartitioner weight its cuts by real
    // per-partition loads
    for node in 0..nodes {
        sim.declare_partition(node, part.len(node) as u64, part.edges_of(out_csr, node));
        let bytes =
            part.edges_of(out_csr, node) * 4 + part.len(node) as u64 * program.value_bytes();
        sim.alloc(node, bytes, "vertex:graph+values")?;
    }

    // replicated hubs: one combined value crosses the wire per (hub,
    // node); mirrors scatter locally (GraphLab's replication, §6.1.1)
    let hub_threshold = cfg.replicate_hubs_factor.map(|f| {
        let avg = out_csr.num_edges() as f64 / n.max(1) as f64;
        (avg * f).max(1.0) as u32
    });
    let is_hub = |v: VertexId| -> bool { hub_threshold.is_some_and(|t| out_csr.degree(v) >= t) };

    let mut inbox: Vec<Vec<P::Msg>> = (0..n).map(|_| Vec::new()).collect();
    for (v, m) in initial_msgs {
        inbox[v as usize].push(m);
    }
    let mut active: Vec<bool> = if activate_all {
        vec![true; n]
    } else {
        inbox.iter().map(|b| !b.is_empty()).collect()
    };

    let splits = cfg.superstep_splits.max(1);
    let mut superstep = 0u32;
    // Pregel-style global aggregator: summed at each superstep barrier,
    // visible to every vertex in the next superstep (tiny allreduce —
    // 8 bytes per node pair, charged below)
    let mut prev_aggregate = 0.0f64;
    while superstep < cfg.max_supersteps {
        let any_active = active.iter().any(|&a| a);
        if !any_active {
            break;
        }
        // next inbox built as messages are routed
        let mut next_inbox: Vec<Vec<P::Msg>> = (0..n).map(|_| Vec::new()).collect();
        let mut any_message = false;
        let mut aggregate_acc = 0.0f64;

        // process each split slice as its own barrier
        for split in 0..splits {
            if splits == 1 {
                sim.phase(&format!("superstep:{superstep}"));
            } else {
                sim.phase(&format!("superstep:{superstep}/split:{split}"));
            }
            let mut split_alloc: Vec<u64> = vec![0; nodes];
            for node in 0..nodes {
                let range = part.range(node);
                let slice_len = (range.end - range.start).div_ceil(splits);
                let lo = range.start + split * slice_len;
                let hi = (lo + slice_len).min(range.end);
                let mut recv_bytes = 0u64;
                let mut recv_msgs = 0u64;
                let mut sent_bytes_local = 0u64;
                let mut sent_msgs_local = 0u64;
                // per-destination-node outgoing buffers for this slice
                let mut mbox: Mailbox<P::Msg> = Mailbox::new(node, nodes);
                // hub mirror syncs, batched into one bulk transfer per
                // destination node at slice end
                let mut hub_wire: Vec<u64> = vec![0; nodes];
                for v in lo..hi {
                    if !active[v as usize] {
                        continue;
                    }
                    let msgs = std::mem::take(&mut inbox[v as usize]);
                    for m in &msgs {
                        recv_bytes += program.message_bytes(m);
                    }
                    recv_msgs += msgs.len() as u64;
                    let mut ctx = VertexContext::new(prev_aggregate);
                    program.compute(
                        superstep,
                        v,
                        &mut values[v as usize],
                        &msgs,
                        &view,
                        &mut ctx,
                    );
                    aggregate_acc += ctx.aggregate;
                    if ctx.halt {
                        active[v as usize] = false;
                    }
                    if is_hub(v) && !ctx.outgoing.is_empty() {
                        // replication: deliver everywhere, but only one
                        // value per remote node hits the wire (mirrors
                        // hold the hub's local edges already)
                        let mut sent_to = vec![false; nodes];
                        for (dst, m) in ctx.outgoing {
                            let dest = part.owner(dst);
                            let bytes = program.message_bytes(&m);
                            sent_bytes_local += bytes;
                            sent_msgs_local += 1;
                            if dest != node && !sent_to[dest] {
                                sent_to[dest] = true;
                                hub_wire[dest] += 4 + bytes;
                            }
                            any_message = true;
                            next_inbox[dst as usize].push(m);
                        }
                    } else {
                        for (dst, m) in ctx.outgoing {
                            sent_msgs_local += 1;
                            mbox.post(part.owner(dst), dst, m);
                        }
                    }
                }
                // local reduction, id compression, per-message overhead
                // and wire routing all happen in the message plane
                let combine_fn = |a: &P::Msg, b: &P::Msg| program.combine(a, b);
                let combine: Combiner<'_, P::Msg> = if cfg.use_combiner {
                    Some(&combine_fn)
                } else {
                    None
                };
                sent_bytes_local += mbox.flush(
                    &mut router,
                    &mut sim,
                    n as u64,
                    |m| program.message_bytes(m),
                    combine,
                    |d, m| {
                        any_message = true;
                        next_inbox[d as usize].push(m);
                    },
                );
                // route batched hub mirror syncs
                for (dest, &bytes) in hub_wire.iter().enumerate() {
                    router.send(&mut sim, node, dest, bytes, bytes);
                }
                // compute cost for this node's slice
                let w = Work {
                    seq_bytes: recv_bytes + sent_bytes_local,
                    rand_accesses: recv_msgs,
                    flops: recv_msgs * program.flops_per_msg(),
                };
                // speculative re-execution: a straggling slice is re-run
                // on a buddy node in parallel; the faster copy wins, so
                // the slowdown is masked and the buddy's duplicate result
                // messages are suppressed by the combiner (never wired)
                if cfg.speculative_reexec
                    && nodes > 1
                    && sim.speculation_active()
                    && sim.straggler_at(node).is_some()
                {
                    let buddy = (node + 1) % nodes;
                    sim.charge_speculated(node, buddy, w, sent_msgs_local);
                } else {
                    sim.charge(node, w);
                }
                // buffering memory
                let buffered = if cfg.buffer_whole_superstep {
                    recv_bytes + sent_bytes_local + recv_msgs * cfg.per_message_overhead_bytes
                } else {
                    (recv_bytes + sent_bytes_local) / STREAM_PHASES + 1
                };
                split_alloc[node] = buffered;
                sim.alloc(node, buffered, "vertex:message-buffers")?;
            }
            for (node, b) in split_alloc.iter().enumerate() {
                sim.free(node, *b);
            }
            // buffered traffic is charged to the step that produced it
            router.flush(&mut sim);
            sim.end_step()?;
        }

        // aggregator allreduce: each node contributes 8 bytes
        router.allreduce(&mut sim, 8);
        prev_aggregate = aggregate_acc;
        inbox = next_inbox;
        // wake vertices that received messages
        for (v, buf) in inbox.iter().enumerate() {
            if !buf.is_empty() {
                active[v] = true;
            }
        }
        superstep += 1;
        if iterations_per_superstep_group > 0
            && superstep.is_multiple_of(iterations_per_superstep_group)
        {
            sim.end_iteration();
        }
        if !any_message && active.iter().all(|&a| !a) {
            break;
        }
    }
    Ok((values, sim.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_cluster::ExecProfile;

    /// A toy program: every vertex floods its id once, each vertex counts
    /// the messages it receives, then halts.
    struct CountIncoming;

    impl VertexProgram for CountIncoming {
        type Value = u32;
        type Msg = u32;

        fn compute(
            &self,
            superstep: u32,
            v: VertexId,
            value: &mut u32,
            msgs: &[u32],
            g: &VertexGraphView<'_>,
            ctx: &mut VertexContext<u32>,
        ) {
            if superstep == 0 {
                for &d in g.neighbors(v) {
                    ctx.send(d, v);
                }
            }
            *value += msgs.len() as u32;
            ctx.vote_to_halt();
        }

        fn message_bytes(&self, _: &u32) -> u64 {
            4
        }

        fn value_bytes(&self) -> u64 {
            4
        }
    }

    fn engine_cfg() -> EngineConfig {
        EngineConfig {
            profile: ExecProfile::graphlab(),
            use_combiner: false,
            buffer_whole_superstep: false,
            superstep_splits: 1,
            per_message_overhead_bytes: 0,
            max_supersteps: 10,
            replicate_hubs_factor: None,
            compress_ids: false,
            speculative_reexec: false,
        }
    }

    #[test]
    fn message_delivery_counts_in_degree() {
        // Figure 2 graph: in-degrees 0,1,2,2
        let csr = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        for nodes in [1, 2, 4] {
            let (values, report) = run(
                &csr,
                None,
                &CountIncoming,
                vec![0u32; 4],
                vec![],
                true,
                &engine_cfg(),
                nodes,
                1,
            )
            .unwrap();
            assert_eq!(values, vec![0, 1, 2, 2], "nodes={nodes}");
            assert!(report.steps >= 2);
        }
    }

    #[test]
    fn halting_terminates_early() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let (_, report) = run(
            &csr,
            None,
            &CountIncoming,
            vec![0u32; 3],
            vec![],
            true,
            &engine_cfg(),
            2,
            1,
        )
        .unwrap();
        // flood, deliver, then quiesce well before max_supersteps
        assert!(report.steps < 10, "steps {}", report.steps);
    }

    /// Summing program with a combiner.
    struct SumFlood;

    impl VertexProgram for SumFlood {
        type Value = u64;
        type Msg = u64;

        fn compute(
            &self,
            superstep: u32,
            v: VertexId,
            value: &mut u64,
            msgs: &[u64],
            g: &VertexGraphView<'_>,
            ctx: &mut VertexContext<u64>,
        ) {
            if superstep == 0 {
                for &d in g.neighbors(v) {
                    ctx.send(d, u64::from(v) + 1);
                }
            }
            *value += msgs.iter().sum::<u64>();
            ctx.vote_to_halt();
        }

        fn message_bytes(&self, _: &u64) -> u64 {
            8
        }

        fn value_bytes(&self) -> u64 {
            8
        }

        fn combine(&self, a: &u64, b: &u64) -> Option<u64> {
            Some(a + b)
        }
    }

    #[test]
    fn combiner_preserves_results_and_cuts_traffic() {
        // many parallel edges to one target across a node boundary
        let edges: Vec<(u32, u32)> = (0..50u32).map(|i| (i, 99)).collect();
        let csr = Csr::from_edges(100, &edges);
        let mut with = engine_cfg();
        with.use_combiner = true;
        let mut without = engine_cfg();
        without.use_combiner = false;
        let (va, ra) = run(
            &csr,
            None,
            &SumFlood,
            vec![0u64; 100],
            vec![],
            true,
            &with,
            4,
            1,
        )
        .unwrap();
        let (vb, rb) = run(
            &csr,
            None,
            &SumFlood,
            vec![0u64; 100],
            vec![],
            true,
            &without,
            4,
            1,
        )
        .unwrap();
        assert_eq!(va, vb);
        assert_eq!(va[99], (1..=50).sum::<u64>());
        assert!(
            ra.traffic.bytes_sent < rb.traffic.bytes_sent,
            "{} !< {}",
            ra.traffic.bytes_sent,
            rb.traffic.bytes_sent
        );
    }

    #[test]
    fn superstep_splitting_keeps_results_but_lowers_buffer() {
        let edges: Vec<(u32, u32)> = (0..64u32)
            .flat_map(|i| [(i, (i + 1) % 64), (i, (i + 7) % 64)])
            .collect();
        let csr = Csr::from_edges(64, &edges);
        let mut whole = engine_cfg();
        whole.buffer_whole_superstep = true;
        whole.per_message_overhead_bytes = 48;
        let mut split = whole;
        split.superstep_splits = 8;
        let (va, ra) = run(
            &csr,
            None,
            &SumFlood,
            vec![0u64; 64],
            vec![],
            true,
            &whole,
            2,
            1,
        )
        .unwrap();
        let (vb, rb) = run(
            &csr,
            None,
            &SumFlood,
            vec![0u64; 64],
            vec![],
            true,
            &split,
            2,
            1,
        )
        .unwrap();
        assert_eq!(va, vb);
        assert!(rb.steps > ra.steps, "split produces more barriers");
        assert!(
            rb.peak_mem_bytes <= ra.peak_mem_bytes,
            "{} !<= {}",
            rb.peak_mem_bytes,
            ra.peak_mem_bytes
        );
    }

    #[test]
    fn initial_messages_seed_activity() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        // only vertex 1 starts active, via an initial message
        let (values, _) = run(
            &csr,
            None,
            &CountIncoming,
            vec![0u32; 3],
            vec![(1, 7)],
            false,
            &engine_cfg(),
            1,
            1,
        )
        .unwrap();
        // vertex 1 counts its initial message; vertex 2 counts the flood from 1
        assert_eq!(values, vec![0, 1, 1]);
    }
}
