//! Related-work frameworks the paper quantifies in §7: GPS and GraphX —
//! both vertex-programming runtimes, bound to the same engine with their
//! cited characteristics.
//!
//! * **GPS** \[27\]: "vertex partitioning except for the large degree
//!   vertices which are split among multiple nodes" (LALP — modelled as
//!   hub replication), with "a 12X performance improvement compared to
//!   Giraph".
//! * **GraphX** \[35\]: vertex programs on Spark; "about 7X slower than
//!   GraphLab for pagerank".

use graphmaze_cluster::{ExecProfile, SimError};
use graphmaze_graph::csr::{DirectedGraph, UndirectedGraph};
use graphmaze_graph::VertexId;
use graphmaze_metrics::RunReport;

use super::engine::{run, EngineConfig};
use super::gas::Gas;
use super::programs::{BfsProgram, PageRankProgram, BFS_UNREACHED};

/// GPS engine configuration: LALP hub splitting, combiners, a leaner
/// JVM runtime than Hadoop-hosted Giraph.
pub fn gps_config(max_supersteps: u32) -> EngineConfig {
    let profile = ExecProfile::gps();
    EngineConfig {
        profile,
        use_combiner: true,
        buffer_whole_superstep: false,
        superstep_splits: 1,
        per_message_overhead_bytes: profile.router.per_message_overhead_bytes,
        max_supersteps,
        replicate_hubs_factor: Some(8.0), // LALP
        compress_ids: profile.router.compress_ids,
        speculative_reexec: profile.speculative_reexec,
    }
}

/// GraphX engine configuration: plain 1-D vertex partitioning on Spark.
pub fn graphx_config(max_supersteps: u32) -> EngineConfig {
    let profile = ExecProfile::graphx();
    EngineConfig {
        profile,
        use_combiner: true,
        buffer_whole_superstep: false,
        superstep_splits: 1,
        per_message_overhead_bytes: profile.router.per_message_overhead_bytes,
        max_supersteps,
        replicate_hubs_factor: None,
        compress_ids: profile.router.compress_ids,
        speculative_reexec: profile.speculative_reexec,
    }
}

/// PageRank on GPS.
pub fn gps_pagerank(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let prog = PageRankProgram { r, iterations };
    let init = vec![1.0f64; g.num_vertices()];
    run(
        &g.out,
        None,
        &Gas(prog),
        init,
        vec![],
        true,
        &gps_config(iterations + 2),
        nodes,
        1,
    )
}

/// PageRank on GraphX.
pub fn graphx_pagerank(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let prog = PageRankProgram { r, iterations };
    let init = vec![1.0f64; g.num_vertices()];
    run(
        &g.out,
        None,
        &Gas(prog),
        init,
        vec![],
        true,
        &graphx_config(iterations + 2),
        nodes,
        1,
    )
}

/// BFS on GPS.
pub fn gps_bfs(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
) -> Result<(Vec<u32>, RunReport), SimError> {
    let mut init = vec![BFS_UNREACHED; g.num_vertices()];
    init[source as usize] = 0;
    let max = g.num_vertices() as u32 + 2;
    run(
        &g.adj,
        None,
        &Gas(BfsProgram),
        init,
        vec![(source, 0)],
        false,
        &gps_config(max),
        nodes,
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};
    use graphmaze_native::PAGERANK_R;

    fn graph(scale: u32, seed: u64) -> DirectedGraph {
        let el = rmat::generate(&RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        });
        DirectedGraph::from_edge_list(&el)
    }

    #[test]
    fn gps_and_graphx_match_native_results() {
        let g = graph(9, 81);
        let want = graphmaze_native::pagerank::pagerank(&g, PAGERANK_R, 4, 1);
        for (name, got) in [
            ("gps", gps_pagerank(&g, PAGERANK_R, 4, 4).unwrap().0),
            ("graphx", graphx_pagerank(&g, PAGERANK_R, 4, 4).unwrap().0),
        ] {
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gps_sits_between_giraph_and_the_studied_frameworks() {
        // §7: GPS ≈ 12x faster than Giraph, "comparable to that of the
        // frameworks studied (but much slower than native code)".
        let g = graph(11, 82);
        let (_, gps) = gps_pagerank(&g, PAGERANK_R, 3, 4).unwrap();
        let (_, giraph) = super::super::giraph::pagerank(&g, PAGERANK_R, 3, 4).unwrap();
        let (_, native) = graphmaze_native::pagerank::pagerank_cluster(
            &g,
            PAGERANK_R,
            3,
            graphmaze_native::NativeOptions::all(),
            4,
        )
        .unwrap();
        let vs_giraph = giraph.sim_seconds / gps.sim_seconds;
        assert!(
            vs_giraph > 4.0,
            "GPS should be much faster than Giraph, got {vs_giraph}x"
        );
        assert!(
            gps.sim_seconds > native.sim_seconds * 2.0,
            "but much slower than native"
        );
    }

    #[test]
    fn graphx_is_the_slow_end_of_the_non_giraph_spectrum() {
        // §7: GraphX ≈ 7x slower than GraphLab on pagerank.
        let g = graph(11, 83);
        let (_, graphx) = graphx_pagerank(&g, PAGERANK_R, 3, 4).unwrap();
        let (_, graphlab) = super::super::graphlab::pagerank(&g, PAGERANK_R, 3, 4).unwrap();
        // at unit-test scale Spark's fixed stage overhead dominates, so
        // only the ordering is asserted here; the `repro relatedwork`
        // artifact checks the ~7x band at extrapolated paper scale
        let ratio = graphx.sim_seconds / graphlab.sim_seconds;
        assert!(
            ratio > 2.0,
            "GraphX should be well behind GraphLab, got {ratio}x"
        );
    }

    #[test]
    fn gps_bfs_correct() {
        let el = rmat::generate(&RmatConfig {
            scale: 9,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed: 84,
            scramble_ids: false,
            threads: 1,
        });
        let mut el = el;
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let want = graphmaze_native::bfs::bfs(&g, 0, 1);
        let (got, _) = gps_bfs(&g, 0, 4).unwrap();
        assert_eq!(got, want);
    }
}
