//! Vertex programming — the "think like a vertex" model of GraphLab and
//! Giraph (paper §3, Algorithms 1 and 2).
//!
//! [`engine`] is the generic BSP vertex-program executor; [`gas`] is the
//! declarative gather–apply–scatter IR (plus the [`gas::Gas`] shim that
//! runs it on the imperative engine); [`programs`] holds the algorithms
//! written against the IR (exactly the pseudocode of the paper);
//! [`graphlab`] and [`giraph`] bind them to each framework's runtime
//! behaviour. `crate::graphmat` lowers the same IR onto the SpMV
//! backend instead.

pub mod engine;
pub mod gas;
pub mod giraph;
pub mod graphlab;
pub mod programs;
pub mod related;

pub use engine::{run, EngineConfig, VertexContext, VertexGraphView, VertexProgram};
pub use gas::{ApplyContext, Gas, GasProgram, GatherMode, Gathered};
