//! Vertex programming — the "think like a vertex" model of GraphLab and
//! Giraph (paper §3, Algorithms 1 and 2).
//!
//! [`engine`] is the generic BSP vertex-program executor; [`programs`]
//! holds the four algorithms written against it (exactly the pseudocode
//! of the paper); [`graphlab`] and [`giraph`] bind them to each
//! framework's runtime behaviour.

pub mod engine;
pub mod giraph;
pub mod graphlab;
pub mod programs;
pub mod related;

pub use engine::{run, EngineConfig, VertexContext, VertexGraphView, VertexProgram};
