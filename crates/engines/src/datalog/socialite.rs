//! The four algorithms as SociaLite programs (paper §3.1–3.2).
//!
//! Each function's doc comment quotes the actual rule(s) from the paper;
//! the body is the compiled evaluation: shard-local joins, batched head
//! transfers, aggregation — driven by [`SocialiteRuntime`].

use graphmaze_cluster::{Partition1D, SimError};
use graphmaze_graph::csr::{Csr, DirectedGraph, UndirectedGraph};
use graphmaze_graph::{RatingsGraph, VertexId};
use graphmaze_metrics::{RunReport, Work};

use super::eval::{Agg, SocialiteRuntime};
use super::table::{EdgeTable, VertexTable};

/// PageRank, using the paper's distributed-optimized rule:
///
/// ```text
/// RANK[n](t+1, $SUM(v)) :- v = r;
///   :- RANK[s](t, v0), OUTEDGE[s](n), OUTDEG[s](d), v = (1−r)·v0/d.
/// ```
///
/// "all join operations in the rule body are locally computed, and there
/// is only a single data transfer for the RANK table update in the rule
/// head."
pub fn pagerank(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
    optimized: bool,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let mut rt = SocialiteRuntime::new(nodes, optimized);
    let outedge = EdgeTable::new(g.out.clone(), nodes);
    // table storage: OUTEDGE shards + RANK + OUTDEG
    for node in 0..nodes {
        rt.sim().alloc(
            node,
            outedge.shard_bytes(node) + outedge.shards().len(node) as u64 * 16,
            "socialite:tables",
        )?;
    }
    let n = g.num_vertices();
    let shards = outedge.shards().clone();
    let mut rank = VertexTable::from_values(vec![1.0f64; n], shards.clone());
    rt.phase("rule:pagerank");
    for _ in 0..iterations {
        // body join, evaluated per shard of s
        let contribs: Vec<Vec<(VertexId, f64)>> = (0..nodes)
            .map(|node| {
                let range = shards.range(node);
                let mut out = Vec::new();
                for s in range.start..range.end {
                    let d = outedge.degree(s);
                    if d == 0 {
                        continue;
                    }
                    let v = (1.0 - r) * rank.get(s) / f64::from(d);
                    for &nbr in outedge.neighbors(s) {
                        out.push((nbr, v));
                    }
                }
                out
            })
            .collect();
        // first rule: RANK[n](t+1, v) :- v = r
        let mut next = VertexTable::from_values(vec![r; n], shards.clone());
        // scanning RANK + OUTDEG columns
        for node in 0..nodes {
            rt.sim()
                .charge(node, Work::stream(shards.len(node) as u64 * 16));
        }
        rt.apply_rule_f64(contribs, &mut next, Agg::Sum, 12);
        rank = next;
        rt.end_round()?;
        rt.end_iteration();
    }
    Ok((rank.into_values(), rt.finish()))
}

/// BFS as the paper's recursive rule, evaluated semi-naively:
///
/// ```text
/// BFS(t, $MIN(d)) :- t = SRC, d = 0
///   :- BFS(s, d0), EDGE(s, t), d = d0 + 1.
/// ```
pub fn bfs(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
    optimized: bool,
) -> Result<(Vec<u32>, RunReport), SimError> {
    let mut rt = SocialiteRuntime::new(nodes, optimized);
    let edge = EdgeTable::new(g.adj.clone(), nodes);
    for node in 0..nodes {
        rt.sim().alloc(
            node,
            edge.shard_bytes(node) + edge.shards().len(node) as u64 * 8,
            "socialite:tables",
        )?;
    }
    let n = g.num_vertices();
    let shards = edge.shards().clone();
    let mut dist = VertexTable::from_values(vec![f64::INFINITY; n], shards.clone());
    *dist.get_mut(source) = 0.0;
    let mut delta: Vec<VertexId> = vec![source];
    rt.phase("rule:bfs-delta");
    while !delta.is_empty() {
        // join the delta with EDGE, grouped by producing shard
        let mut contribs: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); nodes];
        for &s in &delta {
            let d0 = *dist.get(s);
            let shard = shards.owner(s);
            for &t in edge.neighbors(s) {
                contribs[shard].push((t, d0 + 1.0));
            }
        }
        delta = rt.apply_rule_f64(contribs, &mut dist, Agg::Min, 12);
        rt.end_round()?;
    }
    rt.end_iteration();
    let out = dist
        .into_values()
        .into_iter()
        .map(|d| if d.is_finite() { d as u32 } else { u32::MAX })
        .collect();
    Ok((out, rt.finish()))
}

/// Triangle counting as the paper's three-way join:
///
/// ```text
/// TRIANGLE(0, $INC(1)) :- EDGE(x, y), EDGE(y, z), EDGE(x, z).
/// ```
///
/// Evaluated with `EDGE` sharded on its first column: the `EDGE(y, z)`
/// lists for remote `y` are shipped to `x`'s shard once per shard
/// (tail-nested tables keep them contiguous), then the `z` join is a
/// sorted intersection. The paper finds SociaLite the **best** non-native
/// framework for multi-node TC.
pub fn triangles(
    oriented: &Csr,
    nodes: usize,
    optimized: bool,
) -> Result<(u64, RunReport), SimError> {
    let mut rt = SocialiteRuntime::new(nodes, optimized);
    let edge = EdgeTable::new(oriented.clone(), nodes);
    for node in 0..nodes {
        rt.sim()
            .alloc(node, edge.shard_bytes(node), "socialite:tables")?;
    }
    let shards = edge.shards().clone();
    rt.phase("rule:tc-join");
    // ship EDGE[y] lists needed by each shard (dedup per shard)
    for node in 0..nodes {
        let range = shards.range(node);
        let mut needed: Vec<VertexId> = (range.start..range.end)
            .flat_map(|x| edge.neighbors(x).iter().copied())
            .filter(|&y| shards.owner(y) != node)
            .collect();
        needed.sort_unstable();
        needed.dedup();
        let mut inbound = 0u64;
        let mut per_owner = vec![0u64; nodes];
        for y in needed {
            per_owner[shards.owner(y)] += 4 + edge.degree(y) as u64 * 4;
        }
        for (owner, &bytes) in per_owner.iter().enumerate() {
            if bytes > 0 {
                rt.send(owner, node, bytes, bytes);
                inbound += bytes;
            }
        }
        rt.sim().alloc(node, inbound, "socialite:joined-lists")?;
        rt.sim().free(node, inbound);
    }
    // the z-join, per shard of x
    let mut count = 0u64;
    for node in 0..nodes {
        let range = shards.range(node);
        let mut stream = 0u64;
        let mut local = 0u64;
        for x in range.start..range.end {
            let nx = edge.neighbors(x);
            for &y in nx {
                let ny = edge.neighbors(y);
                stream += (nx.len() + ny.len()) as u64 * 4;
                let (mut i, mut j) = (0, 0);
                while i < nx.len() && j < ny.len() {
                    match nx[i].cmp(&ny[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            local += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        count += local;
        rt.sim().charge(
            node,
            Work {
                seq_bytes: stream,
                rand_accesses: 0,
                flops: stream / 4,
            },
        );
        // TRIANGLE(0, $INC(1)) head updates reduce to one counter per shard
        if node != 0 {
            rt.send_now(node, 0, 8, 8);
        }
    }
    rt.end_round()?;
    rt.end_iteration();
    Ok((count, rt.finish()))
}

/// Collaborative filtering by alternating GD over `P`/`Q`/`RATING`
/// tables (§3.2): "SociaLite stores the length-K vectors for users and
/// items in separate tables. These tables are joined together with the
/// rating table ... it is helpful to transfer the tables to target
/// machines in the beginning of each iteration, so that the rest of the
/// computations do not involve any communication."
#[allow(clippy::too_many_arguments)]
pub fn cf_gd(
    g: &RatingsGraph,
    k: usize,
    lambda: f64,
    gamma: f64,
    iterations: u32,
    nodes: usize,
    optimized: bool,
) -> Result<(Vec<f64>, Vec<f64>, RunReport), SimError> {
    let mut rt = SocialiteRuntime::new(nodes, optimized);
    let nu = g.num_users() as usize;
    let nv = g.num_items() as usize;
    let user_shards = Partition1D::balanced_by_vertices(nu, nodes);
    let item_shards = Partition1D::balanced_by_vertices(nv, nodes);
    let triples = g.triples();
    for node in 0..nodes {
        let ratings_here = triples
            .iter()
            .filter(|&&(u, _, _)| user_shards.owner(u) == node)
            .count() as u64;
        rt.sim().alloc(
            node,
            (user_shards.len(node) + item_shards.len(node)) as u64 * k as u64 * 8
                + ratings_here * 12,
            "socialite:tables",
        )?;
    }
    let init = |i: usize, j: usize, salt: u64| -> f64 {
        let x = (i as u64 * 131 + j as u64 + salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (x >> 11) as f64 / (1u64 << 53) as f64 * 0.1
    };
    let mut p: Vec<f64> = (0..nu * k).map(|i| init(i / k, i % k, 1)).collect();
    let mut q: Vec<f64> = (0..nv * k).map(|i| init(i / k, i % k, 2)).collect();
    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };

    // which Q rows each user shard joins with (fixed across iterations)
    let mut q_needed_bytes = vec![0u64; nodes];
    for node in 0..nodes {
        let mut items: Vec<VertexId> = triples
            .iter()
            .filter(|&&(u, _, _)| user_shards.owner(u) == node)
            .map(|&(_, v, _)| v)
            .filter(|&v| item_shards.owner(v) != node)
            .collect();
        items.sort_unstable();
        items.dedup();
        q_needed_bytes[node] = items.len() as u64 * (4 + k as u64 * 8);
    }

    rt.phase("gd:rules");
    for _ in 0..iterations {
        // beginning-of-iteration table transfer: Q rows to user shards
        for node in 0..nodes {
            if q_needed_bytes[node] > 0 {
                // sent by the item shards; charge senders evenly
                let per = q_needed_bytes[node] / (nodes as u64 - 1).max(1);
                for src in 0..nodes {
                    if src != node {
                        rt.send(src, node, per, per);
                    }
                }
            }
        }
        // local join: gradient accumulation (eq. 12 then eq. 11)
        let mut grad_q = vec![0.0f64; nv * k];
        let mut grad_p = vec![0.0f64; nu * k];
        for node in 0..nodes {
            let mut local_ratings = 0u64;
            for &(u, v, r) in &triples {
                if user_shards.owner(u) != node {
                    continue;
                }
                local_ratings += 1;
                let pu = &p[u as usize * k..(u as usize + 1) * k];
                let qv = &q[v as usize * k..(v as usize + 1) * k];
                let e = f64::from(r) - dot(pu, qv);
                for i in 0..k {
                    grad_q[v as usize * k + i] += e * pu[i] - lambda * qv[i];
                    grad_p[u as usize * k + i] += e * qv[i] - lambda * pu[i];
                }
            }
            rt.sim().charge(
                node,
                Work {
                    seq_bytes: local_ratings * (12 + 4 * k as u64 * 8),
                    rand_accesses: local_ratings * 2,
                    flops: local_ratings * 10 * k as u64,
                },
            );
        }
        // ship aggregated Q-gradients back to item shards
        for node in 0..nodes {
            if q_needed_bytes[node] > 0 {
                let peers: Vec<usize> = (0..nodes).filter(|&p| p != node).collect();
                rt.scatter(node, &peers, q_needed_bytes[node], q_needed_bytes[node]);
            }
        }
        for (qi, gi) in q.iter_mut().zip(&grad_q) {
            *qi += gamma * gi;
        }
        for (pi, gi) in p.iter_mut().zip(&grad_p) {
            *pi += gamma * gi;
        }
        rt.end_round()?;
        rt.end_iteration();
    }
    Ok((p, q, rt.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_datagen::ratings::{self, RatingsGenConfig};
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};
    use graphmaze_native::triangle::orient_and_sort;
    use graphmaze_native::PAGERANK_R;

    fn rmat_el(scale: u32, seed: u64) -> graphmaze_graph::EdgeList {
        rmat::generate(&RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        })
    }

    #[test]
    fn pagerank_matches_native() {
        let el = rmat_el(9, 51);
        let g = DirectedGraph::from_edge_list(&el);
        let want = graphmaze_native::pagerank::pagerank(&g, PAGERANK_R, 5, 2);
        let (got, rep) = pagerank(&g, PAGERANK_R, 5, 4, true).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(rep.traffic.bytes_sent > 0);
    }

    #[test]
    fn bfs_matches_native() {
        let mut el = rmat_el(9, 52);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let want = graphmaze_native::bfs::bfs(&g, 0, 2);
        let (got, _) = bfs(&g, 0, 4, true).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn triangles_match_native() {
        let el = rmat_el(9, 53);
        let oriented = orient_and_sort(&el);
        let want = graphmaze_native::triangle::triangles(&oriented, 2);
        let (got, _) = triangles(&oriented, 4, true).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn network_optimization_speeds_up_pagerank() {
        // Table 7: the multi-socket fix gives ~2.4x on 4-node PageRank.
        // Needs a network-bound configuration: enough edges per node that
        // the per-iteration rank transfer dwarfs the 1 ms round barrier.
        let el = rmat::generate(&RmatConfig {
            scale: 13,
            edge_factor: 16,
            params: RmatParams::GRAPH500,
            seed: 54,
            scramble_ids: false,
            threads: 1,
        });
        let g = DirectedGraph::from_edge_list(&el);
        let (_, before) = pagerank(&g, PAGERANK_R, 3, 4, false).unwrap();
        let (_, after) = pagerank(&g, PAGERANK_R, 3, 4, true).unwrap();
        let speedup = before.sim_seconds / after.sim_seconds;
        assert!(speedup > 1.3, "speedup {speedup}");
    }

    #[test]
    fn cf_gd_reduces_rmse() {
        let g = ratings::generate(&RatingsGenConfig {
            scale: 8,
            edge_factor: 8,
            num_items: 32,
            min_degree: 3,
            seed: 55,
        });
        let k = 4;
        let (p, q, rep) = cf_gd(&g, k, 0.05, 0.005, 10, 4, true).unwrap();
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let mut sse = 0.0;
        for (u, v, r) in g.triples() {
            let e = f64::from(r)
                - dot(
                    &p[u as usize * k..(u as usize + 1) * k],
                    &q[v as usize * k..(v as usize + 1) * k],
                );
            sse += e * e;
        }
        let rmse = (sse / g.num_ratings() as f64).sqrt();
        assert!(rmse < 3.0, "rmse {rmse}");
        assert!(rep.traffic.bytes_sent > 0);
    }
}
