//! Datalog over sharded tables — the SociaLite model (paper §3).
//!
//! "In SociaLite, the graph and its meta data is stored in tables, and
//! declarative rules are written to implement graph algorithms.
//! SociaLite tables are horizontally partitioned, or sharded ... the
//! runtime partitions and distributes the tables accordingly."
//!
//! [`table`] implements sharded vertex tables and tail-nested edge
//! tables (the paper's CSR-equivalent); [`eval`] the distributed rule
//! evaluation primitives (local joins + batched head-table transfers +
//! aggregation); [`socialite`] the four algorithms, each documented with
//! the actual SociaLite rules from the paper.

pub mod eval;
pub mod program;
pub mod socialite;
pub mod table;

pub use eval::{Agg, SocialiteRuntime};
pub use program::{eval_recursive, eval_rule, Rule, ValueExpr};
pub use table::{EdgeTable, VertexTable};
