//! Distributed rule evaluation primitives.
//!
//! A SociaLite rule `HEAD[n](AGG(v)) :- BODY...` evaluates as: each shard
//! joins the body tables locally (they are co-sharded on the join key),
//! producing `(head_vertex, contribution)` tuples; tuples whose head
//! vertex lives on another shard are shipped there ("there is only a
//! single data transfer for the RANK table update in the rule head"),
//! batched per destination (a §6.1.3 optimization); the receiving shard
//! folds them into the head table with the aggregation operator.

use graphmaze_cluster::{ClusterSpec, ExecProfile, Router, Sim, SimError};
use graphmaze_graph::VertexId;
use graphmaze_metrics::{RunReport, Work};

use super::table::VertexTable;

/// SociaLite head aggregations used by the paper's programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Agg {
    /// `$SUM(v)` — arithmetic sum.
    Sum,
    /// `$MIN(v)` — minimum (recursive rules keep deltas).
    Min,
    /// `$INC(1)` — counter increment.
    Inc,
}

/// The SociaLite runtime: shards map 1:1 onto simulated cluster nodes.
/// All cross-shard traffic flows through the runtime's [`Router`], whose
/// flush policy comes from the profile: per-message eager sends before
/// the §6.1.3 network optimization, per-round batching after — Table 7's
/// before/after is exactly this profile swap.
pub struct SocialiteRuntime {
    sim: Sim,
    router: Router,
    nodes: usize,
}

impl SocialiteRuntime {
    /// Creates a runtime on `nodes` nodes. `optimized` selects the
    /// post-§6.1.3 network stack (multiple sockets + batched sends);
    /// `false` reproduces the published code's single ~0.5 GB/s socket
    /// with a send per message (Table 7's "Before" column).
    pub fn new(nodes: usize, optimized: bool) -> Self {
        let profile = if optimized {
            ExecProfile::socialite()
        } else {
            ExecProfile::socialite_unoptimized()
        };
        SocialiteRuntime {
            sim: Sim::new(ClusterSpec::paper(nodes), profile),
            router: Router::new(nodes, &profile),
            nodes,
        }
    }

    /// Number of shards/nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Direct simulator access for table allocations.
    pub fn sim(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Routes `wire`/`raw` bytes from shard `src` to shard `dst` under
    /// the profile's flush policy.
    pub fn send(&mut self, src: usize, dst: usize, wire_bytes: u64, raw_bytes: u64) {
        self.router
            .send(&mut self.sim, src, dst, wire_bytes, raw_bytes);
    }

    /// Immediate control-plane transfer (counters, convergence votes).
    pub fn send_now(&mut self, src: usize, dst: usize, wire_bytes: u64, raw_bytes: u64) {
        self.router
            .send_now(&mut self.sim, src, dst, wire_bytes, raw_bytes);
    }

    /// Splits a bulk transfer from `src` across `dsts`, preserving exact
    /// byte totals.
    pub fn scatter(&mut self, src: usize, dsts: &[usize], wire_total: u64, raw_total: u64) {
        self.router
            .scatter(&mut self.sim, src, dsts, wire_total, raw_total);
    }

    /// Labels the rounds evaluated from now on in the trace timeline
    /// (typically the rule being applied).
    pub fn phase(&mut self, label: &str) {
        self.sim.phase(label);
    }

    /// Evaluates one rule application: `contribs` are the locally joined
    /// `(head_vertex, value)` tuples *per producing shard*; they are
    /// shipped to the head vertex's shard (batched, one message per shard
    /// pair) and folded into `head` with `agg`. Returns the set of head
    /// vertices whose value changed (the semi-naive delta).
    ///
    /// `tuple_bytes` is the wire size per tuple (vertex id + payload).
    pub fn apply_rule_f64(
        &mut self,
        contribs: Vec<Vec<(VertexId, f64)>>,
        head: &mut VertexTable<f64>,
        agg: Agg,
        tuple_bytes: u64,
    ) -> Vec<VertexId> {
        assert_eq!(
            contribs.len(),
            self.nodes,
            "one contribution list per shard"
        );
        let mut delta = Vec::new();
        // meter shipping: per (src shard, dst shard) batch
        for (src, tuples) in contribs.iter().enumerate() {
            let mut per_dst = vec![0u64; self.nodes];
            for &(h, _) in tuples {
                per_dst[head.shard_of(h)] += 1;
            }
            for (dst, &count) in per_dst.iter().enumerate() {
                if dst != src && count > 0 {
                    let bytes = count * tuple_bytes;
                    self.router.send(&mut self.sim, src, dst, bytes, bytes);
                }
            }
            // the join + head update cost: stream tuples, one hash probe
            // per tuple (the "locks must be held for every update" cost
            // shows as a random access per remote-head tuple)
            self.sim.charge(
                src,
                Work {
                    seq_bytes: tuples.len() as u64 * tuple_bytes,
                    rand_accesses: tuples.len() as u64,
                    flops: tuples.len() as u64 * 2,
                },
            );
        }
        // fold (real computation)
        for tuples in contribs {
            for (h, v) in tuples {
                let cur = head.get_mut(h);
                let new = match agg {
                    Agg::Sum => *cur + v,
                    Agg::Min => cur.min(v),
                    Agg::Inc => *cur + 1.0,
                };
                if new != *cur {
                    *cur = new;
                    delta.push(h);
                }
            }
        }
        delta.sort_unstable();
        delta.dedup();
        delta
    }

    /// Ends one evaluation round (BSP barrier): batched traffic is
    /// flushed to the wire, then the step closes. Fails when the fault
    /// plan kills a node during the round (SociaLite fail-stops).
    pub fn end_round(&mut self) -> Result<(), SimError> {
        self.router.flush(&mut self.sim);
        self.sim.end_step()
    }

    /// Marks an algorithm iteration.
    pub fn end_iteration(&mut self) {
        self.sim.end_iteration();
    }

    /// Finalizes into a run report.
    pub fn finish(self) -> RunReport {
        self.sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_cluster::Partition1D;
    use graphmaze_graph::csr::Csr;

    fn runtime_and_table(nodes: usize) -> (SocialiteRuntime, VertexTable<f64>) {
        let csr = Csr::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7)]);
        let shards = Partition1D::balanced_by_edges(&csr, nodes);
        (
            SocialiteRuntime::new(nodes, true),
            VertexTable::new(8, 0.0, shards),
        )
    }

    #[test]
    fn sum_aggregation_folds_and_reports_delta() {
        let (mut rt, mut head) = runtime_and_table(2);
        let contribs = vec![vec![(0u32, 1.5), (7, 2.0)], vec![(7, 3.0)]];
        let delta = rt.apply_rule_f64(contribs, &mut head, Agg::Sum, 12);
        assert_eq!(delta, vec![0, 7]);
        assert_eq!(*head.get(7), 5.0);
        rt.end_round().unwrap();
        let rep = rt.finish();
        assert!(rep.traffic.bytes_sent > 0, "cross-shard tuples must ship");
    }

    #[test]
    fn min_aggregation_keeps_minimum() {
        let (mut rt, mut head) = runtime_and_table(1);
        *head.get_mut(3) = 10.0;
        let d1 = rt.apply_rule_f64(vec![vec![(3, 4.0)]], &mut head, Agg::Min, 12);
        assert_eq!(d1, vec![3]);
        let d2 = rt.apply_rule_f64(vec![vec![(3, 9.0)]], &mut head, Agg::Min, 12);
        assert!(d2.is_empty(), "no improvement, no delta");
        assert_eq!(*head.get(3), 4.0);
    }

    #[test]
    fn inc_counts() {
        let (mut rt, mut head) = runtime_and_table(1);
        rt.apply_rule_f64(
            vec![vec![(1, 0.0), (1, 0.0), (1, 0.0)]],
            &mut head,
            Agg::Inc,
            4,
        );
        assert_eq!(*head.get(1), 3.0);
    }

    #[test]
    fn unoptimized_runtime_has_lower_peak_bandwidth() {
        let csr = Csr::from_edges(4, &[(0, 3)]);
        let shards = Partition1D::balanced_by_edges(&csr, 2);
        let run = |optimized: bool| -> f64 {
            let mut rt = SocialiteRuntime::new(2, optimized);
            let mut head = VertexTable::new(4, 0.0, shards.clone());
            let tuples: Vec<(u32, f64)> = (0..100_000).map(|_| (3u32, 1.0)).collect();
            rt.apply_rule_f64(vec![tuples, vec![]], &mut head, Agg::Sum, 12);
            rt.end_round().unwrap();
            rt.finish().traffic.peak_bw_bps
        };
        let fast = run(true);
        let slow = run(false);
        assert!(fast > slow, "{fast} !> {slow}");
    }
}
