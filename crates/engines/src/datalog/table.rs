//! Sharded tables.
//!
//! * [`VertexTable`] — a `vertex → value` column, horizontally sharded
//!   over cluster nodes by a 1-D partition (SociaLite supports only 1-D,
//!   §3/Table 2).
//! * [`EdgeTable`] — a *tail-nested* table `[v](neighbor)`: the paper
//!   notes this "effectively implement\[s\] a CSR format used in the
//!   native implementation and CombBLAS".

use graphmaze_cluster::Partition1D;
use graphmaze_graph::csr::Csr;
use graphmaze_graph::VertexId;

/// A sharded single-column vertex table.
#[derive(Clone, Debug)]
pub struct VertexTable<T> {
    values: Vec<T>,
    shards: Partition1D,
}

impl<T: Clone> VertexTable<T> {
    /// Creates a table of `n` rows initialized to `init`, sharded to
    /// match `shards`.
    pub fn new(n: usize, init: T, shards: Partition1D) -> Self {
        VertexTable {
            values: vec![init; n],
            shards,
        }
    }

    /// Creates from existing values.
    pub fn from_values(values: Vec<T>, shards: Partition1D) -> Self {
        VertexTable { values, shards }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of vertex `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> &T {
        &self.values[v as usize]
    }

    /// Mutable value of vertex `v`.
    #[inline]
    pub fn get_mut(&mut self, v: VertexId) -> &mut T {
        &mut self.values[v as usize]
    }

    /// Shard (node) owning vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.shards.owner(v)
    }

    /// The shard partition.
    pub fn shards(&self) -> &Partition1D {
        &self.shards
    }

    /// All values (test/inspection use).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Consumes into the value vector.
    pub fn into_values(self) -> Vec<T> {
        self.values
    }
}

/// A tail-nested edge table: `EDGE[v](n)` stored CSR-style, sharded by
/// head vertex.
#[derive(Clone, Debug)]
pub struct EdgeTable {
    csr: Csr,
    shards: Partition1D,
}

impl EdgeTable {
    /// Builds from a CSR, sharding by balanced edge count over `nodes`.
    pub fn new(csr: Csr, nodes: usize) -> Self {
        let shards = Partition1D::balanced_by_edges(&csr, nodes);
        EdgeTable { csr, shards }
    }

    /// The nested neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.csr.degree(v)
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Edge count.
    pub fn num_edges(&self) -> u64 {
        self.csr.num_edges()
    }

    /// Shard (node) owning head vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.shards.owner(v)
    }

    /// The shard partition.
    pub fn shards(&self) -> &Partition1D {
        &self.shards
    }

    /// The underlying CSR.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Bytes of storage for shard `node` (offsets + nested arrays).
    pub fn shard_bytes(&self, node: usize) -> u64 {
        self.shards.edges_of(&self.csr, node) * 4 + self.shards.len(node) as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_table_shard_lookup() {
        let csr = Csr::from_edges(10, &[(0, 1), (5, 6), (9, 0)]);
        let shards = Partition1D::balanced_by_edges(&csr, 2);
        let mut t = VertexTable::new(10, 0i64, shards);
        *t.get_mut(5) = 42;
        assert_eq!(*t.get(5), 42);
        assert_eq!(t.len(), 10);
        let owner = t.shard_of(5);
        assert!(owner < 2);
    }

    #[test]
    fn edge_table_is_tail_nested_csr() {
        let csr = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3)]);
        let t = EdgeTable::new(csr, 2);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.degree(1), 1);
        assert_eq!(t.num_edges(), 3);
        assert!(t.shard_bytes(0) > 0);
    }
}
