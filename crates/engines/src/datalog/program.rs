//! A small Datalog rule language — SociaLite programs as *data*.
//!
//! The paper writes its SociaLite programs as rules like
//!
//! ```text
//! RANK[n](t+1, $SUM(v)) :- RANK[s](t, v0), OUTEDGE[s](n), OUTDEG[s](d),
//!                          v = (1−r)·v0/d.
//! BFS(t, $MIN(d)) :- BFS(s, d0), EDGE(s, t), d = d0 + 1.
//! ```
//!
//! [`Rule`] captures exactly this shape — a vertex-value table joined
//! with a tail-nested edge table on the shared variable `s`, a value
//! expression over the bound variables, and a head aggregation — and
//! [`eval_rule`] evaluates it with the distributed semantics of
//! [`SocialiteRuntime`] (shard-local joins, batched head transfer,
//! aggregation). Semi-naive recursion is [`eval_recursive`].

use graphmaze_cluster::SimError;
use graphmaze_graph::VertexId;

use super::eval::{Agg, SocialiteRuntime};
use super::table::{EdgeTable, VertexTable};

/// The value expression in a rule body: how the contribution `v` is
/// computed from the bound source value `v0` and source degree `d`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueExpr {
    /// `v = v0 + c` (BFS: `d = d0 + 1`).
    SrcPlus(f64),
    /// `v = factor · v0 / d` (PageRank: `v = (1−r)·v0/d`).
    ScaledByDegree {
        /// The multiplicative constant (e.g. `1 − r`).
        factor: f64,
    },
    /// `v = c` regardless of bindings (head initializers).
    Const(f64),
}

impl ValueExpr {
    /// Evaluates the expression for source value `v0` and degree `d`.
    #[inline]
    pub fn eval(&self, v0: f64, d: u32) -> f64 {
        match *self {
            ValueExpr::SrcPlus(c) => v0 + c,
            ValueExpr::ScaledByDegree { factor } => {
                if d == 0 {
                    0.0
                } else {
                    factor * v0 / f64::from(d)
                }
            }
            ValueExpr::Const(c) => c,
        }
    }
}

/// A rule `HEAD[t](AGG(v)) :- SRC[s](v0), EDGE[s](t), v = expr(v0, d)`.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Head aggregation (`$SUM`, `$MIN`, `$INC`).
    pub agg: Agg,
    /// The value expression.
    pub expr: ValueExpr,
    /// Wire bytes per shipped head tuple (vertex id + payload).
    pub tuple_bytes: u64,
}

/// Evaluates `rule` once over the full source table: every row of `src`
/// joins with its `edges` neighbors; contributions fold into `head`.
/// Returns the delta (head vertices whose value changed).
pub fn eval_rule(
    rt: &mut SocialiteRuntime,
    rule: &Rule,
    src: &VertexTable<f64>,
    edges: &EdgeTable,
    head: &mut VertexTable<f64>,
) -> Vec<VertexId> {
    let nodes = rt.nodes();
    let shards = edges.shards().clone();
    let contribs: Vec<Vec<(VertexId, f64)>> = (0..nodes)
        .map(|node| {
            let range = shards.range(node);
            let mut out = Vec::new();
            for s in range.start..range.end {
                let d = edges.degree(s);
                if d == 0 {
                    continue;
                }
                let v = rule.expr.eval(*src.get(s), d);
                for &t in edges.neighbors(s) {
                    out.push((t, v));
                }
            }
            out
        })
        .collect();
    rt.apply_rule_f64(contribs, head, rule.agg, rule.tuple_bytes)
}

/// Semi-naive recursive evaluation: only rows in `delta` re-join each
/// round, until no head value changes. One BSP round per iteration.
/// Returns the number of rounds executed.
pub fn eval_recursive(
    rt: &mut SocialiteRuntime,
    rule: &Rule,
    edges: &EdgeTable,
    head: &mut VertexTable<f64>,
    mut delta: Vec<VertexId>,
) -> Result<u32, SimError> {
    let shards = edges.shards().clone();
    let nodes = rt.nodes();
    let mut rounds = 0;
    while !delta.is_empty() {
        rounds += 1;
        let mut contribs: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); nodes];
        for &s in &delta {
            let d = edges.degree(s);
            if d == 0 {
                continue;
            }
            let v = rule.expr.eval(*head.get(s), d);
            let shard = shards.owner(s);
            for &t in edges.neighbors(s) {
                contribs[shard].push((t, v));
            }
        }
        delta = rt.apply_rule_f64(contribs, head, rule.agg, rule.tuple_bytes);
        rt.end_round()?;
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_graph::csr::Csr;

    fn fig2_edges(nodes: usize) -> EdgeTable {
        EdgeTable::new(graphmaze_graph::fixtures::fig2_csr(), nodes)
    }

    #[test]
    fn value_expr_semantics() {
        assert_eq!(ValueExpr::SrcPlus(1.0).eval(3.0, 7), 4.0);
        assert_eq!(ValueExpr::ScaledByDegree { factor: 0.7 }.eval(2.0, 2), 0.7);
        assert_eq!(ValueExpr::ScaledByDegree { factor: 0.7 }.eval(2.0, 0), 0.0);
        assert_eq!(ValueExpr::Const(0.3).eval(99.0, 5), 0.3);
    }

    #[test]
    fn pagerank_rule_one_iteration_on_fig2() {
        // RANK[n](t+1, $SUM(v)) :- RANK[s](t,v0), OUTEDGE[s](n),
        //                          OUTDEG[s](d), v = (1−r)v0/d,
        // with first rule RANK[n] = r. One application from pr=1 must give
        // [0.3, 0.65, 1.0, 1.35] (the Fig 2 hand computation).
        let mut rt = SocialiteRuntime::new(2, true);
        let edges = fig2_edges(2);
        let shards = edges.shards().clone();
        let src = VertexTable::from_values(vec![1.0; 4], shards.clone());
        let mut head = VertexTable::from_values(vec![0.3; 4], shards);
        let rule = Rule {
            agg: Agg::Sum,
            expr: ValueExpr::ScaledByDegree { factor: 0.7 },
            tuple_bytes: 12,
        };
        eval_rule(&mut rt, &rule, &src, &edges, &mut head);
        rt.end_round().unwrap();
        let got = head.into_values();
        let want = [0.3, 0.65, 1.0, 1.35];
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let rep = rt.finish();
        assert!(
            rep.traffic.bytes_sent > 0,
            "cross-shard head updates must ship"
        );
    }

    #[test]
    fn bfs_rule_recursive_on_path() {
        // BFS(t, $MIN(d)) :- BFS(s, d0), EDGE(s, t), d = d0 + 1.
        let csr = Csr::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        let edges = EdgeTable::new(csr, 2);
        let shards = edges.shards().clone();
        let mut rt = SocialiteRuntime::new(2, true);
        let mut head = VertexTable::from_values(vec![f64::INFINITY; 5], shards);
        *head.get_mut(0) = 0.0;
        let rule = Rule {
            agg: Agg::Min,
            expr: ValueExpr::SrcPlus(1.0),
            tuple_bytes: 12,
        };
        let rounds = eval_recursive(&mut rt, &rule, &edges, &mut head, vec![0]).unwrap();
        assert_eq!(rounds, 4, "3 propagation rounds + 1 empty check round");
        assert_eq!(head.values(), &[0.0, 1.0, 2.0, 3.0, f64::INFINITY]);
    }

    #[test]
    fn recursion_terminates_on_cycles() {
        // a 3-cycle: min-distance propagation must reach a fixpoint
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let edges = EdgeTable::new(csr, 1);
        let shards = edges.shards().clone();
        let mut rt = SocialiteRuntime::new(1, true);
        let mut head = VertexTable::from_values(vec![f64::INFINITY; 3], shards);
        *head.get_mut(0) = 0.0;
        let rule = Rule {
            agg: Agg::Min,
            expr: ValueExpr::SrcPlus(1.0),
            tuple_bytes: 12,
        };
        let rounds = eval_recursive(&mut rt, &rule, &edges, &mut head, vec![0]).unwrap();
        assert!(rounds <= 4);
        assert_eq!(head.values(), &[0.0, 1.0, 2.0]);
    }
}
