//! The four algorithms in the Galois task model (paper §3.1–3.2,
//! Algorithms 3 and 4).

use graphmaze_cluster::{ClusterSpec, ExecProfile, Sim, SimError};
use graphmaze_graph::csr::{Csr, DirectedGraph, UndirectedGraph};
use graphmaze_graph::{RatingsGraph, VertexId};
use graphmaze_metrics::{RunReport, Work};
use graphmaze_native::cf::{self, CfConfig, DiagonalBlocks, Factors};

use super::executor::{for_each_parallel, BulkSyncExecutor};

/// Galois has no multi-node implementation (Table 2): any `nodes > 1`
/// request is an [`SimError::InvalidConfig`].
fn single_node_sim(nodes: usize) -> Result<Sim, SimError> {
    if nodes != 1 {
        return Err(SimError::InvalidConfig(format!(
            "Galois is a single-node framework (requested {nodes} nodes)"
        )));
    }
    Ok(Sim::new(ClusterSpec::single(), ExecProfile::galois()))
}

/// PageRank: "each work item in Galois is a vertex program for updating
/// its pagerank" (§3.1); with shared memory every task reads the full
/// rank array directly.
pub fn pagerank(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let mut sim = single_node_sim(nodes)?;
    let n = g.num_vertices();
    sim.alloc(0, g.inn.byte_size() + n as u64 * 24, "galois:graph+ranks")?;
    let mut ranks = vec![1.0f64; n];
    let mut scaled = vec![0.0f64; n];
    sim.phase("task:pr");
    for _ in 0..iterations {
        for i in 0..n {
            let d = g.out.degree(i as VertexId);
            scaled[i] = if d == 0 { 0.0 } else { ranks[i] / f64::from(d) };
        }
        let scaled_ref = &scaled;
        let next: Vec<f64> = (0..n)
            .map(|i| {
                let acc: f64 = g
                    .inn
                    .neighbors(i as VertexId)
                    .iter()
                    .map(|&j| scaled_ref[j as usize])
                    .sum();
                r + (1.0 - r) * acc
            })
            .collect();
        ranks = next;
        let mut w = Work {
            seq_bytes: g.inn.num_edges() * 4 + n as u64 * 24,
            rand_accesses: g.inn.num_edges(),
            flops: g.inn.num_edges() * 2,
        };
        // per-task scheduling overhead: one enqueue/dequeue per vertex
        w.accumulate(Work::random(n as u64 / 4));
        sim.charge(0, w);
        sim.end_step()?;
        sim.end_iteration();
    }
    Ok((ranks, sim.finish()))
}

/// BFS — Algorithm 3, verbatim structure:
///
/// ```text
/// worklist[0] = src
/// while NOT worklist[i].empty():
///   foreach (n : worklist[i]) in parallel:
///     for dst : G.neighbors(n):
///       if dst.level == ∞: dst.level = n.level + 1; worklist[i+1].add(dst)
/// ```
pub fn bfs(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
) -> Result<(Vec<u32>, RunReport), SimError> {
    let mut sim = single_node_sim(nodes)?;
    let n = g.num_vertices();
    sim.alloc(0, g.adj.byte_size() + n as u64 * 4, "galois:graph+levels")?;
    let mut level = vec![u32::MAX; n];
    level[source as usize] = 0;
    let mut ex = BulkSyncExecutor::new(vec![source]);
    // charge each level at its barrier — the executor "maintains the
    // work lists for each level behind the scenes" (§3.2)
    let scanned_edges = std::cell::Cell::new(0u64);
    let mut per_level: Vec<(u64, u64)> = Vec::new(); // (edges, items)
    ex.run_with_barrier(
        |&u, push| {
            let lvl = level[u as usize];
            for &dst in g.adj.neighbors(u) {
                scanned_edges.set(scanned_edges.get() + 1);
                if level[dst as usize] == u32::MAX {
                    level[dst as usize] = lvl + 1;
                    push.push(dst);
                }
            }
        },
        |items| {
            per_level.push((scanned_edges.replace(0), items));
        },
    );
    sim.phase("task:bfs-level");
    for (edges, items) in per_level {
        sim.charge(
            0,
            Work {
                seq_bytes: edges * 4,
                rand_accesses: edges + items,
                flops: edges,
            },
        );
        sim.end_step()?;
    }
    sim.end_iteration();
    Ok((level, sim.finish()))
}

/// Triangle counting — Algorithm 4: "computing set-intersection of
/// neighbors of a node with neighbors of neighbors. We sort the
/// adjacency list of each node by node-id, which allows computing
/// set-intersections in linear time."
pub fn triangles(oriented: &Csr, nodes: usize) -> Result<(u64, RunReport), SimError> {
    let mut sim = single_node_sim(nodes)?;
    debug_assert!(oriented.neighbors_sorted());
    sim.alloc(0, oriented.byte_size(), "galois:graph")?;
    let n = oriented.num_vertices();
    let count = for_each_parallel(
        n,
        graphmaze_graph::par::default_threads().min(8),
        || 0u64,
        |u, acc| {
            let s1 = oriented.neighbors(u as VertexId);
            for &m in s1 {
                let s2 = oriented.neighbors(m);
                let (mut i, mut j) = (0, 0);
                while i < s1.len() && j < s2.len() {
                    match s1[i].cmp(&s2[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            *acc += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        },
        |a, b| a + b,
    );
    // intersection streams both lists per oriented edge; Algorithm 4
    // also materializes the filtered set S1 per task and pays a work-item
    // dispatch per vertex (Galois has no hub-specific data structure, so
    // unlike native it always merges — §3.2)
    let mut stream: u64 = 0;
    let mut s1_bytes: u64 = 0;
    for u in 0..n as u32 {
        let du = oriented.degree(u) as u64;
        s1_bytes += du * 4;
        for &m in oriented.neighbors(u) {
            stream += (du + oriented.degree(m) as u64) * 4;
        }
    }
    sim.phase("task:tc");
    sim.charge(
        0,
        Work {
            seq_bytes: stream + s1_bytes,
            rand_accesses: n as u64, // one work-item dispatch per vertex
            flops: stream / 4,
        },
    );
    sim.end_step()?;
    sim.end_iteration();
    Ok((count, sim.finish()))
}

/// Collaborative filtering by true **SGD**: "Galois is the only framework
/// that implements SGD (not just GD) in a fashion similar to that of the
/// native implementation", using the same n² uniform 2-D chunk schedule
/// (§3.2). Each work item updates one rating's `(p_u, q_v)` pair.
pub fn cf_sgd(
    g: &RatingsGraph,
    cfg: &CfConfig,
    epochs: u32,
    nodes: usize,
) -> Result<(Factors, Vec<f64>, RunReport), SimError> {
    let mut sim = single_node_sim(nodes)?;
    let p_blocks = graphmaze_graph::par::default_threads().clamp(2, 8);
    sim.alloc(
        0,
        (u64::from(g.num_users()) + u64::from(g.num_items())) * cfg.k as u64 * 8
            + g.num_ratings() * 12,
        "galois:factors+ratings",
    )?;
    // the native n² chunk schedule, driven by Galois work items: each
    // sub-step's diagonal blocks are independent tasks, each rating a
    // lock-free (p_u, q_v) update (§3.2)
    let blocks = DiagonalBlocks::build(g, p_blocks);
    let mut factors = Factors::init(g.num_users(), g.num_items(), cfg);
    let mut history = Vec::with_capacity(epochs as usize);
    let mut gamma = cfg.gamma0;
    let k = cfg.k as u64;
    sim.phase("sgd:epoch");
    for _ in 0..epochs {
        for s in 0..p_blocks {
            // tasks of this sub-step touch disjoint (user, item) blocks;
            // process in fixed order — identical result to the threaded
            // native schedule, as the blocks never overlap
            for w in 0..p_blocks {
                let ib = (w + s) % p_blocks;
                for &(u, v, r) in blocks.bucket(w, ib, p_blocks) {
                    let pu = &mut factors.p[u as usize * cfg.k..(u as usize + 1) * cfg.k];
                    let qv = &mut factors.q[v as usize * cfg.k..(v as usize + 1) * cfg.k];
                    cf::sgd_update(pu, qv, r, gamma, cfg.lambda);
                }
            }
        }
        gamma *= cfg.step_decay;
        history.push(cf::rmse(g, &factors));
        sim.charge(
            0,
            Work {
                seq_bytes: g.num_ratings() * (4 * k * 8 + 12),
                rand_accesses: g.num_ratings() * 2,
                flops: g.num_ratings() * 8 * k,
            },
        );
        sim.end_step()?;
        sim.end_iteration();
    }
    Ok((factors, history, sim.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_datagen::ratings::{self, RatingsGenConfig};
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};
    use graphmaze_native::triangle::orient_and_sort;
    use graphmaze_native::PAGERANK_R;

    fn rmat_el(scale: u32, seed: u64) -> graphmaze_graph::EdgeList {
        rmat::generate(&RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        })
    }

    #[test]
    fn multi_node_is_rejected() {
        let el = rmat_el(8, 61);
        let g = DirectedGraph::from_edge_list(&el);
        assert!(matches!(
            pagerank(&g, PAGERANK_R, 2, 4),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pagerank_matches_native() {
        let el = rmat_el(9, 62);
        let g = DirectedGraph::from_edge_list(&el);
        let want = graphmaze_native::pagerank::pagerank(&g, PAGERANK_R, 5, 2);
        let (got, rep) = pagerank(&g, PAGERANK_R, 5, 1).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(rep.traffic.bytes_sent, 0, "single node, no network");
    }

    #[test]
    fn bfs_matches_native() {
        let mut el = rmat_el(9, 63);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let want = graphmaze_native::bfs::bfs(&g, 0, 2);
        let (got, _) = bfs(&g, 0, 1).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn triangles_match_native() {
        let el = rmat_el(9, 64);
        let oriented = orient_and_sort(&el);
        let want = graphmaze_native::triangle::triangles(&oriented, 2);
        let (got, _) = triangles(&oriented, 1).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn sgd_converges() {
        let g = ratings::generate(&RatingsGenConfig {
            scale: 8,
            edge_factor: 8,
            num_items: 32,
            min_degree: 3,
            seed: 65,
        });
        let cfg = CfConfig {
            k: 4,
            lambda: 0.05,
            gamma0: 0.02,
            step_decay: 0.98,
            seed: 9,
        };
        let (_, hist, rep) = cf_sgd(&g, &cfg, 5, 1).unwrap();
        assert!(hist[4] < hist[0]);
        assert_eq!(rep.iterations, 5);
    }

    #[test]
    fn sgd_matches_native_schedule_exactly() {
        // Galois drives the same diagonal blocking as native (§3.2):
        // identical blocks + identical per-bucket order ⇒ identical
        // factors, bit for bit.
        let g = ratings::generate(&RatingsGenConfig {
            scale: 8,
            edge_factor: 8,
            num_items: 32,
            min_degree: 3,
            seed: 66,
        });
        let cfg = CfConfig {
            k: 4,
            lambda: 0.05,
            gamma0: 0.02,
            step_decay: 0.98,
            seed: 9,
        };
        let p_blocks = graphmaze_graph::par::default_threads().clamp(2, 8);
        let (native_f, _) = graphmaze_native::cf::sgd(&g, &cfg, 3, p_blocks);
        let (galois_f, _, _) = cf_sgd(&g, &cfg, 3, 1).unwrap();
        assert_eq!(native_f, galois_f);
    }

    #[test]
    fn galois_is_close_to_native_single_node() {
        // Table 5: Galois ≈ 1.1–1.2x native for pagerank.
        let el = rmat_el(10, 66);
        let g = DirectedGraph::from_edge_list(&el);
        let (_, native_rep) = graphmaze_native::pagerank::pagerank_cluster(
            &g,
            PAGERANK_R,
            5,
            graphmaze_native::NativeOptions::all(),
            1,
        )
        .unwrap();
        let (_, galois_rep) = pagerank(&g, PAGERANK_R, 5, 1).unwrap();
        let slowdown = galois_rep.slowdown_vs(&native_rep);
        assert!(
            slowdown > 1.0 && slowdown < 3.0,
            "Galois slowdown {slowdown}"
        );
    }
}
