//! Galois-style executors.
//!
//! [`BulkSyncExecutor`] is the "bulk-synchronous parallel executor
//! provided by Galois, which maintains the work lists for each level
//! behind the scenes, and processes each level in parallel" (§3.2).
//! [`for_each_parallel`] is the unordered `foreach (x) in parallel`
//! loop of Algorithms 3 and 4.

use graphmaze_graph::par::par_tasks;

/// Processes rounds of work items: each round's items run (conceptually
/// in parallel — really, deterministically in fixed order per round),
/// pushing next-round items. The executor owns the per-level work lists.
pub struct BulkSyncExecutor<T> {
    current: Vec<T>,
    next: Vec<T>,
    rounds: u32,
    items_processed: u64,
}

impl<T> BulkSyncExecutor<T> {
    /// Seeds the executor with initial work items.
    pub fn new(initial: Vec<T>) -> Self {
        BulkSyncExecutor {
            current: initial,
            next: Vec::new(),
            rounds: 0,
            items_processed: 0,
        }
    }

    /// Runs until no work remains. `body(item, push)` processes one item
    /// and may push follow-on items to the next level.
    pub fn run(&mut self, mut body: impl FnMut(&T, &mut Vec<T>)) {
        while !self.current.is_empty() {
            self.rounds += 1;
            let mut pushed = Vec::new();
            for item in &self.current {
                self.items_processed += 1;
                body(item, &mut pushed);
            }
            self.next = pushed;
            std::mem::swap(&mut self.current, &mut self.next);
            self.next.clear();
        }
    }

    /// Like [`BulkSyncExecutor::run`], but invokes `on_level_end(items)`
    /// after every level with the number of items that level processed —
    /// the hook the cost model uses to charge per-barrier work.
    pub fn run_with_barrier(
        &mut self,
        mut body: impl FnMut(&T, &mut Vec<T>),
        mut on_level_end: impl FnMut(u64),
    ) {
        while !self.current.is_empty() {
            self.rounds += 1;
            let mut pushed = Vec::new();
            let level_items = self.current.len() as u64;
            for item in &self.current {
                self.items_processed += 1;
                body(item, &mut pushed);
            }
            on_level_end(level_items);
            self.next = pushed;
            std::mem::swap(&mut self.current, &mut self.next);
            self.next.clear();
        }
    }

    /// Levels executed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Total items processed.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }
}

/// Unordered parallel foreach over `0..n` with a per-thread fold,
/// combined at the end — the shape of Galois's `numTriangles +=`
/// reduction in Algorithm 4.
pub fn for_each_parallel<A: Send>(
    n: usize,
    threads: usize,
    init: impl Fn() -> A + Sync,
    body: impl Fn(usize, &mut A) + Sync,
    combine: impl Fn(A, A) -> A,
) -> A {
    let threads = threads.max(1);
    let parts = par_tasks(threads, |t| {
        let mut acc = init();
        let chunk = n.div_ceil(threads).max(1);
        let lo = (t * chunk).min(n);
        let hi = ((t + 1) * chunk).min(n);
        for i in lo..hi {
            body(i, &mut acc);
        }
        acc
    });
    let mut it = parts.into_iter();
    let first = it.next().expect("at least one part");
    it.fold(first, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_processes_levels() {
        // count down from each seed; rounds = max seed
        let mut ex = BulkSyncExecutor::new(vec![3u32, 1]);
        let mut seen = Vec::new();
        ex.run(|&item, push| {
            seen.push(item);
            if item > 0 {
                push.push(item - 1);
            }
        });
        assert_eq!(ex.rounds(), 4);
        assert_eq!(ex.items_processed(), 6); // 3,1 | 2,0 | 1 | 0
        assert_eq!(seen, vec![3, 1, 2, 0, 1, 0]);
    }

    #[test]
    fn executor_empty_start() {
        let mut ex = BulkSyncExecutor::<u32>::new(vec![]);
        ex.run(|_, _| panic!("no work"));
        assert_eq!(ex.rounds(), 0);
    }

    #[test]
    fn foreach_parallel_reduces() {
        let total = for_each_parallel(1000, 4, || 0u64, |i, acc| *acc += i as u64, |a, b| a + b);
        assert_eq!(total, 999 * 1000 / 2);
    }
}
