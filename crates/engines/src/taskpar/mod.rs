//! Task-based work-item parallelism — the Galois model (paper §3).
//!
//! "Galois is a work-item based parallelization framework ... provides
//! its own schedulers and scalable data structures, but does not impose
//! a particular partitioning scheme." It is single-node only (Table 2),
//! runs with near-native per-operation cost (prefetch-friendly loops,
//! §6.2), and is "the only framework that implements SGD (not just GD)"
//! because its flexible partitioning admits the native n² chunk schedule.

pub mod executor;
pub mod galois;

pub use executor::{for_each_parallel, BulkSyncExecutor};
