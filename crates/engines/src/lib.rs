#![allow(clippy::needless_range_loop)] // per-node kernels index several parallel arrays by the same id

//! # graphmaze-engines
//!
//! Re-implementations of the six graph-framework **programming models**
//! the paper benchmarks (§3), each running the four algorithms through
//! its own abstraction on the simulated cluster:
//!
//! | module | framework | model | partitioning | comm layer |
//! |---|---|---|---|---|
//! | [`vertex::graphlab`] | GraphLab v2.2 | vertex programs, async-ish, combiners | 1-D + hub replication | sockets |
//! | [`vertex::giraph`]   | Giraph 1.1    | BSP vertex programs, whole-superstep buffering | 1-D | Netty |
//! | [`spmv`]             | CombBLAS 1.3  | sparse-matrix semiring algebra | 2-D grid | MPI |
//! | [`datalog`]          | SociaLite     | Datalog rules over sharded tables | 1-D shards | (multi-)sockets |
//! | [`taskpar`]          | Galois 2.2    | work-item task parallelism | flexible, single node | — |
//! | [`graphmat`]         | GraphMat      | vertex programs auto-lowered to masked SpMSpV | 2-D grid | MPI |
//!
//! Every engine executes the *real* algorithm on real data — results are
//! tested identical to `graphmaze-native` — while the simulator meters
//! work, traffic and memory under the framework's documented mechanisms
//! ([`graphmaze_cluster::ExecProfile`]).

pub mod datalog;
pub mod graphmat;
pub mod spmv;
pub mod taskpar;
pub mod vertex;

/// Default number of PageRank iterations used by engine convenience APIs.
pub const DEFAULT_PR_ITERATIONS: u32 = 20;
