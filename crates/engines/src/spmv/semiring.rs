//! Semirings — the user-defined algebra of CombBLAS operations.
//!
//! A semiring supplies `(⊕, ⊗, 0)`; graph kernels differ only in the
//! semiring: PageRank uses `(+, ×)` over reals, BFS uses a
//! min/select algebra over levels.
//!
//! [`GatherMonoid`] generalizes the ⊕ half past `Copy` element types —
//! the algebra a GAS vertex program declares for its gather step — and
//! [`SparseAccumulator`] is the GraphBLAST-style SPA that masked SpMSpV
//! reduces into.

/// A semiring over element type `T`.
#[derive(Clone, Copy)]
pub struct Semiring<T: Copy> {
    /// The additive identity (also the "no entry" value).
    pub zero: T,
    /// ⊕ — combines partial results.
    pub add: fn(T, T) -> T,
    /// ⊗ — combines a matrix entry (as `T`) with a vector entry.
    pub mul: fn(T, T) -> T,
}

impl<T: Copy> Semiring<T> {
    /// Folds an iterator with ⊕ starting from zero.
    pub fn sum(&self, it: impl Iterator<Item = T>) -> T {
        it.fold(self.zero, self.add)
    }
}

/// The arithmetic `(+, ×)` semiring over `f64` (PageRank, CF).
pub const PLUS_TIMES: Semiring<f64> = Semiring {
    zero: 0.0,
    add: |a, b| a + b,
    mul: |a, b| a * b,
};

/// The `(min, +)` tropical semiring over `u32` distances, with `u32::MAX`
/// as zero (BFS level propagation).
pub const MIN_PLUS: Semiring<u32> = Semiring {
    zero: u32::MAX,
    add: |a, b| a.min(b),
    mul: |a, b| a.saturating_add(b),
};

/// The `(|, pass)` semiring over `u64` source masks: ⊕ is bitwise OR,
/// ⊗ passes the vector entry through (matrix entries are boolean).
/// Drives bit-parallel multi-source BFS — one SpMSpV advances all 64
/// sources of a word at once.
pub const OR_PASS: Semiring<u64> = Semiring {
    zero: 0,
    add: |a, b| a | b,
    mul: |_, x| x,
};

/// The counting semiring over `u64` (path counting / SpGEMM for TC).
pub const PLUS_TIMES_U64: Semiring<u64> = Semiring {
    zero: 0,
    add: |a, b| a + b,
    mul: |a, b| a * b,
};

/// The gather half of a [`Semiring`] generalized past `Copy`: an
/// associative ⊕ with an identity element over an arbitrary `Clone`
/// message type. This is the algebra a gather–apply–scatter vertex
/// program declares (GraphBLAST's user-defined monoid); for `Copy`
/// types it coincides with `(Semiring::add, Semiring::zero)`.
#[derive(Clone)]
pub struct GatherMonoid<M: Clone> {
    /// The ⊕ identity (the semiring's `zero`).
    pub identity: M,
    /// ⊕ — associative, with `identity` as its neutral element.
    pub combine: fn(&M, &M) -> M,
}

impl<M: Clone> GatherMonoid<M> {
    /// Left-folds `msgs` with ⊕ starting from the identity — the exact
    /// reduction a vertex inbox undergoes, so engines that fold eagerly
    /// (a sparse accumulator) and engines that fold at delivery (a
    /// message combiner) produce bit-identical results.
    pub fn fold<'a>(&self, msgs: impl Iterator<Item = &'a M>) -> M
    where
        M: 'a,
    {
        msgs.fold(self.identity.clone(), |acc, m| (self.combine)(&acc, m))
    }
}

/// `(+, 0)` over `f64` — [`PLUS_TIMES`]'s ⊕ (PageRank's gather).
pub fn plus_f64() -> GatherMonoid<f64> {
    GatherMonoid {
        identity: 0.0,
        combine: |a, b| a + b,
    }
}

/// `(min, MAX)` over `u32` — [`MIN_PLUS`]'s ⊕ (BFS's gather).
pub fn min_u32() -> GatherMonoid<u32> {
    GatherMonoid {
        identity: u32::MAX,
        combine: |a, b| *a.min(b),
    }
}

/// Word-wise `(|, 0)` over mask vectors of `width` words — [`OR_PASS`]'s
/// ⊕ lifted to multi-word frontiers (bit-parallel multi-source BFS).
pub fn or_words(width: usize) -> GatherMonoid<Vec<u64>> {
    GatherMonoid {
        identity: vec![0u64; width],
        combine: |a, b| a.iter().zip(b).map(|(x, y)| x | y).collect(),
    }
}

/// A sparse accumulator (SPA): dense slots plus a touched-index list, the
/// GraphBLAST workhorse that masked SpMSpV reduces partial products into.
/// `scatter` folds a value into a slot in arrival order; `drain_sorted`
/// yields the accumulated entries in ascending index order and resets the
/// SPA for reuse.
pub struct SparseAccumulator<A> {
    slots: Vec<Option<A>>,
    touched: Vec<u32>,
}

impl<A> SparseAccumulator<A> {
    /// An empty SPA over indices `0..n`.
    pub fn new(n: usize) -> Self {
        SparseAccumulator {
            slots: (0..n).map(|_| None).collect(),
            touched: Vec::new(),
        }
    }

    /// Number of touched (nonzero) slots.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether no slot has been touched.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Folds a value into slot `index`: `update` receives the current
    /// accumulation (`None` on first touch) and returns the new one.
    pub fn scatter(&mut self, index: u32, update: impl FnOnce(Option<A>) -> A) {
        let slot = &mut self.slots[index as usize];
        if slot.is_none() {
            self.touched.push(index);
        }
        *slot = Some(update(slot.take()));
    }

    /// Indices touched since the last drain, in first-touch order.
    pub fn indices(&self) -> &[u32] {
        &self.touched
    }

    /// Drains the touched entries in ascending index order, leaving the
    /// SPA empty.
    pub fn drain_sorted(&mut self) -> Vec<(u32, A)> {
        self.touched.sort_unstable();
        let mut out = Vec::with_capacity(self.touched.len());
        for &i in &self.touched {
            out.push((i, self.slots[i as usize].take().expect("touched slot")));
        }
        self.touched.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_sums() {
        assert_eq!(PLUS_TIMES.sum([1.0, 2.0, 3.5].into_iter()), 6.5);
        assert_eq!((PLUS_TIMES.mul)(2.0, 4.0), 8.0);
    }

    #[test]
    fn min_plus_takes_minimum_and_saturates() {
        assert_eq!(MIN_PLUS.sum([5u32, 3, 9].into_iter()), 3);
        assert_eq!(MIN_PLUS.sum(std::iter::empty()), u32::MAX);
        assert_eq!((MIN_PLUS.mul)(u32::MAX, 1), u32::MAX);
    }

    #[test]
    fn gather_monoids_mirror_their_semirings() {
        // folding with the monoid == summing with the semiring's ⊕
        let msgs = [1.5f64, 2.25, -0.5];
        assert_eq!(
            plus_f64().fold(msgs.iter()),
            PLUS_TIMES.sum(msgs.into_iter())
        );
        let levels = [7u32, 3, 9];
        assert_eq!(
            min_u32().fold(levels.iter()),
            MIN_PLUS.sum(levels.into_iter())
        );
        // empty inboxes fold to the identity, not a sentinel
        assert_eq!(min_u32().fold([].iter()), u32::MAX);
        let words = [vec![0b01u64, 0b10], vec![0b10u64, 0b10]];
        assert_eq!(or_words(2).fold(words.iter()), vec![0b11u64, 0b10]);
        assert_eq!(or_words(2).fold([].iter()), vec![0u64, 0]);
    }

    #[test]
    fn sparse_accumulator_folds_in_arrival_order_and_drains_sorted() {
        let mono = min_u32();
        let mut spa: SparseAccumulator<u32> = SparseAccumulator::new(8);
        assert!(spa.is_empty());
        for (v, m) in [(5u32, 4u32), (2, 9), (5, 3), (2, 11)] {
            spa.scatter(v, |acc| (mono.combine)(&acc.unwrap_or(mono.identity), &m));
        }
        assert_eq!(spa.len(), 2);
        assert_eq!(spa.drain_sorted(), vec![(2, 9), (5, 3)]);
        // drained SPA is reusable
        assert!(spa.is_empty());
        spa.scatter(7, |acc| (mono.combine)(&acc.unwrap_or(mono.identity), &1));
        assert_eq!(spa.drain_sorted(), vec![(7, 1)]);
    }

    #[test]
    fn sparse_accumulator_collects_lists_in_order() {
        let mut spa: SparseAccumulator<Vec<u32>> = SparseAccumulator::new(4);
        for (v, m) in [(1u32, 10u32), (3, 20), (1, 30)] {
            spa.scatter(v, |acc| {
                let mut list = acc.unwrap_or_default();
                list.push(m);
                list
            });
        }
        assert_eq!(spa.drain_sorted(), vec![(1, vec![10, 30]), (3, vec![20])]);
    }

    #[test]
    fn semiring_laws_hold_for_plus_times_u64() {
        // associativity & identity on sample values
        let s = PLUS_TIMES_U64;
        for a in [0u64, 1, 7] {
            assert_eq!((s.add)(a, s.zero), a);
            for b in [2u64, 5] {
                for c in [3u64, 11] {
                    assert_eq!((s.add)((s.add)(a, b), c), (s.add)(a, (s.add)(b, c)));
                    assert_eq!((s.mul)((s.mul)(a, b), c), (s.mul)(a, (s.mul)(b, c)));
                    // distributivity
                    assert_eq!(
                        (s.mul)(a, (s.add)(b, c)),
                        (s.add)((s.mul)(a, b), (s.mul)(a, c))
                    );
                }
            }
        }
    }
}
