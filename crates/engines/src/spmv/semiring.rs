//! Semirings — the user-defined algebra of CombBLAS operations.
//!
//! A semiring supplies `(⊕, ⊗, 0)`; graph kernels differ only in the
//! semiring: PageRank uses `(+, ×)` over reals, BFS uses a
//! min/select algebra over levels.

/// A semiring over element type `T`.
#[derive(Clone, Copy)]
pub struct Semiring<T: Copy> {
    /// The additive identity (also the "no entry" value).
    pub zero: T,
    /// ⊕ — combines partial results.
    pub add: fn(T, T) -> T,
    /// ⊗ — combines a matrix entry (as `T`) with a vector entry.
    pub mul: fn(T, T) -> T,
}

impl<T: Copy> Semiring<T> {
    /// Folds an iterator with ⊕ starting from zero.
    pub fn sum(&self, it: impl Iterator<Item = T>) -> T {
        it.fold(self.zero, self.add)
    }
}

/// The arithmetic `(+, ×)` semiring over `f64` (PageRank, CF).
pub const PLUS_TIMES: Semiring<f64> = Semiring {
    zero: 0.0,
    add: |a, b| a + b,
    mul: |a, b| a * b,
};

/// The `(min, +)` tropical semiring over `u32` distances, with `u32::MAX`
/// as zero (BFS level propagation).
pub const MIN_PLUS: Semiring<u32> = Semiring {
    zero: u32::MAX,
    add: |a, b| a.min(b),
    mul: |a, b| a.saturating_add(b),
};

/// The `(|, pass)` semiring over `u64` source masks: ⊕ is bitwise OR,
/// ⊗ passes the vector entry through (matrix entries are boolean).
/// Drives bit-parallel multi-source BFS — one SpMSpV advances all 64
/// sources of a word at once.
pub const OR_PASS: Semiring<u64> = Semiring {
    zero: 0,
    add: |a, b| a | b,
    mul: |_, x| x,
};

/// The counting semiring over `u64` (path counting / SpGEMM for TC).
pub const PLUS_TIMES_U64: Semiring<u64> = Semiring {
    zero: 0,
    add: |a, b| a + b,
    mul: |a, b| a * b,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_sums() {
        assert_eq!(PLUS_TIMES.sum([1.0, 2.0, 3.5].into_iter()), 6.5);
        assert_eq!((PLUS_TIMES.mul)(2.0, 4.0), 8.0);
    }

    #[test]
    fn min_plus_takes_minimum_and_saturates() {
        assert_eq!(MIN_PLUS.sum([5u32, 3, 9].into_iter()), 3);
        assert_eq!(MIN_PLUS.sum(std::iter::empty()), u32::MAX);
        assert_eq!((MIN_PLUS.mul)(u32::MAX, 1), u32::MAX);
    }

    #[test]
    fn semiring_laws_hold_for_plus_times_u64() {
        // associativity & identity on sample values
        let s = PLUS_TIMES_U64;
        for a in [0u64, 1, 7] {
            assert_eq!((s.add)(a, s.zero), a);
            for b in [2u64, 5] {
                for c in [3u64, 11] {
                    assert_eq!((s.add)((s.add)(a, b), c), (s.add)(a, (s.add)(b, c)));
                    assert_eq!((s.mul)((s.mul)(a, b), c), (s.mul)(a, (s.mul)(b, c)));
                    // distributivity
                    assert_eq!(
                        (s.mul)(a, (s.add)(b, c)),
                        (s.add)((s.mul)(a, b), (s.mul)(a, c))
                    );
                }
            }
        }
    }
}
