//! Sparse-matrix semiring algebra — the CombBLAS model (paper §3):
//! "graphs as sparse matrices ... computations expressed as operations
//! among sparse matrices and vectors using arbitrary user-defined
//! semirings", with the only 2-D (edge-based) partitioning in the study.
//!
//! [`semiring`] defines the algebra, [`matrix`] the distributed matrix
//! and its kernels (SpMV, SpMSpV, SpGEMM, masked reduction), and
//! [`combblas`] the four algorithms on top.

pub mod combblas;
pub mod matrix;
pub mod semiring;

pub use matrix::DistMatrix;
pub use semiring::Semiring;
