//! The distributed sparse matrix and its kernels.
//!
//! A [`DistMatrix`] wraps a CSR with a √P × √P block decomposition
//! ([`Partition2D`]); kernels execute the real computation over the whole
//! matrix while charging each grid process for its block's share of work
//! and for the column-broadcast / row-reduce communication pattern of
//! 2-D SpMV.

use graphmaze_cluster::{Partition2D, Router, Sim, SimError};
use graphmaze_graph::csr::Csr;
use graphmaze_graph::VertexId;
use graphmaze_metrics::Work;

use super::semiring::{GatherMonoid, Semiring, SparseAccumulator};

/// A sparse matrix distributed over a square process grid. The matrix is
/// the graph's adjacency: entry `(u, v)` is edge `u → v`; numeric entry
/// values are supplied per-kernel (unweighted graphs use 1).
pub struct DistMatrix<'a> {
    csr: &'a Csr,
    grid: Partition2D,
    /// nnz of each grid block, for work charging.
    block_nnz: Vec<u64>,
}

impl<'a> DistMatrix<'a> {
    /// Wraps `csr` on a square grid of `nodes` processes. Fails if
    /// `nodes` is not a perfect square (CombBLAS requirement, §4.3).
    pub fn new(csr: &'a Csr, nodes: usize) -> Result<Self, SimError> {
        let grid = Partition2D::square(nodes, csr.num_vertices() as u64)
            .map_err(SimError::InvalidConfig)?;
        Ok(Self::on_grid(csr, grid))
    }

    /// Wraps `csr` on the most-square factorization of `nodes` — the
    /// paper sidesteps CombBLAS's square requirement by adjusting process
    /// counts per node (§4.3); this is the equivalent placement for node
    /// counts like 2, 8, 32.
    pub fn new_nearly_square(csr: &'a Csr, nodes: usize) -> Self {
        Self::on_grid(
            csr,
            Partition2D::nearly_square(nodes, csr.num_vertices() as u64),
        )
    }

    fn on_grid(csr: &'a Csr, grid: Partition2D) -> Self {
        let mut block_nnz = vec![0u64; grid.nodes()];
        for u in 0..csr.num_vertices() as u32 {
            for &v in csr.neighbors(u) {
                block_nnz[grid.owner(u, v)] += 1;
            }
        }
        DistMatrix {
            csr,
            grid,
            block_nnz,
        }
    }

    /// The underlying CSR.
    pub fn csr(&self) -> &Csr {
        self.csr
    }

    /// The process grid.
    pub fn grid(&self) -> Partition2D {
        self.grid
    }

    /// nnz of block `p`.
    pub fn block_nnz(&self, p: usize) -> u64 {
        self.block_nnz[p]
    }

    /// Processes in grid column `c` other than row `r` — the peer group
    /// of a column broadcast originating at `(r, c)`.
    pub(crate) fn column_peers(&self, r: usize, c: usize) -> Vec<usize> {
        (0..self.grid.pr)
            .filter(|&rr| rr != r)
            .map(|rr| self.grid.node_at(rr, c))
            .collect()
    }

    /// Processes in grid row `r` other than column `c` — the peer group
    /// of a SUMMA block circulation from `(r, c)`.
    pub(crate) fn row_peers(&self, r: usize, c: usize) -> Vec<usize> {
        (0..self.grid.pc)
            .filter(|&cc| cc != c)
            .map(|cc| self.grid.node_at(r, cc))
            .collect()
    }

    /// Charges every process for streaming its block plus per-entry
    /// arithmetic (`flops_per_nnz`).
    fn charge_blocks(&self, sim: &mut Sim, flops_per_nnz: u64, elem_bytes: u64) {
        for (p, &nnz) in self.block_nnz.iter().enumerate() {
            sim.charge(
                p,
                Work {
                    seq_bytes: nnz * (4 + elem_bytes),
                    rand_accesses: nnz,
                    flops: nnz * flops_per_nnz,
                },
            );
        }
    }

    /// Charges the 2-D SpMV communication pattern for a dense vector of
    /// `elem_bytes`-byte entries: the input vector is broadcast down each
    /// process column, partial outputs are reduced along each process row.
    fn charge_dense_vector_comm(&self, sim: &mut Sim, elem_bytes: u64) {
        let (pr, pc) = (self.grid.pr, self.grid.pc);
        if pr * pc <= 1 {
            return;
        }
        let mut router = Router::new(sim.nodes(), sim.profile());
        let x_seg = self.grid.cols_per_block() * elem_bytes;
        let y_seg = self.grid.rows_per_block() * elem_bytes;
        for p in 0..pr * pc {
            let (r, c) = self.grid.coords(p);
            // column broadcast originates at the diagonal process: one
            // x-segment to each other process in the column
            if r == c {
                router.scatter(
                    sim,
                    p,
                    &self.column_peers(r, c),
                    x_seg * (pr as u64 - 1),
                    x_seg * (pr as u64 - 1),
                );
            }
            // row reduction: off-diagonal processes send partial y to
            // their row's diagonal
            if r != c {
                router.send(sim, p, self.grid.node_at(r, r), y_seg, y_seg);
            }
        }
        router.flush(sim);
    }

    /// `y = Aᵀ x` over `semiring` with all matrix entries equal to
    /// `entry`: `y[v] = ⊕_{u→v} entry ⊗ x[u]`. Executed for real;
    /// charges block work plus dense-vector communication.
    pub fn spmv_transpose<T: Copy>(
        &self,
        sim: &mut Sim,
        x: &[T],
        entry: T,
        semiring: &Semiring<T>,
        elem_bytes: u64,
        flops_per_nnz: u64,
    ) -> Vec<T> {
        assert_eq!(x.len(), self.csr.num_vertices());
        let mut y = vec![semiring.zero; x.len()];
        for u in 0..x.len() as u32 {
            let xu = x[u as usize];
            for &v in self.csr.neighbors(u) {
                y[v as usize] = (semiring.add)(y[v as usize], (semiring.mul)(entry, xu));
            }
        }
        self.charge_blocks(sim, flops_per_nnz, elem_bytes);
        self.charge_dense_vector_comm(sim, elem_bytes);
        y
    }

    /// Sparse-vector product `y = Aᵀ x` where `x` is the sparse set
    /// `{(u, value)}` — the BFS kernel (paper eq. (10)). Returns the
    /// sparse result sorted by index. Work is proportional to the edges
    /// out of `x`'s support; communication to the support sizes.
    pub fn spmspv_transpose<T: Copy>(
        &self,
        sim: &mut Sim,
        x: &[(VertexId, T)],
        entry: T,
        semiring: &Semiring<T>,
        elem_bytes: u64,
    ) -> Vec<(VertexId, T)> {
        self.spmspv_transpose_opt(sim, x, entry, semiring, elem_bytes, false)
    }

    /// [`DistMatrix::spmspv_transpose`] with optional **bit-vector
    /// compression of the frontier indices** — the §6.2 roadmap item for
    /// CombBLAS BFS ("needs to use data structures such as bitvectors
    /// for compression in order to improve BFS performance"). The index
    /// sets are really encoded (delta or bitmap, whichever is smaller).
    #[allow(clippy::too_many_arguments)]
    pub fn spmspv_transpose_opt<T: Copy>(
        &self,
        sim: &mut Sim,
        x: &[(VertexId, T)],
        entry: T,
        semiring: &Semiring<T>,
        elem_bytes: u64,
        compress_indices: bool,
    ) -> Vec<(VertexId, T)> {
        let mut acc: Vec<(VertexId, T)> = Vec::new();
        let mut per_block_edges = vec![0u64; self.grid.nodes()];
        for &(u, xu) in x {
            for &v in self.csr.neighbors(u) {
                acc.push((v, (semiring.mul)(entry, xu)));
                per_block_edges[self.grid.owner(u, v)] += 1;
            }
        }
        acc.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VertexId, T)> = Vec::new();
        for (v, val) in acc {
            match out.last_mut() {
                Some((lv, lval)) if *lv == v => *lval = (semiring.add)(*lval, val),
                _ => out.push((v, val)),
            }
        }
        for (p, &e) in per_block_edges.iter().enumerate() {
            sim.charge(
                p,
                Work {
                    seq_bytes: e * (4 + elem_bytes),
                    rand_accesses: e,
                    flops: e * 2,
                },
            );
        }
        // frontier broadcast + sparse result exchange
        if self.grid.nodes() > 1 {
            let pr = self.grid.pr as u64;
            let index_bytes = |ids: &[VertexId]| -> u64 {
                if compress_indices && !ids.is_empty() {
                    let mut sorted: Vec<VertexId> = ids.to_vec();
                    sorted.sort_unstable();
                    sorted.dedup();
                    crate::spmv::matrix::encode_ids(&sorted, self.grid.n)
                } else {
                    ids.len() as u64 * 4
                }
            };
            let x_ids: Vec<VertexId> = x.iter().map(|&(v, _)| v).collect();
            let out_ids: Vec<VertexId> = out.iter().map(|&(v, _)| v).collect();
            let in_bytes = index_bytes(&x_ids) + x.len() as u64 * elem_bytes;
            let in_raw = x.len() as u64 * (4 + elem_bytes);
            let out_bytes = index_bytes(&out_ids) + out.len() as u64 * elem_bytes;
            let out_raw = out.len() as u64 * (4 + elem_bytes);
            let mut router = Router::new(sim.nodes(), sim.profile());
            for p in 0..self.grid.nodes() {
                let (r, c) = self.grid.coords(p);
                // frontier broadcast down the process column
                if r == c {
                    router.scatter(
                        sim,
                        p,
                        &self.column_peers(r, c),
                        in_bytes / pr * (pr - 1) + 1,
                        in_raw,
                    );
                }
                // sparse partial results gathered at the row's diagonal
                if r != c {
                    router.send(
                        sim,
                        p,
                        self.grid.node_at(r, r),
                        out_bytes / (pr * pr) + 1,
                        out_raw / (pr * pr) + 1,
                    );
                }
            }
            router.flush(sim);
        }
        out
    }

    /// Generalized masked SpMSpV over a gather monoid — GraphBLAST's
    /// `y⟨¬m⟩ = Aᵀ ⊕.⊗ x` with a pass-through ⊗: every frontier entry
    /// `(u, msg)` contributes `msg` to each out-neighbor `v` of `u`,
    /// folded into `spa` with ⊕ in frontier order. For a frontier in
    /// ascending vertex order this reproduces the arrival-order inbox
    /// fold of the vertex engines exactly, which is what keeps lowered
    /// programs bit-identical. Products whose destination is masked off
    /// (`mask[v] == false`) are dropped before the fold — the
    /// complement output mask.
    ///
    /// Pure compute: returns per-block traversed-edge counts so callers
    /// (the GraphMat lowering) can charge work and the 2-D communication
    /// pattern themselves, pricing messages by program-declared sizes.
    pub fn spmspv_monoid<M: Clone>(
        &self,
        x: &[(VertexId, M)],
        monoid: &GatherMonoid<M>,
        mask: Option<&[bool]>,
        spa: &mut SparseAccumulator<M>,
    ) -> Vec<u64> {
        let mut per_block = vec![0u64; self.grid.nodes()];
        for (u, xu) in x {
            for &v in self.csr.neighbors(*u) {
                per_block[self.grid.owner(*u, v)] += 1;
                if mask.is_none_or(|m| m[v as usize]) {
                    spa.scatter(v, |acc| {
                        (monoid.combine)(&acc.unwrap_or_else(|| monoid.identity.clone()), xu)
                    });
                }
            }
        }
        per_block
    }

    /// [`DistMatrix::spmspv_monoid`] for `Collect`-mode gathers: no ⊕
    /// exists, so each destination accumulates the list of products in
    /// frontier order — the raw inbox a collect-mode apply walks.
    pub fn spmspv_collect<M: Clone>(
        &self,
        x: &[(VertexId, M)],
        mask: Option<&[bool]>,
        spa: &mut SparseAccumulator<Vec<M>>,
    ) -> Vec<u64> {
        let mut per_block = vec![0u64; self.grid.nodes()];
        for (u, xu) in x {
            for &v in self.csr.neighbors(*u) {
                per_block[self.grid.owner(*u, v)] += 1;
                if mask.is_none_or(|m| m[v as usize]) {
                    spa.scatter(v, |acc| {
                        let mut list = acc.unwrap_or_default();
                        list.push(xu.clone());
                        list
                    });
                }
            }
        }
        per_block
    }

    /// The §6.2 roadmap's CombBLAS fix: "combine A² computation with
    /// intersection with A, thereby also achieving overlap of computation
    /// and communication" — a *fused, masked* SpGEMM that only evaluates
    /// `A²` at positions where `A` is nonzero, never materializing the
    /// product. Returns the masked sum (the triangle count on a DAG
    /// orientation). Requires sorted adjacency.
    pub fn spgemm_masked_count_fused(&self, sim: &mut Sim) -> u64 {
        let n = self.csr.num_vertices();
        let mut masked_sum = 0u64;
        let mut per_block_stream = vec![0u64; self.grid.nodes()];
        for i in 0..n as u32 {
            let ni = self.csr.neighbors(i);
            for &j in ni {
                // A²_ij restricted to the mask = |N(i) ∩ N(j)|
                let nj = self.csr.neighbors(j);
                per_block_stream[self.grid.owner(i, j)] += (ni.len() + nj.len()) as u64 * 4;
                let (mut a, mut b) = (0, 0);
                while a < ni.len() && b < nj.len() {
                    match ni[a].cmp(&nj[b]) {
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                        std::cmp::Ordering::Equal => {
                            masked_sum += 1;
                            a += 1;
                            b += 1;
                        }
                    }
                }
            }
        }
        let mut router = Router::new(sim.nodes(), sim.profile());
        for (p, &stream) in per_block_stream.iter().enumerate() {
            sim.charge(
                p,
                Work {
                    seq_bytes: stream,
                    rand_accesses: 0,
                    flops: stream / 4,
                },
            );
            // SUMMA block circulation still happens, overlapped with the
            // intersection work (charged as traffic only)
            if self.grid.nodes() > 1 {
                let bytes = self.block_nnz[p] * 8 * self.grid.pr as u64;
                let (r, c) = self.grid.coords(p);
                router.scatter(sim, p, &self.row_peers(r, c), bytes, bytes);
            }
        }
        router.flush(sim);
        masked_sum
    }

    /// Computes `A² = A × A` over the counting semiring and returns
    /// `(masked_sum, nnz_a2)` where `masked_sum = Σ_{(i,j) ∈ A} A²_ij` —
    /// CombBLAS triangle counting, `nnz(A ∩ A²)` with multiplicities
    /// (§3.2). **Materializes A²**, charging its memory to the grid —
    /// the paper's CombBLAS OOM on real-world inputs comes from exactly
    /// this allocation (`label "spgemm:A2"`).
    pub fn spgemm_masked_count(&self, sim: &mut Sim) -> Result<(u64, u64), SimError> {
        let n = self.csr.num_vertices();
        let mut masked_sum = 0u64;
        let mut nnz_a2 = 0u64;
        let mut block_a2_bytes = vec![0u64; self.grid.nodes()];
        let mut row_counts: std::collections::HashMap<VertexId, u64> =
            std::collections::HashMap::new();
        let mut flops = vec![0u64; self.grid.nodes()];
        for i in 0..n as u32 {
            row_counts.clear();
            for &k in self.csr.neighbors(i) {
                for &j in self.csr.neighbors(k) {
                    *row_counts.entry(j).or_insert(0) += 1;
                    flops[self.grid.owner(i, j)] += 2;
                }
            }
            nnz_a2 += row_counts.len() as u64;
            for (&j, &paths) in row_counts.iter() {
                // 12 bytes per stored (col, count) entry of A²
                block_a2_bytes[self.grid.owner(i, j)] += 12;
                if self.csr.has_edge_sorted(i, j) {
                    masked_sum += paths;
                }
            }
        }
        let mut router = Router::new(sim.nodes(), sim.profile());
        for p in 0..self.grid.nodes() {
            sim.alloc(p, block_a2_bytes[p], "spgemm:A2")?;
            sim.charge(
                p,
                Work {
                    seq_bytes: block_a2_bytes[p],
                    rand_accesses: flops[p] / 2,
                    flops: flops[p],
                },
            );
            // SpGEMM on 2-D grids circulates blocks of A: each process
            // ships its block √P times (SUMMA) around its grid row.
            if self.grid.nodes() > 1 {
                let bytes = self.block_nnz[p] * 8 * self.grid.pr as u64;
                let (r, c) = self.grid.coords(p);
                router.scatter(sim, p, &self.row_peers(r, c), bytes, bytes);
            }
        }
        router.flush(sim);
        for p in 0..self.grid.nodes() {
            sim.free(p, block_a2_bytes[p]);
        }
        Ok((masked_sum, nnz_a2))
    }
}

/// Encoded wire size of a sorted unique id list (delta or bitmap,
/// whichever is smaller) — shared by the compressed SpMSpV path.
pub(crate) fn encode_ids(sorted_ids: &[VertexId], universe: u64) -> u64 {
    graphmaze_cluster::compress::encode_best(sorted_ids, universe).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::semiring::{MIN_PLUS, PLUS_TIMES};
    use graphmaze_cluster::{ClusterSpec, ExecProfile};

    use graphmaze_graph::fixtures::fig2_csr as fig2;

    fn sim(nodes: usize) -> Sim {
        Sim::new(ClusterSpec::paper(nodes), ExecProfile::combblas())
    }

    #[test]
    fn requires_square_process_count() {
        let c = fig2();
        assert!(DistMatrix::new(&c, 3).is_err());
        assert!(DistMatrix::new(&c, 4).is_ok());
    }

    #[test]
    fn block_nnz_partitions_all_edges() {
        let c = fig2();
        let m = DistMatrix::new(&c, 4).unwrap();
        let total: u64 = (0..4).map(|p| m.block_nnz(p)).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn spmv_transpose_matches_paper_equation_9() {
        // pᵗ⁺¹ = r·1 + (1−r)·Aᵀ p̃ᵗ; with p̃⁰ = p⁰/d
        let c = fig2();
        let m = DistMatrix::new(&c, 1).unwrap();
        let mut s = sim(1);
        let degrees = [2.0, 2.0, 1.0, 1.0];
        let x: Vec<f64> = (0..4).map(|i| 1.0 / degrees[i]).collect();
        let y = m.spmv_transpose(&mut s, &x, 1.0, &PLUS_TIMES, 8, 2);
        let pr: Vec<f64> = y.iter().map(|&v| 0.3 + 0.7 * v).collect();
        let want = [0.3, 0.65, 1.0, 1.35];
        for (a, b) in pr.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn spmspv_matches_paper_equation_10() {
        // From the paper: Aᵀ · [1,1,0,0]ᵀ = [0,1,2,1]ᵀ on Figure 2
        // (counting semiring over path multiplicity).
        let c = fig2();
        let m = DistMatrix::new(&c, 1).unwrap();
        let mut s = sim(1);
        let x = vec![(0u32, 1.0f64), (1, 1.0)];
        let y = m.spmspv_transpose(&mut s, &x, 1.0, &PLUS_TIMES, 8);
        assert_eq!(y, vec![(1, 1.0), (2, 2.0), (3, 1.0)]);
    }

    #[test]
    fn spmspv_min_plus_propagates_levels() {
        let c = fig2();
        let m = DistMatrix::new(&c, 1).unwrap();
        let mut s = sim(1);
        let x = vec![(0u32, 0u32)];
        // level 1 = neighbors of 0 with distance 0 (+ edge weight 1 via entry)
        let y = m.spmspv_transpose(&mut s, &x, 1, &MIN_PLUS, 4);
        assert_eq!(y, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn spmspv_monoid_matches_the_semiring_kernel() {
        use crate::spmv::semiring::min_u32;
        let c = fig2();
        let m = DistMatrix::new(&c, 4).unwrap();
        let mut s = sim(4);
        let x = vec![(0u32, 3u32), (1, 5)];
        // entry 0 makes MIN_PLUS's ⊗ a pass-through, isolating the ⊕
        let want = m.spmspv_transpose(&mut s, &x, 0, &MIN_PLUS, 4);
        let mut spa = SparseAccumulator::new(4);
        let per_block = m.spmspv_monoid(&x, &min_u32(), None, &mut spa);
        assert_eq!(spa.drain_sorted(), want);
        // 0 → {1,2}, 1 → {2,3}: four traversed edges across the grid
        assert_eq!(per_block.iter().sum::<u64>(), 4);
    }

    #[test]
    fn spmspv_monoid_mask_drops_products_but_not_work() {
        use crate::spmv::semiring::min_u32;
        let c = fig2();
        let m = DistMatrix::new(&c, 1).unwrap();
        let mut spa = SparseAccumulator::new(4);
        let mask = [true, false, true, true];
        let x = vec![(0u32, 3u32), (1, 5)];
        let per_block = m.spmspv_monoid(&x, &min_u32(), Some(&mask), &mut spa);
        // vertex 1 is masked off the output; the edge is still streamed
        assert_eq!(spa.drain_sorted(), vec![(2, 3), (3, 5)]);
        assert_eq!(per_block.iter().sum::<u64>(), 4);
    }

    #[test]
    fn spmspv_collect_preserves_frontier_order() {
        let c = fig2();
        let m = DistMatrix::new(&c, 1).unwrap();
        let mut spa: SparseAccumulator<Vec<u32>> = SparseAccumulator::new(4);
        // deliberately non-ascending frontier: order must be preserved
        let x = vec![(1u32, 10u32), (0, 20)];
        m.spmspv_collect(&x, None, &mut spa);
        assert_eq!(
            spa.drain_sorted(),
            vec![(1, vec![20]), (2, vec![10, 20]), (3, vec![10])]
        );
    }

    #[test]
    fn spgemm_masked_count_matches_paper_example() {
        // §3.2: for Figure 2, nnz-sum of A ∩ A² = 2 triangles,
        // and A² = [[0,0,1,2],[0,0,0,1],[0,0,0,0],[0,0,0,0]] has 3 nnz.
        let c = fig2();
        let m = DistMatrix::new(&c, 1).unwrap();
        let mut s = sim(1);
        let (count, nnz) = m.spgemm_masked_count(&mut s).unwrap();
        assert_eq!(count, 2);
        assert_eq!(nnz, 3);
    }

    #[test]
    fn fused_masked_count_matches_materialized() {
        let c = fig2();
        for nodes in [1usize, 4] {
            let m = DistMatrix::new(&c, nodes).unwrap();
            let mut s1 = sim(nodes);
            let (want, _) = m.spgemm_masked_count(&mut s1).unwrap();
            let mut s2 = sim(nodes);
            let got = m.spgemm_masked_count_fused(&mut s2);
            assert_eq!(got, want);
            // the fused version never allocates A²
            let r1 = s1.finish();
            let r2 = s2.finish();
            assert!(r2.peak_mem_bytes < r1.peak_mem_bytes.max(1) + 1);
        }
    }

    #[test]
    fn multi_node_spmv_communicates() {
        let c = fig2();
        let m = DistMatrix::new(&c, 4).unwrap();
        let mut s = sim(4);
        let x = vec![1.0f64; 4];
        let _ = m.spmv_transpose(&mut s, &x, 1.0, &PLUS_TIMES, 8, 2);
        let r = s.finish();
        assert!(r.traffic.bytes_sent > 0);
    }

    #[test]
    fn spgemm_charges_a2_memory() {
        let c = fig2();
        let m = DistMatrix::new(&c, 1).unwrap();
        let mut s = sim(1);
        m.spgemm_masked_count(&mut s).unwrap();
        let r = s.finish();
        assert!(r.peak_mem_bytes >= 36, "A² bytes {}", r.peak_mem_bytes);
    }
}
