//! The four algorithms in the CombBLAS model (paper §3.1–3.2).

use graphmaze_cluster::{ClusterSpec, ExecProfile, Router, Sim, SimError};
use graphmaze_graph::csr::{Csr, DirectedGraph, UndirectedGraph};
use graphmaze_graph::{RatingsGraph, VertexId};
use graphmaze_metrics::{RunReport, Work};

use super::matrix::DistMatrix;
use super::semiring::PLUS_TIMES;

/// Builds the CombBLAS simulator for `nodes` processes.
fn new_sim(nodes: usize) -> Sim {
    Sim::new(ClusterSpec::paper(nodes), ExecProfile::combblas())
}

/// Charges the per-process share of storing the matrix.
fn alloc_matrix(sim: &mut Sim, m: &DistMatrix<'_>, label: &str) -> Result<(), SimError> {
    for p in 0..m.grid().nodes() {
        // doubly-compressed block: ~12 bytes per stored edge
        sim.alloc(p, m.block_nnz(p) * 12, label)?;
    }
    Ok(())
}

/// PageRank as iterated SpMV (eq. (9)): `pᵗ⁺¹ = r·1 + (1−r)·Aᵀ p̃ᵗ`.
pub fn pagerank(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let m = DistMatrix::new_nearly_square(&g.out, nodes);
    let mut sim = new_sim(nodes);
    alloc_matrix(&mut sim, &m, "combblas:A")?;
    let n = g.num_vertices();
    let mut pr = vec![1.0f64; n];
    let mut scaled = vec![0.0f64; n];
    sim.phase("spmv:pagerank");
    for _ in 0..iterations {
        for i in 0..n {
            let d = g.out.degree(i as VertexId);
            scaled[i] = if d == 0 { 0.0 } else { pr[i] / f64::from(d) };
        }
        let y = m.spmv_transpose(&mut sim, &scaled, 1.0, &PLUS_TIMES, 8, 2);
        for i in 0..n {
            pr[i] = r + (1.0 - r) * y[i];
        }
        // dense vector scale/axpy passes
        for p in 0..nodes {
            sim.charge(p, Work::stream((n as u64 * 24) / nodes as u64));
        }
        sim.end_step()?;
        sim.end_iteration();
    }
    Ok((pr, sim.finish()))
}

/// BFS as iterated sparse matrix-vector products (eq. (10)): the
/// frontier is a sparse vector; each product yields the next frontier,
/// masked by the already-visited set.
pub fn bfs(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
) -> Result<(Vec<u32>, RunReport), SimError> {
    bfs_with_compression(g, source, nodes, false)
}

/// BFS with the §6.2 roadmap applied: frontier index sets are really
/// bit-vector/delta compressed before crossing the wire.
pub fn bfs_improved(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
) -> Result<(Vec<u32>, RunReport), SimError> {
    bfs_with_compression(g, source, nodes, true)
}

fn bfs_with_compression(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
    compress: bool,
) -> Result<(Vec<u32>, RunReport), SimError> {
    let m = DistMatrix::new_nearly_square(&g.adj, nodes);
    let mut sim = new_sim(nodes);
    alloc_matrix(&mut sim, &m, "combblas:A")?;
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier: Vec<(VertexId, u32)> = vec![(source, 0)];
    let mut level = 0u32;
    sim.phase("spmspv:frontier");
    while !frontier.is_empty() {
        level += 1;
        let product = m.spmspv_transpose_opt(
            &mut sim,
            &frontier,
            1,
            &super::semiring::MIN_PLUS,
            4,
            compress,
        );
        frontier = product
            .into_iter()
            .filter(|&(v, _)| dist[v as usize] == u32::MAX)
            .map(|(v, _)| (v, level))
            .collect();
        for &(v, d) in &frontier {
            dist[v as usize] = d;
        }
        for p in 0..nodes {
            sim.charge(p, Work::random(frontier.len() as u64 / nodes as u64 + 1));
        }
        sim.end_step()?;
    }
    sim.end_iteration();
    Ok((dist, sim.finish()))
}

/// Bit-parallel multi-source BFS as iterated SpMSpV over the
/// [`super::semiring::OR_PASS`] mask semiring: the frontier is a sparse
/// vector of `u64` source masks, one matrix product OR-gossips every
/// mask over the edges, and newly arrived bits settle at the current
/// level. Sources beyond 64 run as consecutive word passes in the same
/// simulation. Returns one distance row per source, identical to
/// `graphmaze_native::msbfs::msbfs`.
pub fn msbfs(
    g: &UndirectedGraph,
    sources: &[VertexId],
    nodes: usize,
) -> Result<(Vec<Vec<u32>>, RunReport), SimError> {
    let m = DistMatrix::new_nearly_square(&g.adj, nodes);
    let mut sim = new_sim(nodes);
    alloc_matrix(&mut sim, &m, "combblas:A")?;
    let n = g.num_vertices();
    // per-vertex seen word + per-pass packed distances
    sim.alloc_all(
        (n * (8 + 4 * sources.len().clamp(1, 64))) as u64 / nodes as u64 + 1,
        "combblas:msbfs-state",
    )?;
    let mut rows: Vec<Vec<u32>> = Vec::with_capacity(sources.len());
    sim.phase("spmspv:mask-frontier");
    for group in sources.chunks(64) {
        let k = group.len();
        let mut seen = vec![0u64; n];
        let mut dist = vec![u32::MAX; n * 64];
        let mut frontier: Vec<(VertexId, u64)> = {
            let mut seeds: Vec<(VertexId, u64)> = group
                .iter()
                .enumerate()
                .map(|(b, &s)| (s, 1u64 << b))
                .collect();
            seeds.sort_unstable_by_key(|&(v, _)| v);
            let mut merged: Vec<(VertexId, u64)> = Vec::new();
            for (v, mask) in seeds {
                match merged.last_mut() {
                    Some((lv, lm)) if *lv == v => *lm |= mask,
                    _ => merged.push((v, mask)),
                }
            }
            merged
        };
        for &(v, mask) in &frontier {
            seen[v as usize] = mask;
            settle_mask(&mut dist, v, mask, 0);
        }
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let product = m.spmspv_transpose_opt(
                &mut sim,
                &frontier,
                0, // matrix entries are boolean; ⊗ passes the mask through
                &super::semiring::OR_PASS,
                8,
                false,
            );
            frontier = product
                .into_iter()
                .filter_map(|(v, mask)| {
                    let newly = mask & !seen[v as usize];
                    (newly != 0).then_some((v, newly))
                })
                .collect();
            for &(v, newly) in &frontier {
                seen[v as usize] |= newly;
                settle_mask(&mut dist, v, newly, level);
            }
            for p in 0..nodes {
                sim.charge(p, Work::random(frontier.len() as u64 / nodes as u64 + 1));
            }
            sim.end_step()?;
        }
        for b in 0..k {
            rows.push((0..n).map(|v| dist[v * 64 + b]).collect());
        }
    }
    sim.end_iteration();
    Ok((rows, sim.finish()))
}

/// Records `level` for every set bit of `mask` at vertex `v` in the
/// packed `dist[v * 64 + bit]` layout.
fn settle_mask(dist: &mut [u32], v: VertexId, mask: u64, level: u32) {
    let mut bits = mask;
    while bits != 0 {
        let b = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        dist[v as usize * 64 + b] = level;
    }
}

/// Triangle counting as `Σ nnz-values of A ∩ A²` (§3.2) — limited by the
/// programming abstraction: A² is materialized, which exhausts memory on
/// large inputs ("it ran out of memory for real-world inputs while
/// computing the A² matrix product. This is an expressibility problem in
/// CombBLAS.").
pub fn triangles(oriented: &Csr, nodes: usize) -> Result<(u64, RunReport), SimError> {
    triangles_on(oriented, nodes, ClusterSpec::paper(nodes))
}

/// [`triangles`] with an explicit cluster spec (lets tests shrink node
/// memory to reproduce the paper's OOM).
pub fn triangles_on(
    oriented: &Csr,
    nodes: usize,
    spec: ClusterSpec,
) -> Result<(u64, RunReport), SimError> {
    let m = DistMatrix::new_nearly_square(oriented, nodes);
    let mut sim = Sim::new(spec, ExecProfile::combblas());
    alloc_matrix(&mut sim, &m, "combblas:A")?;
    sim.phase("spgemm:A2-mask");
    let (count, _nnz_a2) = m.spgemm_masked_count(&mut sim)?;
    sim.end_step()?;
    sim.end_iteration();
    Ok((count, sim.finish()))
}

/// Triangle counting with the §6.2 roadmap applied (fused masked SpGEMM
/// — no `A²` materialization, no OOM). See
/// [`DistMatrix::spgemm_masked_count_fused`].
pub fn triangles_improved(oriented: &Csr, nodes: usize) -> Result<(u64, RunReport), SimError> {
    let m = DistMatrix::new_nearly_square(oriented, nodes);
    let mut sim = new_sim(nodes);
    alloc_matrix(&mut sim, &m, "combblas:A")?;
    sim.phase("spgemm:fused-mask");
    let count = m.spgemm_masked_count_fused(&mut sim);
    sim.end_step()?;
    sim.end_iteration();
    Ok((count, sim.finish()))
}

/// Collaborative filtering by alternating GD expressed as K
/// matrix-vector products per side per iteration (§3.2: "a single GD
/// iteration consists of K matrix-vector multiplications ... Since
/// CombBLAS does not allow matrices with dimension < number of
/// processors, multiplication with the p matrix has to be performed in K
/// steps"). Returns `(p, q)` factor matrices row-major and the report.
#[allow(clippy::too_many_arguments)]
pub fn cf_gd(
    g: &RatingsGraph,
    k: usize,
    lambda: f64,
    gamma: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, Vec<f64>, RunReport), SimError> {
    let nu = g.num_users() as usize;
    let nv = g.num_items() as usize;
    let nnz = g.num_ratings();
    // R as a user→item matrix on the grid
    let triples = g.triples();
    let plain: Vec<(VertexId, VertexId)> = triples.iter().map(|&(u, v, _)| (u, v)).collect();
    // pack users and items in one square id space for the 2-D grid
    let side = (nu + nv) as u64;
    let packed: Vec<(VertexId, VertexId)> =
        plain.iter().map(|&(u, v)| (u, nu as u32 + v)).collect();
    let csr = Csr::from_edges(side, &packed);
    let m = DistMatrix::new_nearly_square(&csr, nodes);
    let mut sim = new_sim(nodes);
    alloc_matrix(&mut sim, &m, "combblas:R")?;
    // dense factor vectors (K per side)
    sim.alloc_all(
        ((nu + nv) * k * 8) as u64 / nodes as u64 + 1,
        "combblas:factors",
    )?;

    let init = |i: usize, j: usize, salt: u64| -> f64 {
        let x = (i as u64 * 131 + j as u64 + salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (x >> 11) as f64 / (1u64 << 53) as f64 * 0.1
    };
    let mut p: Vec<f64> = (0..nu * k).map(|i| init(i / k, i % k, 1)).collect();
    let mut q: Vec<f64> = (0..nv * k).map(|i| init(i / k, i % k, 2)).collect();

    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
    for _ in 0..iterations {
        // q-side update (eq. 12), then p-side (eq. 11) — each side costs
        // K passes over the nonzeros plus the SpMV communication pattern.
        sim.phase("gd:q-side");
        let mut grad_q = vec![0.0f64; nv * k];
        for &(u, v, r) in &triples {
            let pu = &p[u as usize * k..(u as usize + 1) * k];
            let qv = &q[v as usize * k..(v as usize + 1) * k];
            let e = f64::from(r) - dot(pu, qv);
            for i in 0..k {
                grad_q[v as usize * k + i] += e * pu[i] - lambda * qv[i];
            }
        }
        for (qi, gi) in q.iter_mut().zip(&grad_q) {
            *qi += gamma * gi;
        }
        charge_k_spmv_passes(&mut sim, &m, k, nnz, nodes);
        sim.end_step()?;

        sim.phase("gd:p-side");
        let mut grad_p = vec![0.0f64; nu * k];
        for &(u, v, r) in &triples {
            let pu = &p[u as usize * k..(u as usize + 1) * k];
            let qv = &q[v as usize * k..(v as usize + 1) * k];
            let e = f64::from(r) - dot(pu, qv);
            for i in 0..k {
                grad_p[u as usize * k + i] += e * qv[i] - lambda * pu[i];
            }
        }
        for (pi, gi) in p.iter_mut().zip(&grad_p) {
            *pi += gamma * gi;
        }
        charge_k_spmv_passes(&mut sim, &m, k, nnz, nodes);
        sim.end_step()?;
        sim.end_iteration();
    }
    Ok((p, q, sim.finish()))
}

/// Charges K SpMV-shaped passes over the rating nonzeros. This is the
/// §3.2 expressibility penalty in full: CombBLAS cannot fuse the K
/// latent dimensions into one sparse-matrix-dense-matrix pass, so the
/// sparse structure (12 bytes/entry) is re-streamed **K times**, once
/// per dimension, each pass also touching the dimension's dense vectors.
fn charge_k_spmv_passes(sim: &mut Sim, m: &DistMatrix<'_>, k: usize, nnz: u64, nodes: usize) {
    for p in 0..nodes {
        let share = m.block_nnz(p);
        sim.charge(
            p,
            Work {
                seq_bytes: share * 12 * k as u64 + share * k as u64 * 8 * 2,
                rand_accesses: share,
                flops: share * k as u64 * 4,
            },
        );
    }
    let _ = nnz;
    if nodes > 1 {
        let grid = m.grid();
        let mut router = Router::new(sim.nodes(), sim.profile());
        let x_seg = grid.cols_per_block() * 8 * k as u64;
        let y_seg = grid.rows_per_block() * 8 * k as u64;
        for p in 0..nodes {
            let (r, c) = grid.coords(p);
            if r == c {
                // factor-segment broadcast down the process column
                router.scatter(
                    sim,
                    p,
                    &m.column_peers(r, c),
                    x_seg * (grid.pr as u64 - 1),
                    x_seg * (grid.pr as u64 - 1),
                );
            } else {
                // partial-gradient reduction to the row's diagonal
                router.send(sim, p, grid.node_at(r, r), y_seg, y_seg);
            }
        }
        router.flush(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_cluster::HardwareSpec;
    use graphmaze_datagen::ratings::{self, RatingsGenConfig};
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};
    use graphmaze_native::triangle::orient_and_sort;
    use graphmaze_native::PAGERANK_R;

    fn rmat_el(scale: u32, seed: u64) -> graphmaze_graph::EdgeList {
        rmat::generate(&RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        })
    }

    #[test]
    fn pagerank_matches_native() {
        let el = rmat_el(9, 41);
        let g = DirectedGraph::from_edge_list(&el);
        let want = graphmaze_native::pagerank::pagerank(&g, PAGERANK_R, 5, 2);
        let (got, rep) = pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(rep.traffic.bytes_sent > 0);
    }

    #[test]
    fn pagerank_runs_on_non_square_node_counts_via_rect_grid() {
        let el = rmat_el(8, 42);
        let g = DirectedGraph::from_edge_list(&el);
        let want = graphmaze_native::pagerank::pagerank(&g, PAGERANK_R, 2, 1);
        let (got, _) = pagerank(&g, PAGERANK_R, 2, 8).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn bfs_matches_native() {
        let mut el = rmat_el(9, 43);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let want = graphmaze_native::bfs::bfs(&g, 0, 2);
        let (got, _) = bfs(&g, 0, 4).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn improved_bfs_matches_and_shrinks_traffic() {
        let mut el = rmat_el(10, 47);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let (plain, rep_plain) = bfs(&g, 0, 4).unwrap();
        let (comp, rep_comp) = bfs_improved(&g, 0, 4).unwrap();
        assert_eq!(plain, comp);
        assert!(
            rep_comp.traffic.bytes_sent < rep_plain.traffic.bytes_sent,
            "{} !< {}",
            rep_comp.traffic.bytes_sent,
            rep_plain.traffic.bytes_sent
        );
    }

    #[test]
    fn improved_triangles_match_and_use_less_memory() {
        let el = rmat_el(10, 48);
        let oriented = orient_and_sort(&el);
        let (want, rep_mat) = triangles(&oriented, 4).unwrap();
        let (got, rep_fused) = triangles_improved(&oriented, 4).unwrap();
        assert_eq!(got, want);
        assert!(rep_fused.peak_mem_bytes < rep_mat.peak_mem_bytes);
    }

    #[test]
    fn triangles_match_native() {
        let el = rmat_el(9, 44);
        let oriented = orient_and_sort(&el);
        let want = graphmaze_native::triangle::triangles(&oriented, 2);
        let (got, _) = triangles(&oriented, 4).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn triangles_oom_on_small_memory_nodes() {
        // shrink node memory to force the paper's A² OOM
        let el = rmat_el(10, 45);
        let oriented = orient_and_sort(&el);
        let mut spec = ClusterSpec::paper(4);
        spec.hw = HardwareSpec {
            mem_capacity_bytes: 16 << 10,
            ..spec.hw
        };
        match triangles_on(&oriented, 4, spec) {
            Err(SimError::OutOfMemory(o)) => {
                assert!(o.label.contains("A2") || o.label.contains("combblas"));
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn cf_gd_reduces_rmse() {
        let g = ratings::generate(&RatingsGenConfig {
            scale: 8,
            edge_factor: 8,
            num_items: 32,
            min_degree: 3,
            seed: 46,
        });
        let k = 4;
        let (p, q, rep) = cf_gd(&g, k, 0.05, 0.005, 10, 4).unwrap();
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let mut sse = 0.0;
        for (u, v, r) in g.triples() {
            let e = f64::from(r)
                - dot(
                    &p[u as usize * k..(u as usize + 1) * k],
                    &q[v as usize * k..(v as usize + 1) * k],
                );
            sse += e * e;
        }
        let rmse = (sse / g.num_ratings() as f64).sqrt();
        // initial factors ~0.05 ⇒ predictions ~0 ⇒ rmse ~3.7; GD must cut it
        assert!(rmse < 3.0, "rmse {rmse}");
        assert_eq!(rep.iterations, 10);
        assert!(rep.traffic.bytes_sent > 0);
    }
}
