//! GraphMat — auto-lowering vertex programs onto the SpMV backend.
//!
//! The paper's authors close the "ninja gap" by *compiling* the
//! productive abstraction onto the optimized one: users keep writing
//! "think like a vertex" programs, the backend runs generalized sparse
//! matrix–vector products. This engine is that lowering over our
//! existing machinery — any declarative [`GasProgram`] executes as one
//! masked SpMSpV per superstep on the 2-D [`DistMatrix`] decomposition,
//! with no per-program code:
//!
//! * the **scatter frontier** (every vertex broadcasts one message to
//!   all out-neighbors, the GAS invariant) is the sparse input vector
//!   `x`;
//! * the **gather monoid** is the semiring ⊕, reduced into a
//!   [`SparseAccumulator`] in frontier order — bit-identical to the
//!   arrival-order inbox fold of the vertex engines, so digests match
//!   Giraph's exactly;
//! * [`GasProgram::gather_mask`] becomes GraphBLAST's complement output
//!   mask `y⟨¬m⟩ = Aᵀ ⊕.⊗ x`, dropping products that provably cannot
//!   change a destination (e.g. deliveries to already-settled BFS
//!   vertices);
//! * **apply** runs per touched-or-active vertex between SpMSpVs, in
//!   ascending vertex order.
//!
//! Cost-wise the engine behaves like the C++ matrix backends: blocks
//! stream with prefetch and overlap ([`ExecProfile::graphmat`]), the
//! frontier broadcasts down grid columns and sparse partial results
//! reduce to the row diagonal through [`Router`], exactly the
//! communication pattern of `DistMatrix::spmspv_transpose_opt`.

use graphmaze_cluster::{ClusterSpec, ExecProfile, Router, Sim, SimError};
use graphmaze_graph::csr::{Csr, DirectedGraph, UndirectedGraph};
use graphmaze_graph::{RatingsGraph, VertexId};
use graphmaze_metrics::{RunReport, Work};

use crate::spmv::matrix::DistMatrix;
use crate::spmv::semiring::{GatherMonoid, SparseAccumulator};
use crate::vertex::engine::VertexGraphView;
use crate::vertex::gas::{ApplyContext, GasProgram, GatherMode, Gathered};
use crate::vertex::programs::{
    msbfs_rows, msbfs_seed_msgs, pack_bipartite, BfsProgram, CfGdProgram, MsBfsProgram,
    PageRankProgram, TriangleProgram, BFS_UNREACHED,
};

/// Streaming phases assumed for transient frontier/SPA buffers (the
/// backend never buffers a whole superstep; mirrors the vertex engine's
/// streamed path).
const STREAM_PHASES: u64 = 16;

/// The lowered inbox: a sparse accumulator shaped by the program's
/// declared gather mode.
enum Inbox<M: Clone> {
    Fold(GatherMonoid<M>, SparseAccumulator<M>),
    Collect(SparseAccumulator<Vec<M>>),
}

impl<M: Clone> Inbox<M> {
    fn touched(&self) -> usize {
        match self {
            Inbox::Fold(_, spa) => spa.len(),
            Inbox::Collect(spa) => spa.len(),
        }
    }

    fn indices(&self) -> &[u32] {
        match self {
            Inbox::Fold(_, spa) => spa.indices(),
            Inbox::Collect(spa) => spa.indices(),
        }
    }
}

/// A drained delivery, ready for one apply call.
enum Delivery<M> {
    Folded(M),
    All(Vec<M>),
}

/// Runs `program` to completion (or `max_supersteps`) by lowering it to
/// per-superstep masked SpMSpV over `out_csr`'s 2-D block decomposition.
/// Semantics — activation, halting, waking on delivery, the global
/// aggregator, termination — replicate the BSP vertex engine, so any
/// program produces the same values it would under Giraph/GraphLab.
#[allow(clippy::too_many_arguments)]
pub fn run<P: GasProgram>(
    out_csr: &Csr,
    weights: Option<&[f32]>,
    program: &P,
    mut values: Vec<P::Value>,
    initial_msgs: Vec<(VertexId, P::Msg)>,
    activate_all: bool,
    max_supersteps: u32,
    nodes: usize,
    iterations_per_superstep_group: u32,
) -> Result<(Vec<P::Value>, RunReport), SimError> {
    let n = out_csr.num_vertices();
    assert_eq!(values.len(), n, "one value per vertex");
    if let Some(w) = weights {
        assert_eq!(w.len(), out_csr.targets().len(), "one weight per edge");
    }
    let profile = ExecProfile::graphmat();
    let mut sim = Sim::new(ClusterSpec::paper(nodes), profile);
    let mut router = Router::with_config(nodes, profile.router);
    let matrix = DistMatrix::new_nearly_square(out_csr, nodes);
    let grid = matrix.grid();
    let view = VertexGraphView {
        out: out_csr,
        weights,
    };

    // static allocations: each process's block of A (4 B col id + 8 B
    // entry per nnz) plus its segments of the value and SPA vectors
    let seg = (n as u64).div_ceil(nodes as u64);
    for p in 0..nodes {
        let bytes = matrix.block_nnz(p) * 12 + seg * (program.value_bytes() + 8);
        sim.alloc(p, bytes, "graphmat:A+vectors")?;
    }

    let mut inbox: Inbox<P::Msg> = match program.gather() {
        GatherMode::Fold(monoid) => Inbox::Fold(monoid, SparseAccumulator::new(n)),
        GatherMode::Collect => Inbox::Collect(SparseAccumulator::new(n)),
    };
    // seed messages enter the superstep-0 SPA unmasked, in their given
    // order — exactly the vertex engine's pre-seeded inboxes
    match &mut inbox {
        Inbox::Fold(monoid, spa) => {
            for (v, m) in &initial_msgs {
                spa.scatter(*v, |acc| {
                    (monoid.combine)(&acc.unwrap_or_else(|| monoid.identity.clone()), m)
                });
            }
        }
        Inbox::Collect(spa) => {
            for (v, m) in &initial_msgs {
                spa.scatter(*v, |acc| {
                    let mut list = acc.unwrap_or_default();
                    list.push(m.clone());
                    list
                });
            }
        }
    }

    let mut active: Vec<bool> = vec![activate_all; n];
    if !activate_all {
        for &v in inbox.indices() {
            active[v as usize] = true;
        }
    }

    let mut superstep = 0u32;
    let mut prev_aggregate = 0.0f64;
    while superstep < max_supersteps {
        if !active.iter().any(|&a| a) {
            break;
        }
        sim.phase(&format!("superstep:{superstep}"));

        // ---- apply: drain the SPA and step every active vertex, in
        // ascending vertex order (the SPA drains sorted, and for an
        // ascending frontier its folds replay the engines' inbox order)
        let delivered: Vec<(u32, Delivery<P::Msg>)> = match &mut inbox {
            Inbox::Fold(_, spa) => spa
                .drain_sorted()
                .into_iter()
                .map(|(i, m)| (i, Delivery::Folded(m)))
                .collect(),
            Inbox::Collect(spa) => spa
                .drain_sorted()
                .into_iter()
                .map(|(i, l)| (i, Delivery::All(l)))
                .collect(),
        };
        let mut aggregate_acc = 0.0f64;
        let mut frontier: Vec<(VertexId, P::Msg)> = Vec::new();
        let mut cursor = 0usize;
        for v in 0..n {
            if !active[v] {
                continue;
            }
            let hit = cursor < delivered.len() && delivered[cursor].0 as usize == v;
            let gathered = if hit {
                match &delivered[cursor].1 {
                    Delivery::Folded(m) => Gathered::Folded(m.clone()),
                    Delivery::All(l) => Gathered::All(l.as_slice()),
                }
            } else {
                match &inbox {
                    Inbox::Fold(monoid, _) => Gathered::Folded(monoid.identity.clone()),
                    Inbox::Collect(_) => Gathered::All(&[]),
                }
            };
            if hit {
                cursor += 1;
            }
            let mut actx = ApplyContext::new(prev_aggregate);
            let scatter = program.apply(
                superstep,
                v as VertexId,
                &mut values[v],
                gathered,
                &view,
                &mut actx,
            );
            aggregate_acc += actx.aggregate;
            if actx.halt {
                active[v] = false;
            }
            if let Some(msg) = scatter {
                frontier.push((v as VertexId, msg));
            }
        }

        // ---- gather for the next superstep: one masked SpMSpV; the
        // complement mask drops products that cannot affect their target
        let mask: Vec<bool> = values.iter().map(|val| program.gather_mask(val)).collect();
        let per_block = match &mut inbox {
            Inbox::Fold(monoid, spa) => {
                let monoid = monoid.clone();
                matrix.spmspv_monoid(&frontier, &monoid, Some(&mask), spa)
            }
            Inbox::Collect(spa) => matrix.spmspv_collect(&frontier, Some(&mask), spa),
        };
        // a message exists for every traversed edge, masked or not
        let traversed: u64 = per_block.iter().sum();
        let any_message = traversed > 0;

        // ---- cost model: block streaming + the 2-D SpMSpV exchange
        let total_msg_bytes: u64 = frontier.iter().map(|(_, m)| program.message_bytes(m)).sum();
        let elem = if frontier.is_empty() {
            0
        } else {
            total_msg_bytes / frontier.len() as u64
        };
        let mut transient = vec![0u64; nodes];
        for (p, &e) in per_block.iter().enumerate() {
            sim.charge(
                p,
                Work {
                    seq_bytes: e * (4 + elem),
                    rand_accesses: e,
                    flops: e * program.flops_per_msg(),
                },
            );
            transient[p] = e * (4 + elem) / STREAM_PHASES + 1;
            sim.alloc(p, transient[p], "graphmat:frontier+spa")?;
        }
        if nodes > 1 {
            let pr = grid.pr as u64;
            let in_bytes = frontier.len() as u64 * 4 + total_msg_bytes;
            let in_raw = frontier.len() as u64 * (4 + elem);
            let out_bytes = inbox.touched() as u64 * (4 + elem);
            for p in 0..nodes {
                let (r, c) = grid.coords(p);
                // frontier broadcast down the process column
                if r == c {
                    router.scatter(
                        &mut sim,
                        p,
                        &matrix.column_peers(r, c),
                        in_bytes / pr * (pr - 1) + 1,
                        in_raw,
                    );
                }
                // sparse partial SPAs gathered at the row's diagonal
                if r != c {
                    router.send(
                        &mut sim,
                        p,
                        grid.node_at(r, r),
                        out_bytes / (pr * pr) + 1,
                        out_bytes / (pr * pr) + 1,
                    );
                }
            }
        }
        for (p, &b) in transient.iter().enumerate() {
            sim.free(p, b);
        }
        router.flush(&mut sim);
        sim.end_step()?;

        // aggregator allreduce: each node contributes 8 bytes
        router.allreduce(&mut sim, 8);
        prev_aggregate = aggregate_acc;
        // wake destinations with (unmasked) deliveries
        for &v in inbox.indices() {
            active[v as usize] = true;
        }
        superstep += 1;
        if iterations_per_superstep_group > 0
            && superstep.is_multiple_of(iterations_per_superstep_group)
        {
            sim.end_iteration();
        }
        if !any_message && active.iter().all(|&a| !a) {
            break;
        }
    }
    Ok((values, sim.finish()))
}

/// PageRank lowered onto SpMV — the paper's eq. (9) recovered
/// automatically from Algorithm 1's vertex program.
pub fn pagerank(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let prog = PageRankProgram { r, iterations };
    let init = vec![1.0f64; g.num_vertices()];
    run(
        &g.out,
        None,
        &prog,
        init,
        vec![],
        true,
        iterations + 2,
        nodes,
        1,
    )
}

/// BFS lowered onto masked SpMSpV — eq. (10) with the settled set as
/// the complement mask.
pub fn bfs(
    g: &UndirectedGraph,
    source: VertexId,
    nodes: usize,
) -> Result<(Vec<u32>, RunReport), SimError> {
    let mut init = vec![BFS_UNREACHED; g.num_vertices()];
    init[source as usize] = 0;
    let max = g.num_vertices() as u32 + 2;
    run(
        &g.adj,
        None,
        &BfsProgram,
        init,
        vec![(source, 0)],
        false,
        max,
        nodes,
        1,
    )
}

/// Bit-parallel multi-source BFS: the word-wise OR gather lowers onto
/// the `OR_PASS` algebra, one SpMSpV advancing all sources of a word.
pub fn msbfs(
    g: &UndirectedGraph,
    sources: &[VertexId],
    nodes: usize,
) -> Result<(Vec<Vec<u32>>, RunReport), SimError> {
    let prog = MsBfsProgram {
        num_sources: sources.len(),
    };
    let init = vec![prog.initial_state(); g.num_vertices()];
    let max = g.num_vertices() as u32 + 2;
    let (values, report) = run(
        &g.adj,
        None,
        &prog,
        init,
        msbfs_seed_msgs(sources),
        false,
        max,
        nodes,
        1,
    )?;
    Ok((msbfs_rows(&values, sources.len()), report))
}

/// Triangle counting on a DAG orientation: collect-mode neighbor lists
/// stream through the SPA instead of being buffered whole.
pub fn triangles(oriented: &Csr, nodes: usize) -> Result<(u64, RunReport), SimError> {
    let (values, report) = run(
        oriented,
        None,
        &TriangleProgram,
        vec![0u64; oriented.num_vertices()],
        vec![],
        true,
        4,
        nodes,
        2,
    )?;
    Ok((values.iter().sum(), report))
}

/// Collaborative filtering by alternating GD, factor vectors exchanged
/// as collect-mode SpMSpV products over the bipartite adjacency.
pub fn cf_gd(
    g: &RatingsGraph,
    k: usize,
    lambda: f64,
    gamma: f64,
    iterations: u32,
    nodes: usize,
) -> Result<(Vec<Vec<f64>>, RunReport), SimError> {
    let (csr, weights) = pack_bipartite(g);
    let prog = CfGdProgram {
        num_users: g.num_users(),
        k,
        lambda,
        gamma,
        iterations,
    };
    let init: Vec<Vec<f64>> = (0..csr.num_vertices())
        .map(|i| {
            (0..k)
                .map(|j| {
                    let x = (i as u64 * 31 + j as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    (x >> 11) as f64 / (1u64 << 53) as f64 * 0.1
                })
                .collect()
        })
        .collect();
    run(
        &csr,
        Some(&weights),
        &prog,
        init,
        vec![],
        true,
        2 * iterations + 2,
        nodes,
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::{giraph, graphlab};
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};
    use graphmaze_native::pagerank::pagerank as native_pagerank;
    use graphmaze_native::triangle::{orient_and_sort, triangles as native_triangles};
    use graphmaze_native::PAGERANK_R;

    fn rmat_el(scale: u32, seed: u64) -> graphmaze_graph::EdgeList {
        rmat::generate(&RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        })
    }

    #[test]
    fn pagerank_is_bit_identical_to_giraph() {
        let el = rmat_el(9, 31);
        let g = DirectedGraph::from_edge_list(&el);
        let (want, _) = giraph::pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        let (got, _) = pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        assert_eq!(got, want, "lowered PageRank must replay the inbox fold");
        let native = native_pagerank(&g, PAGERANK_R, 5, 2);
        for (a, b) in got.iter().zip(&native) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn bfs_matches_native_with_masked_gather() {
        let mut el = rmat_el(9, 34);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let (dist, _) = bfs(&g, 0, 4).unwrap();
        let want = graphmaze_native::bfs::bfs(&g, 0, 2);
        assert_eq!(dist, want);
    }

    #[test]
    fn msbfs_matches_native_rows() {
        let mut el = rmat_el(8, 35);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let sources: Vec<u32> = (0..65u32).collect(); // spans two words
        let (rows, _) = msbfs(&g, &sources, 4).unwrap();
        let want = graphmaze_native::msbfs::msbfs(&g, &sources, 2);
        assert_eq!(rows, want);
    }

    #[test]
    fn triangles_match_native_count() {
        let el = rmat_el(9, 33);
        let oriented = orient_and_sort(&el);
        let want = native_triangles(&oriented, 2);
        let (got, _) = triangles(&oriented, 4).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn closes_the_ninja_gap_but_never_beats_native() {
        let el = rmat_el(10, 36);
        let g = DirectedGraph::from_edge_list(&el);
        let (_, gm) = pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        let (_, gi) = giraph::pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        let (_, gl) = graphlab::pagerank(&g, PAGERANK_R, 5, 4).unwrap();
        let (_, native) = graphmaze_native::pagerank::pagerank_cluster(
            &g,
            PAGERANK_R,
            5,
            graphmaze_native::NativeOptions::all(),
            4,
        )
        .unwrap();
        assert!(
            gm.sim_seconds < gi.sim_seconds && gm.sim_seconds < gl.sim_seconds,
            "graphmat {} vs giraph {} / graphlab {}",
            gm.sim_seconds,
            gi.sim_seconds,
            gl.sim_seconds
        );
        assert!(
            gm.sim_seconds >= native.sim_seconds * 0.99,
            "graphmat {} must not beat native {}",
            gm.sim_seconds,
            native.sim_seconds
        );
    }

    #[test]
    fn masked_bfs_sends_less_than_giraph() {
        let mut el = rmat_el(10, 37);
        el.remove_self_loops();
        el.symmetrize();
        let g = UndirectedGraph::from_symmetric_edge_list(&el);
        let (d1, gm) = bfs(&g, 0, 4).unwrap();
        let (d2, gi) = giraph::bfs(&g, 0, 4).unwrap();
        assert_eq!(d1, d2);
        assert!(
            gm.traffic.bytes_sent < gi.traffic.bytes_sent,
            "{} !< {}",
            gm.traffic.bytes_sent,
            gi.traffic.bytes_sent
        );
    }
}
