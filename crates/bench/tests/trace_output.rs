//! The trace artifacts (`--trace DIR`) must be **byte-identical**
//! whatever `--jobs` was: they are rendered from the ordered sweep
//! results after the barrier and contain only simulated quantities, so
//! worker scheduling must not leak into the output.

use std::path::{Path, PathBuf};

use graphmaze_bench::{run_sweep, ReproConfig};
use graphmaze_core::prelude::*;

fn small_sweep() -> Sweep {
    let mut sweep = Sweep::new("tracecheck");
    for fw in [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
    ] {
        for alg in [Algorithm::PageRank, Algorithm::Bfs] {
            sweep.push(SweepCell {
                label: alg.name().to_string(),
                algorithm: alg,
                framework: fw,
                spec: WorkloadSpec::Rmat {
                    scale: 8,
                    edge_factor: 8,
                    seed: 7,
                },
                nodes: 2,
                factor: 1.0,
                params: BenchParams::default(),
                faults: FaultPlan::none(),
            });
        }
    }
    // one recovered-kill cell so the recovery lane carries real spans
    sweep.push(SweepCell {
        label: "giraph-kill".into(),
        algorithm: Algorithm::PageRank,
        framework: Framework::Giraph,
        spec: WorkloadSpec::Rmat {
            scale: 8,
            edge_factor: 8,
            seed: 7,
        },
        nodes: 2,
        factor: 1.0,
        params: BenchParams::default(),
        faults: FaultPlan::parse("seed=9,kill=1@2,ckpt=2").unwrap(),
    });
    sweep
}

fn run_traced(base: &Path, sub: &str, jobs: usize) -> PathBuf {
    let dir = base.join(sub);
    let cfg = ReproConfig {
        jobs,
        out_dir: None,
        trace_dir: Some(dir.clone()),
        ..ReproConfig::default()
    };
    let report = run_sweep(&cfg, &small_sweep());
    assert_eq!(report.failed, 0, "all trace cells must succeed");
    dir
}

/// Every file under `dir`, as sorted `relative path → bytes`.
fn snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).unwrap()));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn trace_output_is_byte_identical_serial_vs_parallel() {
    let base = std::env::temp_dir().join(format!("gm-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let d1 = run_traced(&base, "j1", 1);
    let d8 = run_traced(&base, "j8", 8);

    let (s1, s8) = (snapshot(&d1), snapshot(&d8));
    assert!(!s1.is_empty(), "trace directory must not be empty");
    assert_eq!(
        s1.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        s8.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "same artifact set"
    );
    for ((name, b1), (_, b8)) in s1.iter().zip(&s8) {
        assert_eq!(b1, b8, "{name} differs between --jobs 1 and --jobs 8");
    }

    // structural sanity of the Chrome trace file: one JSON object with a
    // traceEvents array, one process per cell, per-step CSVs alongside
    let json = std::str::from_utf8(
        &s1.iter()
            .find(|(n, _)| n == "tracecheck.trace.json")
            .expect("trace json present")
            .1,
    )
    .unwrap()
    .to_string();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
    assert!(json.trim_end().ends_with("]}"));
    assert_eq!(
        json.matches("\"process_name\"").count(),
        11,
        "one named process per cell"
    );
    assert!(json.contains("\"ph\":\"X\""), "complete events present");
    // the faulted Giraph cell must emit spans on the recovery lane
    // (tid 4) — metadata rows carry no "ts", so this matches X events only
    assert!(
        json.contains("\"tid\":4,\"ts\":"),
        "recovery-lane spans present for the kill cell"
    );
    let csvs = s1
        .iter()
        .filter(|(n, _)| n.starts_with("tracecheck/") && n.ends_with(".csv"))
        .count();
    assert_eq!(csvs, 11, "one per-step CSV per successful cell");

    let _ = std::fs::remove_dir_all(&base);
}
