//! `repro` — regenerates every table and figure of Satish et al.
//! (SIGMOD 2014) on the simulated cluster.
//!
//! ```sh
//! cargo run --release -p graphmaze-bench --bin repro -- all
//! cargo run --release -p graphmaze-bench --bin repro -- all --jobs 8
//! cargo run --release -p graphmaze-bench --bin repro -- fig4 --scale 15
//! cargo run --release -p graphmaze-bench --bin repro -- all --resume   # after a kill
//! ```
//!
//! Artifacts (CSV per experiment) land in `results/` unless `--no-csv`,
//! next to the sweep journal (`results/journal.jsonl`) that `--resume`
//! reads to skip already-measured cells.

use std::sync::atomic::Ordering;

use graphmaze_bench::cli::{Opt, OptionTable};
use graphmaze_bench::experiments::{extras, figures, tables};
use graphmaze_bench::ReproConfig;

/// The option table: drives both parsing and the rendered `usage:`
/// block, so help and parser can never drift (see
/// `graphmaze_bench::cli`).
const OPTIONS: OptionTable = OptionTable {
    opts: &[
        Opt::value(
            "--scale",
            "N",
            "target log2 vertex count for generated graphs (default 13)",
        ),
        Opt::value("--seed", "N", "generator seed (default 20140622)"),
        Opt::value(
            "--jobs",
            "N",
            "sweep worker threads (default 1; results are\nbyte-identical to a serial run)",
        ),
        Opt::flag(
            "--resume",
            "skip cells already recorded in the sweep journal\n\
             (results/journal.jsonl) from an interrupted run",
        ),
        Opt::flag(
            "--progress",
            "print live per-cell progress events (started/finished/\n\
             failed, cells remaining, elapsed) to stderr",
        )
        .with_alias("-v"),
        Opt::value(
            "--trace",
            "DIR",
            "write a Chrome trace-event JSON (Perfetto-loadable) and\n\
             per-step CSVs for every sweep under DIR",
        ),
        Opt::value(
            "--faults",
            "SPEC",
            "run every sweep cell under a fault-injection plan, e.g.\n\
             seed=1,straggler=0.05x4,drop=0.001,linkdrop=0.01,\n\
             dup=0.001,slowlink=0-1:4,mempress=0.01:64M,kill=0@3,\n\
             ckpt=2 (see DESIGN.md \"Resilience\")",
        ),
        Opt::value(
            "--frameworks",
            "LIST",
            "comma-separated framework filter for the experiments\n\
             that honour one (ninjagap), e.g. giraph,graphmat;\n\
             the native baseline always runs",
        ),
        Opt::value(
            "--cell-timeout",
            "SECS",
            "abandon any sweep cell that exceeds SECS wall-clock\n\
             seconds, recording a `timeout` outcome in the journal\n\
             (quarantined by --resume, not retried)",
        ),
        Opt::flag(
            "--telemetry",
            "record sweep counters and simulated-time histograms into\n\
             a metrics registry, rendered to results/metrics.prom\n\
             (Prometheus text) at exit",
        ),
        Opt::flag(
            "--list",
            "list every experiment with its sweep-cell count and exit",
        ),
        Opt::flag(
            "--no-extrapolate",
            "report raw scaled-down seconds instead of paper-scale",
        ),
        Opt::flag(
            "--no-csv",
            "do not write results/*.csv (also disables the journal)",
        ),
        Opt::value("--out", "DIR", "CSV output directory (default results/)"),
        Opt::flag("--help", "print this help and exit").with_alias("-h"),
    ],
};

fn usage() -> String {
    format!(
        "\
usage: repro <experiment>... [options]

experiments:
  table2 table3 table4 table5 table6 table7 tabler
  fig3 fig4 fig5 fig6 fig7
  netestimate commmatrix sgdvsgd giraphsplit ablations strongscaling roadmap
  relatedwork resilience msbfs ninjagap elastic
  all         (everything above)

options:
{}",
        OPTIONS.render_options()
    )
}

/// `(name, sweep cells, description)` for `--list`. Cell counts are the
/// defaults (they do not depend on `--scale`); "direct" experiments run
/// engines without the sweep executor.
const LISTING: [(&str, &str, &str); 24] = [
    ("table2", "direct", "framework capability matrix"),
    ("table3", "direct", "dataset inventory and scaled stand-ins"),
    ("table4", "8", "native algorithm throughput at paper scale"),
    (
        "fig3",
        "98",
        "per-dataset runtimes vs native, single node (also table5)",
    ),
    ("table5", "from fig3", "geomean single-node slowdowns"),
    (
        "fig4",
        "140",
        "weak scaling across node counts (also table6)",
    ),
    ("table6", "from fig4", "geomean multi-node slowdowns"),
    ("fig5", "20", "large real-world graphs, multi-node"),
    ("fig6", "20", "resource utilization: CPU, network, memory"),
    ("fig7", "direct", "BFS direction-optimization ablation"),
    ("table7", "4", "SociaLite network-stack fix before/after"),
    (
        "tabler",
        "18",
        "resilience under injected faults (extension)",
    ),
    (
        "netestimate",
        "5",
        "network traffic model vs measured bytes",
    ),
    (
        "commmatrix",
        "5",
        "per-(src,dst) wire-byte communication matrix",
    ),
    ("sgdvsgd", "direct", "SGD vs GD convergence for CF"),
    (
        "giraphsplit",
        "direct",
        "Giraph superstep-split memory relief",
    ),
    ("ablations", "direct", "native optimization ablations"),
    ("strongscaling", "28", "strong scaling across node counts"),
    ("roadmap", "direct", "framework-choice decision table"),
    (
        "relatedwork",
        "direct",
        "related-framework qualitative table",
    ),
    (
        "resilience",
        "22",
        "retransmission overhead vs link-drop probability (extension)",
    ),
    (
        "msbfs",
        "8",
        "bit-parallel multi-source BFS: engine sweep + wall-clock race (extension)",
    ),
    (
        "ninjagap",
        "20",
        "GraphMat lowering vs hand-tuned frameworks vs native (extension)",
    ),
    (
        "elastic",
        "9",
        "elastic membership: join/leave/heterogeneous hw mid-run (extension)",
    ),
];

fn print_listing() {
    println!("{:<14} {:>9}  description", "experiment", "cells");
    for (name, cells, desc) in LISTING {
        println!("{name:<14} {cells:>9}  {desc}");
    }
    println!("\n`all` runs everything above in order, deduplicating fig3/table5 and fig4/table6.");
}

/// Every dispatchable experiment name, in `all` execution order.
const EXPERIMENTS: [&str; 24] = [
    "table2",
    "table3",
    "table4",
    "fig3",
    "table5",
    "fig4",
    "table6",
    "fig5",
    "fig6",
    "fig7",
    "table7",
    "tabler",
    "netestimate",
    "commmatrix",
    "sgdvsgd",
    "giraphsplit",
    "ablations",
    "strongscaling",
    "roadmap",
    "relatedwork",
    "resilience",
    "msbfs",
    "ninjagap",
    "elastic",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{}", usage());
        std::process::exit(2);
    }
    let parsed = OPTIONS.parse(args).unwrap_or_else(|e| die(&e));
    if parsed.flag("--help") {
        print!("{}", usage());
        return;
    }
    let mut cfg = ReproConfig::default();
    fn or_die<T>(r: Result<T, String>) -> T {
        r.unwrap_or_else(|e| die(&e))
    }
    if let Some(v) = or_die(parsed.int("--scale")) {
        cfg.target_scale = v;
    }
    if let Some(v) = or_die(parsed.int("--seed")) {
        cfg.seed = v;
    }
    if let Some(n) = or_die(parsed.int::<usize>("--jobs")) {
        if n < 1 {
            die("--jobs needs a positive integer");
        }
        cfg.jobs = n;
    }
    cfg.resume = parsed.flag("--resume");
    cfg.progress = parsed.flag("--progress");
    cfg.trace_dir = parsed.raw("--trace").map(Into::into);
    if let Some(spec) = parsed.raw("--faults") {
        cfg.faults = graphmaze_core::cluster::FaultPlan::parse(spec)
            .unwrap_or_else(|e| die(&format!("bad --faults spec: {e}")));
    }
    if let Some(spec) = parsed.raw("--frameworks") {
        cfg.frameworks = Some(
            graphmaze_bench::cli::parse_framework_filter(spec)
                .unwrap_or_else(|e| die(&format!("bad --frameworks spec: {e}"))),
        );
    }
    if let Some(secs) = or_die(parsed.num("--cell-timeout")) {
        if !secs.is_finite() || secs < 0.0 {
            die("--cell-timeout needs a non-negative number of seconds");
        }
        cfg.cell_timeout = Some(std::time::Duration::from_secs_f64(secs));
    }
    if parsed.flag("--no-extrapolate") {
        cfg.extrapolate = false;
    }
    if parsed.flag("--no-csv") {
        cfg.out_dir = None;
    }
    if let Some(dir) = parsed.raw("--out") {
        cfg.out_dir = Some(dir.into());
    }
    if parsed.flag("--telemetry") {
        cfg.telemetry = Some(std::sync::Arc::new(graphmaze_core::metrics::Registry::new()));
    }
    if parsed.flag("--list") {
        print_listing();
        return;
    }
    let mut experiments: Vec<String> = parsed.positional;
    // validate every experiment name up front: a typo must fail the whole
    // invocation immediately, not hours into `repro all`
    for exp in &experiments {
        if exp != "all" && !EXPERIMENTS.contains(&exp.as_str()) {
            die(&format!("unknown experiment `{exp}`"));
        }
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    // a fresh (non-resume) run must not inherit stale journal entries
    if !cfg.resume {
        if let Some(journal) = cfg.journal_path() {
            let _ = std::fs::remove_file(journal);
        }
    }
    println!(
        "graphmaze repro — scale 2^{}, seed {}, extrapolation {}, {} job{}{}\n",
        cfg.target_scale,
        cfg.seed,
        if cfg.extrapolate {
            "on (paper-scale seconds)"
        } else {
            "off (raw sim seconds)"
        },
        cfg.jobs,
        if cfg.jobs == 1 { "" } else { "s" },
        if cfg.resume {
            ", resuming from journal"
        } else {
            ""
        },
    );
    if cfg.faults.is_active() {
        println!("fault injection: {}\n", cfg.faults.key());
    }
    // fig3/fig4 also produce table5/table6; avoid running them twice
    let mut done_fig3 = false;
    let mut done_fig4 = false;
    for exp in &experiments {
        let text = match exp.as_str() {
            "table2" => tables::table2(&cfg),
            "table3" => tables::table3(&cfg),
            "table4" => tables::table4(&cfg),
            "fig3" | "table5" => {
                if done_fig3 {
                    continue;
                }
                done_fig3 = true;
                figures::fig3_and_table5(&cfg)
            }
            "fig4" | "table6" => {
                if done_fig4 {
                    continue;
                }
                done_fig4 = true;
                figures::fig4_and_table6(&cfg)
            }
            "fig5" => figures::fig5(&cfg),
            "fig6" => figures::fig6(&cfg),
            "fig7" => figures::fig7(&cfg),
            "table7" => tables::table7(&cfg),
            "tabler" => tables::table_r(&cfg),
            "netestimate" => extras::net_estimate(&cfg),
            "commmatrix" => extras::comm_matrix(&cfg),
            "sgdvsgd" => extras::sgd_vs_gd(&cfg),
            "giraphsplit" => extras::giraph_split(&cfg),
            "ablations" => extras::ablations(&cfg),
            "strongscaling" => extras::strong_scaling(&cfg),
            "roadmap" => extras::roadmap(&cfg),
            "relatedwork" => extras::related_work(&cfg),
            "resilience" => extras::resilience(&cfg),
            "msbfs" => extras::msbfs(&cfg),
            "ninjagap" => extras::ninja_gap(&cfg),
            "elastic" => extras::elastic(&cfg),
            other => unreachable!("`{other}` passed validation"),
        };
        println!("{text}");
        println!("{}", "=".repeat(72));
    }
    let cells = cfg.stats.cells.load(Ordering::Relaxed);
    if cells > 0 {
        println!(
            "sweep summary: {cells} cells — {} run, {} resumed, {} failed; \
             workload cache: {} built, {} reused",
            cfg.stats.ran.load(Ordering::Relaxed),
            cfg.stats.resumed.load(Ordering::Relaxed),
            cfg.stats.failed.load(Ordering::Relaxed),
            cfg.cache.misses(),
            cfg.cache.hits(),
        );
    }
    if let Some(registry) = &cfg.telemetry {
        let text = graphmaze_core::metrics::render_exposition(registry);
        match &cfg.out_dir {
            Some(dir) => {
                let _ = std::fs::create_dir_all(dir);
                let path = dir.join("metrics.prom");
                match std::fs::write(&path, &text) {
                    Ok(()) => println!("telemetry exposition written to {}", path.display()),
                    Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
                }
            }
            // --no-csv: nowhere to put the artifact, print it instead
            None => print!("{text}"),
        }
    }
    if let Some(dir) = &cfg.out_dir {
        println!("CSV artifacts written to {}/", dir.display());
        if cells > 0 {
            println!(
                "sweep journal at {}/journal.jsonl (re-run with --resume to skip completed cells)",
                dir.display()
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{}", usage());
    std::process::exit(2)
}
