//! `gengraph` — the released data generators (§4.1.2) as a CLI:
//! Graph500 RMAT graphs, the power-law ratings generator, and the
//! Table 3 dataset stand-ins, written as text or binary edge lists.
//!
//! ```sh
//! gengraph rmat --scale 20 --edge-factor 16 --out graph.bin
//! gengraph rmat --scale 16 --params triangle --format text --out tc.txt
//! gengraph ratings --scale 18 --items 17770 --out ratings.bin
//! gengraph dataset --name livejournal --scale-down 8 --out lj.bin
//! gengraph stats --scale 16            # degree/component analysis only
//! ```

use std::path::PathBuf;

use graphmaze_core::datagen::{ratings, rmat, Dataset, RatingsGenConfig, RmatConfig, RmatParams};
use graphmaze_core::graph::cc::connected_components;
use graphmaze_core::graph::csr::Csr;
use graphmaze_core::graph::degree::{DegreeHistogram, DegreeStats};
use graphmaze_core::graph::io;
use graphmaze_core::graph::{EdgeList, WeightedEdgeList};

const USAGE: &str = "\
usage: gengraph <command> [options]

commands:
  rmat      generate a Graph500 RMAT graph
  ratings   generate a power-law ratings matrix (fold generator, §4.1.2)
  dataset   generate a Table 3 real-world stand-in
  stats     generate and print degree/component statistics only

options:
  --scale N         log2 vertex count (default 16)
  --edge-factor N   edges per vertex (default 16)
  --params P        rmat parameter family: graph500 | triangle | ratings
  --seed N          generator seed (default 1)
  --items N         number of items for `ratings` (default 4096)
  --name NAME       dataset name for `dataset` (facebook|wikipedia|
                    livejournal|twitter|netflix|yahoo-music)
  --scale-down N    dataset scale-down exponent (default 8)
  --format F        text | binary (default binary)
  --out PATH        output file (stats printed to stdout if omitted)
";

struct Opts {
    scale: u32,
    edge_factor: u32,
    params: RmatParams,
    seed: u64,
    items: u32,
    name: String,
    scale_down: u32,
    text: bool,
    out: Option<PathBuf>,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        scale: 16,
        edge_factor: 16,
        params: RmatParams::GRAPH500,
        seed: 1,
        items: 4096,
        name: String::new(),
        scale_down: 8,
        text: false,
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> String {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--scale" => {
                o.scale = next("--scale")
                    .parse()
                    .unwrap_or_else(|_| die("bad --scale"))
            }
            "--edge-factor" => {
                o.edge_factor = next("--edge-factor")
                    .parse()
                    .unwrap_or_else(|_| die("bad --edge-factor"))
            }
            "--params" => {
                o.params = match next("--params").as_str() {
                    "graph500" => RmatParams::GRAPH500,
                    "triangle" => RmatParams::TRIANGLE,
                    "ratings" => RmatParams::RATINGS,
                    other => die(&format!("unknown params family {other}")),
                }
            }
            "--seed" => o.seed = next("--seed").parse().unwrap_or_else(|_| die("bad --seed")),
            "--items" => {
                o.items = next("--items")
                    .parse()
                    .unwrap_or_else(|_| die("bad --items"))
            }
            "--name" => o.name = next("--name"),
            "--scale-down" => {
                o.scale_down = next("--scale-down")
                    .parse()
                    .unwrap_or_else(|_| die("bad --scale-down"))
            }
            "--format" => {
                o.text = match next("--format").as_str() {
                    "text" => true,
                    "binary" => false,
                    other => die(&format!("unknown format {other}")),
                }
            }
            "--out" => o.out = Some(next("--out").into()),
            other => die(&format!("unknown option {other}")),
        }
    }
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let o = parse(&args[1..]);
    match cmd.as_str() {
        "rmat" => {
            let cfg = RmatConfig {
                scale: o.scale,
                edge_factor: o.edge_factor,
                params: o.params,
                seed: o.seed,
                scramble_ids: true,
                threads: 0,
            };
            let el = rmat::generate(&cfg);
            emit_graph(&el, &o);
        }
        "ratings" => {
            let g = ratings::generate(&RatingsGenConfig {
                scale: o.scale,
                edge_factor: o.edge_factor,
                num_items: o.items,
                min_degree: 5,
                seed: o.seed,
            });
            let mut el = WeightedEdgeList::new(u64::from(g.num_users()) + u64::from(g.num_items()));
            for (u, v, r) in g.triples() {
                el.push(u, g.num_users() + v, r);
            }
            match &o.out {
                Some(path) => {
                    let f = std::fs::File::create(path).unwrap_or_else(|e| die(&e.to_string()));
                    io::write_binary_weighted(f, &el).unwrap_or_else(|e| die(&e.to_string()));
                    println!(
                        "wrote {} ratings ({} users x {} items) to {}",
                        g.num_ratings(),
                        g.num_users(),
                        g.num_items(),
                        path.display()
                    );
                }
                None => println!(
                    "{} ratings, {} users x {} items, mean {:.2} stars",
                    g.num_ratings(),
                    g.num_users(),
                    g.num_items(),
                    g.mean_rating()
                ),
            }
        }
        "dataset" => {
            let ds = match o.name.as_str() {
                "facebook" => Dataset::FacebookLike,
                "wikipedia" => Dataset::WikipediaLike,
                "livejournal" => Dataset::LiveJournalLike,
                "twitter" => Dataset::TwitterLike,
                "netflix" => Dataset::NetflixLike,
                "yahoo-music" => Dataset::YahooMusicLike,
                other => die(&format!("unknown dataset `{other}` (see --help)")),
            };
            if ds.bipartite() {
                die("use `gengraph ratings` semantics for bipartite datasets: netflix/yahoo-music stand-ins are generated with `dataset` only for stats");
            }
            let el = ds.generate_graph(o.scale_down, o.seed);
            emit_graph(&el, &o);
        }
        "stats" => {
            let cfg = RmatConfig {
                scale: o.scale,
                edge_factor: o.edge_factor,
                params: o.params,
                seed: o.seed,
                scramble_ids: true,
                threads: 0,
            };
            let el = rmat::generate(&cfg);
            print_stats(&el);
        }
        "-h" | "--help" => print!("{USAGE}"),
        other => die(&format!("unknown command `{other}`")),
    }
}

fn emit_graph(el: &EdgeList, o: &Opts) {
    match &o.out {
        Some(path) => {
            let f = std::fs::File::create(path).unwrap_or_else(|e| die(&e.to_string()));
            let res = if o.text {
                io::write_text_edge_list(f, el)
            } else {
                io::write_binary_edge_list(f, el)
            };
            res.unwrap_or_else(|e| die(&e.to_string()));
            println!(
                "wrote {} vertices, {} edges to {}",
                el.num_vertices(),
                el.num_edges(),
                path.display()
            );
        }
        None => print_stats(el),
    }
}

fn print_stats(el: &EdgeList) {
    let csr = Csr::from_edges(el.num_vertices(), el.edges());
    let stats = DegreeStats::of(&csr);
    let hist = DegreeHistogram::of(&csr);
    let (_, cc) = connected_components(el.num_vertices() as usize, el.edges());
    println!("vertices            {}", stats.num_vertices);
    println!("edges               {}", stats.num_edges);
    println!("max degree          {}", stats.max);
    println!("mean degree         {:.2}", stats.mean);
    println!("isolated fraction   {:.3}", stats.isolated_fraction);
    println!("degree gini         {:.3}", stats.gini);
    if let Some(slope) = hist.log_log_slope() {
        println!("log-log tail slope  {slope:.2}");
    }
    println!("components          {}", cc.num_components);
    println!("largest component   {:.1}%", cc.largest_fraction * 100.0);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2)
}
