//! Tables 3, 4 and 7, plus the Table R resilience extension.

use graphmaze_core::graph::degree::DegreeStats;
use graphmaze_core::prelude::*;
use graphmaze_core::report::{fmt_secs, format_table};

use super::{cell_report, reported_seconds};
use crate::{standard_params, ReproConfig};

/// Table 3 — the dataset inventory: paper-scale dimensions next to the
/// generated stand-in at the configured scale-down, with a skew check
/// (power-law graphs must show a high degree Gini).
pub fn table3(cfg: &ReproConfig) -> String {
    let mut rows = Vec::new();
    for ds in Dataset::REAL_WORLD {
        let spec = ds.spec();
        let full = 64 - (spec.num_vertices.max(1) - 1).leading_zeros();
        let scale_down = full.saturating_sub(cfg.target_scale.min(full));
        let (gen_v, gen_e, gini) = if ds.bipartite() {
            let g = ds.generate_ratings(scale_down, cfg.seed);
            let mut degs: Vec<u32> = (0..g.num_users()).map(|u| g.user_degree(u)).collect();
            let stats = DegreeStats::of_degrees(&mut degs, g.num_ratings());
            (
                u64::from(g.num_users()) + u64::from(g.num_items()),
                g.num_ratings(),
                stats.gini,
            )
        } else {
            let el = ds.generate_graph(scale_down, cfg.seed);
            let csr = graphmaze_core::graph::csr::Csr::from_edges(el.num_vertices(), el.edges());
            let stats = DegreeStats::of(&csr);
            (el.num_vertices(), el.num_edges(), stats.gini)
        };
        rows.push(vec![
            spec.name.to_string(),
            spec.num_vertices.to_string(),
            spec.num_edges.to_string(),
            format!("2^-{scale_down}"),
            gen_v.to_string(),
            gen_e.to_string(),
            format!("{gini:.2}"),
        ]);
    }
    let mut out = String::from("Table 3 — real-world datasets and generated stand-ins\n\n");
    out.push_str(&format_table(
        &[
            "dataset",
            "paper V",
            "paper E",
            "scale-down",
            "gen V",
            "gen E",
            "deg gini",
        ],
        &rows,
    ));
    cfg.write_csv(
        "table3",
        &[
            "dataset",
            "paper_vertices",
            "paper_edges",
            "scale_down",
            "gen_vertices",
            "gen_edges",
            "degree_gini",
        ],
        &rows,
    );
    out
}

/// Table 2 — the high-level framework comparison, generated from the
/// engines' actual configurations so documentation cannot drift from
/// code.
pub fn table2(cfg: &ReproConfig) -> String {
    use graphmaze_core::cluster::ExecProfile;
    let rows: Vec<Vec<String>> = [
        (
            "native",
            "n/a (hand-coded)",
            "yes",
            "1-D",
            ExecProfile::native(),
        ),
        (
            "graphlab",
            "vertex programs",
            "yes",
            "1-D + hub replication",
            ExecProfile::graphlab(),
        ),
        (
            "combblas",
            "sparse matrix semirings",
            "yes",
            "2-D",
            ExecProfile::combblas(),
        ),
        (
            "socialite",
            "datalog rules",
            "yes",
            "1-D shards",
            ExecProfile::socialite(),
        ),
        (
            "galois",
            "task-based work items",
            "no",
            "flexible",
            ExecProfile::galois(),
        ),
        (
            "giraph",
            "vertex programs (BSP)",
            "yes",
            "1-D",
            ExecProfile::giraph(),
        ),
    ]
    .into_iter()
    .map(|(name, model, multi, part, profile)| {
        vec![
            name.to_string(),
            model.to_string(),
            multi.to_string(),
            part.to_string(),
            if name == "galois" {
                "-".into()
            } else {
                profile.comm.name.to_string()
            },
            format!("{:.0}%", profile.core_fraction * 100.0),
        ]
    })
    .collect();
    let mut out = String::from("Table 2 - high-level comparison of the frameworks (from code)\n\n");
    let headers = [
        "framework",
        "programming model",
        "multi node",
        "partitioning",
        "comm layer",
        "cores used",
    ];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("table2", &headers, &rows);
    out
}

/// Table 4 — efficiency of the native implementations against hardware
/// limits, single node and 4 nodes. Paper values for comparison:
/// PR 78 GB/s (92%) / net 2.3 GB/s (42%); BFS 64 (74%) / 54 (63%);
/// CF 47 (54%) / 35 (41%); TC 45 (52%) / net 2.2 (40%).
pub fn table4(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let graph = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let ratings = WorkloadSpec::RmatRatings {
        scale: cfg.target_scale.saturating_sub(1),
        num_items: 1 << (cfg.target_scale / 2),
        seed: cfg.seed,
    };
    let g_edges = cfg
        .workload(&graph)
        .directed()
        .expect("directed")
        .num_edges();
    let factor = cfg.scale_factor(16u64 << 27, g_edges);
    let cf_factor = cfg.scale_factor(
        99_072_112, // Netflix-sized single-node CF run
        cfg.workload(&ratings)
            .ratings()
            .expect("ratings")
            .num_ratings(),
    );
    let mem_limit = 85.0e9;
    let net_limit = 5.5e9;

    let mut sweep = Sweep::new("table4");
    for alg in Algorithm::ALL {
        let spec = if alg == Algorithm::CollaborativeFiltering {
            &ratings
        } else {
            &graph
        };
        let f = if alg == Algorithm::CollaborativeFiltering {
            cf_factor
        } else {
            factor
        };
        for nodes in [1usize, 4] {
            sweep.push(SweepCell {
                label: alg.name().to_string(),
                algorithm: alg,
                framework: Framework::Native,
                spec: spec.clone(),
                nodes,
                factor: f,
                params,
                faults: cfg.faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        let mut cells = vec![alg.name().to_string()];
        for nodes in [1usize, 4] {
            match cell_report(results.next().expect("one result per cell")) {
                Ok(r) => {
                    let mem_bw = r.achieved_mem_bw_per_node();
                    let net_bw = r.achieved_net_bw_per_node();
                    let mem_pct = mem_bw / mem_limit * 100.0;
                    let net_pct = net_bw / net_limit * 100.0;
                    // the binding resource is whichever is closer to its limit
                    if nodes == 1 || mem_pct >= net_pct {
                        cells.push(format!(
                            "Memory BW {:.0} GB/s ({mem_pct:.0}%)",
                            mem_bw / 1e9
                        ));
                    } else {
                        cells.push(format!(
                            "Network BW {:.1} GB/s ({net_pct:.0}%)",
                            net_bw / 1e9
                        ));
                    }
                }
                Err(e) => cells.push(e),
            }
        }
        rows.push(cells);
    }
    let mut out = String::from(
        "Table 4 — native implementation efficiency vs hardware limits\n\
         (paper: PR 92%/42%net, BFS 74%/63%, CF 54%/41%, TC 52%/40%net)\n\n",
    );
    out.push_str(&format_table(
        &["algorithm", "single node", "4 nodes"],
        &rows,
    ));
    cfg.write_csv("table4", &["algorithm", "single_node", "four_nodes"], &rows);
    out
}

/// Table 7 — SociaLite before/after the §6.1.3 network optimization, on
/// the two network-bound algorithms at 4 nodes. Paper: PageRank
/// 4.6 s → 1.9 s (2.4×), Triangle Counting 7.6 s → 4.9 s (1.6×).
pub fn table7(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let pr_spec = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let tc_spec = WorkloadSpec::RmatTriangle {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let factor = cfg.scale_factor(
        128u64 << 20,
        cfg.workload(&pr_spec)
            .directed()
            .expect("directed")
            .num_edges(),
    );
    let series = [
        (Algorithm::PageRank, &pr_spec),
        (Algorithm::TriangleCount, &tc_spec),
    ];
    let mut sweep = Sweep::new("table7");
    for (alg, spec) in series {
        for fw in [Framework::SociaLiteUnopt, Framework::SociaLite] {
            sweep.push(SweepCell {
                label: alg.name().to_string(),
                algorithm: alg,
                framework: fw,
                spec: spec.clone(),
                nodes: 4,
                factor,
                params,
                faults: cfg.faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut rows = Vec::new();
    for (alg, _) in series {
        let before = cell_report(results.next().expect("result"))
            .expect("socialite-unopt runs")
            .clone();
        let after = cell_report(results.next().expect("result"))
            .expect("socialite runs")
            .clone();
        let (tb, ta) = (
            reported_seconds(alg, &before),
            reported_seconds(alg, &after),
        );
        rows.push(vec![
            alg.name().to_string(),
            fmt_secs(tb),
            fmt_secs(ta),
            format!("{:.1}", tb / ta),
        ]);
    }
    let mut out = String::from(
        "Table 7 — SociaLite network optimization (4 nodes)\n\
         (paper: pagerank 2.4x, triangle counting 1.6x)\n\n",
    );
    out.push_str(&format_table(
        &["algorithm", "before (s)", "after (s)", "speedup"],
        &rows,
    ));
    cfg.write_csv(
        "table7",
        &["algorithm", "before_s", "after_s", "speedup"],
        &rows,
    );
    out
}

/// Table R — resilience under injected faults (an extension beyond the
/// paper, which benchmarks fault-free runs; §4.3 notes Giraph was run
/// "with checkpointing turned off" precisely because recovery cost is
/// substantial). PageRank per framework under three regimes:
///
/// * **baseline** — fault-free;
/// * **degraded** — seeded stragglers (20% of node-steps run 3× slower)
///   plus a 1% message-drop/retransmit rate;
/// * **node failure** — node 0 dies at superstep 2 with checkpointing
///   every 2 supersteps. Giraph rolls back to its last superstep
///   checkpoint and replays; every other engine is fail-stop and loses
///   the job (the "failed" cells).
///
/// The same seed drives every cell, so the table is deterministic and
/// byte-identical across `--jobs` settings.
pub fn table_r(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let spec = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let factor = cfg.scale_factor(
        128u64 << 20,
        cfg.workload(&spec)
            .directed()
            .expect("directed")
            .num_edges(),
    );
    let degraded = FaultPlan::parse("seed=7,straggler=0.2x3,drop=0.01").expect("valid spec");
    let nodefail = FaultPlan::parse("seed=7,kill=0@2,ckpt=2").expect("valid spec");
    let variants = [
        ("baseline", FaultPlan::none()),
        ("degraded", degraded),
        ("nodefail", nodefail),
    ];
    let frameworks = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
        Framework::Galois,
    ];
    let mut sweep = Sweep::new("tabler");
    for fw in frameworks {
        let nodes = if fw == Framework::Galois { 1 } else { 8 };
        for (name, faults) in variants {
            sweep.push(SweepCell {
                label: format!("{}/{name}", fw.name()),
                algorithm: Algorithm::PageRank,
                framework: fw,
                spec: spec.clone(),
                nodes,
                factor,
                params,
                faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut rows = Vec::new();
    for fw in frameworks {
        let nodes = if fw == Framework::Galois { 1 } else { 8 };
        let mut row = vec![format!("{} ({nodes}n)", fw.name())];
        let mut recovery_note = String::from("-");
        for (name, _) in variants {
            match cell_report(results.next().expect("one result per cell")) {
                Ok(r) => {
                    row.push(fmt_secs(r.sim_seconds));
                    if name == "nodefail" && r.recovery.failures > 0 {
                        recovery_note = format!(
                            "ckpt x{}, replayed {} steps (+{})",
                            r.recovery.checkpoints,
                            r.recovery.steps_replayed,
                            fmt_secs(r.recovery.recovery_seconds()),
                        );
                    }
                }
                Err(e) => row.push(e),
            }
        }
        row.push(recovery_note);
        rows.push(row);
    }
    let mut out = String::from(
        "Table R — resilience under injected faults (PageRank; extension beyond the paper)\n\
         degraded: seed=7,straggler=0.2x3,drop=0.01   node failure: seed=7,kill=0@2,ckpt=2\n\
         Giraph checkpoints every 2 supersteps and replays after the failure;\n\
         all other engines are fail-stop and lose the job.\n\n",
    );
    out.push_str(&format_table(
        &[
            "framework",
            "baseline (s)",
            "degraded (s)",
            "node failure (s)",
            "recovery",
        ],
        &rows,
    ));
    cfg.write_csv(
        "tabler",
        &[
            "framework",
            "baseline_s",
            "degraded_s",
            "nodefail_s",
            "recovery",
        ],
        &rows,
    );
    out
}
