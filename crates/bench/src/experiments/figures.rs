//! Figures 3–7 (and the Tables 5/6 geomean summaries derived from them).
//!
//! Figures 3–6 are sweep-based: each declares its crossbar as a `Sweep`
//! and executes through [`crate::run_sweep`], then renders rows by
//! walking the results in declaration order. Figure 7 drives the native
//! engine directly (it varies `NativeOptions`, which the crossbar
//! doesn't expose) but shares workloads through the cache.

use graphmaze_core::prelude::*;
use graphmaze_core::report::{fmt_secs, fmt_slowdown, format_table, geomean};
use graphmaze_native::{bfs as nbfs, pagerank as npr, NativeOptions, PAGERANK_R};

use super::{cell_report, fig3_graph_specs, fig3_ratings_specs, reported_seconds};
use crate::{standard_params, ReproConfig};

// GraphMat (the auto-lowering engine, PR 9) rides at the end so every
// paper framework's cell keeps its declaration order and identity.
const FIG_FRAMEWORKS: [Framework; 7] = [
    Framework::Native,
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::Giraph,
    Framework::Galois,
    Framework::GraphMat,
];

const MULTI_FRAMEWORKS: [Framework; 5] = [
    Framework::Native,
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::Giraph,
];

/// Figure 3a–d and Table 5: single-node runtimes per dataset per
/// framework, plus the geometric-mean slowdown summary.
pub fn fig3_and_table5(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let graphs = fig3_graph_specs(cfg);
    let ratings = fig3_ratings_specs(cfg);

    let mut sweep = Sweep::new("fig3");
    for alg in Algorithm::ALL {
        let datasets = if alg == Algorithm::CollaborativeFiltering {
            &ratings
        } else {
            &graphs
        };
        for (name, spec, factor) in datasets {
            for fw in FIG_FRAMEWORKS {
                sweep.push(SweepCell {
                    label: name.clone(),
                    algorithm: alg,
                    framework: fw,
                    spec: spec.clone(),
                    nodes: 1,
                    factor: *factor,
                    params,
                    faults: cfg.faults,
                });
            }
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut out = String::new();
    // accumulated slowdowns per (framework, algorithm) for Table 5
    let mut slowdowns: std::collections::HashMap<(Framework, Algorithm), Vec<f64>> =
        std::collections::HashMap::new();
    for alg in Algorithm::ALL {
        let datasets = if alg == Algorithm::CollaborativeFiltering {
            &ratings
        } else {
            &graphs
        };
        let mut rows = Vec::new();
        for (name, _, _) in datasets {
            let mut row = vec![name.clone()];
            let mut native_secs = None;
            for fw in FIG_FRAMEWORKS {
                match cell_report(results.next().expect("one result per cell")) {
                    Ok(r) => {
                        let secs = reported_seconds(alg, r);
                        row.push(fmt_secs(secs));
                        if fw == Framework::Native {
                            native_secs = Some(secs);
                        } else {
                            slowdowns
                                .entry((fw, alg))
                                .or_default()
                                .push(secs / native_secs.expect("native must run"));
                        }
                    }
                    Err(e) => {
                        assert!(fw != Framework::Native, "native must run: {e}");
                        row.push(e);
                    }
                }
            }
            rows.push(row);
        }
        let title = match alg {
            Algorithm::PageRank => "Figure 3(a) PageRank — seconds per iteration, single node",
            Algorithm::Bfs => "Figure 3(b) BFS — overall seconds, single node",
            Algorithm::CollaborativeFiltering => {
                "Figure 3(c) Collaborative Filtering — seconds per iteration, single node"
            }
            Algorithm::TriangleCount => {
                "Figure 3(d) Triangle Counting — overall seconds, single node"
            }
            Algorithm::MsBfs => "Multi-source BFS — overall seconds, single node",
        };
        out.push_str(title);
        out.push_str("\n\n");
        let headers = [
            "dataset",
            "native",
            "combblas",
            "graphlab",
            "socialite",
            "giraph",
            "galois",
            "graphmat",
        ];
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
        cfg.write_csv(&format!("fig3_{}", alg.name()), &headers, &rows);
    }

    // Table 5
    out.push_str(
        "Table 5 — single-node slowdowns vs native, geomean over datasets\n\
         (paper: PR 1.9/3.6/2.0/39/1.2; BFS 2.5/9.3/7.3/568/1.1;\n\
          CF 3.5/5.1/5.8/54/1.1; TC 34/3.2/4.7/484/2.5)\n\n",
    );
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        let mut row = vec![alg.name().to_string()];
        for fw in [
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
            Framework::Giraph,
            Framework::Galois,
            Framework::GraphMat,
        ] {
            match slowdowns.get(&(fw, alg)) {
                Some(v) if !v.is_empty() => row.push(fmt_slowdown(geomean(v))),
                _ => row.push("n/a".into()),
            }
        }
        rows.push(row);
    }
    let headers = [
        "algorithm",
        "combblas",
        "graphlab",
        "socialite",
        "giraph",
        "galois",
        "graphmat",
    ];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("table5", &headers, &rows);
    out
}

/// Per-algorithm Fig 4 constants: title and the paper's edges-per-node
/// budget (scaled down from 128M/128M/256M/32M).
fn fig4_series(alg: Algorithm) -> (&'static str, u64) {
    match alg {
        Algorithm::PageRank => ("Figure 4(a) PageRank weak scaling (s/iter)", 128 << 20),
        Algorithm::Bfs => ("Figure 4(b) BFS weak scaling (overall s)", 128 << 20),
        Algorithm::CollaborativeFiltering => (
            "Figure 4(c) Collaborative Filtering weak scaling (s/iter)",
            256 << 20,
        ),
        Algorithm::TriangleCount => (
            "Figure 4(d) Triangle Counting weak scaling (overall s)",
            32 << 20,
        ),
        Algorithm::MsBfs => ("Multi-source BFS weak scaling (overall s)", 128 << 20),
    }
}

/// Figure 4a–d and Table 6: weak scaling on synthetic graphs (constant
/// edges per node) from 1 to 64 nodes, and the multi-node geomean
/// summary.
pub fn fig4_and_table6(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let node_counts: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
    let base_scale = cfg.target_scale.saturating_sub(3).max(8);

    let mut sweep = Sweep::new("fig4");
    for alg in Algorithm::ALL {
        let (_, paper_edges_per_node) = fig4_series(alg);
        for (i, &nodes) in node_counts.iter().enumerate() {
            let scale = base_scale + i as u32;
            let seed = cfg.seed + i as u64;
            let (spec, actual) = match alg {
                Algorithm::TriangleCount => {
                    let spec = WorkloadSpec::RmatTriangle {
                        scale,
                        edge_factor: 8,
                        seed,
                    };
                    let e = cfg
                        .workload(&spec)
                        .oriented()
                        .expect("oriented")
                        .num_edges();
                    (spec, e)
                }
                Algorithm::CollaborativeFiltering => {
                    let spec = WorkloadSpec::RmatRatings {
                        scale,
                        num_items: 1 << (scale / 2),
                        seed,
                    };
                    let e = cfg
                        .workload(&spec)
                        .ratings()
                        .expect("ratings")
                        .num_ratings();
                    (spec, e)
                }
                _ => {
                    let spec = WorkloadSpec::Rmat {
                        scale,
                        edge_factor: 16,
                        seed,
                    };
                    let e = cfg
                        .workload(&spec)
                        .directed()
                        .expect("directed")
                        .num_edges();
                    (spec, e)
                }
            };
            let factor = cfg.scale_factor(paper_edges_per_node * nodes as u64, actual);
            for fw in MULTI_FRAMEWORKS {
                sweep.push(SweepCell {
                    label: format!("{nodes} nodes"),
                    algorithm: alg,
                    framework: fw,
                    spec: spec.clone(),
                    nodes,
                    factor,
                    params,
                    faults: cfg.faults,
                });
            }
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut out = String::new();
    let mut slowdowns: std::collections::HashMap<(Framework, Algorithm), Vec<f64>> =
        std::collections::HashMap::new();
    for alg in Algorithm::ALL {
        let (title, _) = fig4_series(alg);
        let mut rows = Vec::new();
        for &nodes in &node_counts {
            let mut row = vec![nodes.to_string()];
            let mut native_secs = None;
            for fw in MULTI_FRAMEWORKS {
                match cell_report(results.next().expect("one result per cell")) {
                    Ok(r) => {
                        let secs = reported_seconds(alg, r);
                        row.push(fmt_secs(secs));
                        if fw == Framework::Native {
                            native_secs = Some(secs);
                        } else if nodes > 1 {
                            slowdowns
                                .entry((fw, alg))
                                .or_default()
                                .push(secs / native_secs.expect("native must run"));
                        }
                    }
                    Err(e) => {
                        assert!(fw != Framework::Native, "native must run: {e}");
                        row.push(e);
                    }
                }
            }
            rows.push(row);
        }
        out.push_str(title);
        out.push_str("\n\n");
        let headers = [
            "nodes",
            "native",
            "combblas",
            "graphlab",
            "socialite",
            "giraph",
        ];
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
        cfg.write_csv(&format!("fig4_{}", alg.name()), &headers, &rows);
    }

    out.push_str(
        "Table 6 — multi-node slowdowns vs native, geomean over scales\n\
         (paper: PR 2.5/12.1/7.9/74; BFS 7.1/29.5/18.9/494;\n\
          CF 3.5/7.1/7.0/88; TC 13.1/3.6/1.5/54)\n\n",
    );
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        let mut row = vec![alg.name().to_string()];
        for fw in [
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
            Framework::Giraph,
        ] {
            match slowdowns.get(&(fw, alg)) {
                Some(v) if !v.is_empty() => row.push(fmt_slowdown(geomean(v))),
                _ => row.push("n/a".into()),
            }
        }
        rows.push(row);
    }
    let headers = ["algorithm", "combblas", "graphlab", "socialite", "giraph"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("table6", &headers, &rows);
    out
}

/// Figure 5 — large real-world graphs on multiple nodes: Twitter
/// (PageRank/BFS on 4 nodes, TC on 16) and Yahoo! Music CF on 4 nodes.
/// The paper notes CombBLAS runs out of memory on Twitter TC.
pub fn fig5(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let tinfo = Dataset::TwitterLike.spec();
    let tfull = 64 - (tinfo.num_vertices - 1).leading_zeros();
    let tdown = tfull.saturating_sub(cfg.target_scale);
    let twitter = WorkloadSpec::Dataset {
        ds: Dataset::TwitterLike,
        scale_down: tdown,
        seed: cfg.seed,
    };
    let tfactor = cfg.scale_factor(
        tinfo.num_edges,
        cfg.workload(&twitter)
            .directed()
            .expect("graph")
            .num_edges(),
    );
    let yinfo = Dataset::YahooMusicLike.spec();
    let yfull = 64 - (yinfo.num_vertices - 1).leading_zeros();
    let ydown = yfull.saturating_sub(cfg.target_scale.min(yfull));
    let yahoo = WorkloadSpec::Dataset {
        ds: Dataset::YahooMusicLike,
        scale_down: ydown,
        seed: cfg.seed,
    };
    let yfactor = cfg.scale_factor(
        yinfo.num_edges,
        cfg.workload(&yahoo)
            .ratings()
            .expect("ratings")
            .num_ratings(),
    );

    let runs: [(&str, Algorithm, &WorkloadSpec, usize, f64); 4] = [
        (
            "pagerank (twitter, 4 nodes)",
            Algorithm::PageRank,
            &twitter,
            4,
            tfactor,
        ),
        (
            "bfs (twitter, 4 nodes)",
            Algorithm::Bfs,
            &twitter,
            4,
            tfactor,
        ),
        (
            "cf (yahoo-music, 4 nodes)",
            Algorithm::CollaborativeFiltering,
            &yahoo,
            4,
            yfactor,
        ),
        (
            "triangle (twitter, 16 nodes)",
            Algorithm::TriangleCount,
            &twitter,
            16,
            tfactor,
        ),
    ];
    let mut sweep = Sweep::new("fig5");
    for (label, alg, spec, nodes, factor) in runs {
        for fw in MULTI_FRAMEWORKS {
            sweep.push(SweepCell {
                label: label.to_string(),
                algorithm: alg,
                framework: fw,
                spec: spec.clone(),
                nodes,
                factor,
                params,
                faults: cfg.faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut rows = Vec::new();
    for (label, alg, _, _, _) in runs {
        let mut row = vec![label.to_string()];
        for _ in MULTI_FRAMEWORKS {
            match cell_report(results.next().expect("one result per cell")) {
                Ok(r) => row.push(fmt_secs(reported_seconds(alg, r))),
                Err(e) => row.push(e),
            }
        }
        rows.push(row);
    }
    let mut out = String::from(
        "Figure 5 — large real-world graphs, multi-node\n\
         (paper: CombBLAS OOMs on Twitter TC; Giraph BFS 96747 s)\n\n",
    );
    let headers = [
        "run",
        "native",
        "combblas",
        "graphlab",
        "socialite",
        "giraph",
    ];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("fig5", &headers, &rows);
    out
}

/// Figure 6 — system-level metrics for 4-node runs of each algorithm:
/// CPU utilization, network bandwidth, memory footprint and network
/// bytes sent, normalized exactly as in the paper's caption (100 = 100%
/// CPU / 5.5 GB/s / 64 GB/node / Giraph's bytes for that algorithm).
/// The "peak net bw" column is the **true peak** over the step timeline
/// — the busiest single step's per-node send rate — with the
/// duration-weighted average kept as a separate labelled column; peak ≥
/// average by construction. The journal carries the full report
/// (timeline included), so resumed runs rebuild these columns — not
/// just seconds — byte-identically.
pub fn fig6(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let graph = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let tc = WorkloadSpec::RmatTriangle {
        scale: cfg.target_scale,
        edge_factor: 8,
        seed: cfg.seed,
    };
    let ratings = WorkloadSpec::RmatRatings {
        scale: cfg.target_scale.saturating_sub(1),
        num_items: 1 << (cfg.target_scale / 2),
        seed: cfg.seed,
    };
    let mut sweep = Sweep::new("fig6");
    for alg in Algorithm::ALL {
        let (spec, paper_edges): (&WorkloadSpec, u64) = match alg {
            Algorithm::TriangleCount => (&tc, 32u64 << 22),
            Algorithm::CollaborativeFiltering => (&ratings, 256u64 << 22),
            _ => (&graph, 128u64 << 22),
        };
        let wl = cfg.workload(spec);
        let actual = match alg {
            Algorithm::TriangleCount => wl.oriented().expect("oriented").num_edges(),
            Algorithm::CollaborativeFiltering => wl.ratings().expect("ratings").num_ratings(),
            _ => wl.directed().expect("directed").num_edges(),
        };
        let factor = cfg.scale_factor(paper_edges, actual);
        for fw in MULTI_FRAMEWORKS {
            sweep.push(SweepCell {
                label: alg.name().to_string(),
                algorithm: alg,
                framework: fw,
                spec: spec.clone(),
                nodes: 4,
                factor,
                params,
                faults: cfg.faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut out = String::new();
    for alg in Algorithm::ALL {
        let reports: Vec<(Framework, Result<&RunReport, String>)> = MULTI_FRAMEWORKS
            .iter()
            .map(|&fw| {
                (
                    fw,
                    cell_report(results.next().expect("one result per cell")),
                )
            })
            .collect();
        let giraph_bytes = reports
            .iter()
            .find(|(fw, _)| *fw == Framework::Giraph)
            .and_then(|(_, r)| r.as_ref().ok().map(|r| r.net_bytes_per_node()))
            .unwrap_or(1.0)
            .max(1.0);
        let mut rows = Vec::new();
        for (fw, r) in &reports {
            match r {
                Ok(r) => rows.push(vec![
                    fw.name().to_string(),
                    format!("{:.0}", r.cpu_utilization * 100.0),
                    format!("{:.0}", r.peak_net_bw_per_node() / 5.5e9 * 100.0),
                    format!("{:.0}", r.achieved_net_bw_per_node() / 5.5e9 * 100.0),
                    format!(
                        "{:.0}",
                        r.peak_mem_bytes as f64 / (64u64 << 30) as f64 * 100.0
                    ),
                    format!("{:.0}", r.net_bytes_per_node() / giraph_bytes * 100.0),
                ]),
                Err(e) => rows.push(vec![
                    fw.name().into(),
                    e.clone(),
                    e.clone(),
                    e.clone(),
                    e.clone(),
                    e.clone(),
                ]),
            }
        }
        out.push_str(&format!(
            "Figure 6 ({}) — normalized system metrics, 4 nodes\n\n",
            alg.name()
        ));
        let headers = [
            "framework",
            "cpu util %",
            "peak net bw %",
            "avg net bw %",
            "memory %",
            "net bytes % of giraph",
        ];
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
        cfg.write_csv(&format!("fig6_{}", alg.name()), &headers, &rows);
    }
    out
}

/// Figure 7 — the native optimization ablation for PageRank and BFS:
/// cumulative speedups of software prefetching, then message
/// compression, then computation/communication overlap (BFS adds the
/// bit-vector data structure). 4 nodes, as in §6.1.2.
pub fn fig7(cfg: &ReproConfig) -> String {
    let wl = cfg.workload(&WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    });
    let g = wl.directed().expect("directed");
    let und = wl.undirected().expect("undirected");
    let factor = cfg.scale_factor(128u64 << 22, g.num_edges());
    let source = (0..und.num_vertices() as u32)
        .max_by_key(|&v| und.adj.degree(v))
        .unwrap();

    let base = NativeOptions::none();
    let pf = NativeOptions {
        prefetch: true,
        ..base
    };
    let pf_c = NativeOptions {
        compression: true,
        ..pf
    };
    let pf_c_o = NativeOptions {
        overlap: true,
        ..pf_c
    };
    let all = NativeOptions::all(); // adds the bit-vector lever

    let pr_time = |o: NativeOptions| -> f64 {
        crate::with_work_scale(factor, || {
            npr::pagerank_cluster(g, PAGERANK_R, 3, o, 4)
                .expect("pr runs")
                .1
                .sim_seconds
        })
    };
    let bfs_time = |o: NativeOptions| -> f64 {
        crate::with_work_scale(factor, || {
            nbfs::bfs_cluster(und, source, o, 4)
                .expect("bfs runs")
                .1
                .sim_seconds
        })
    };

    let pr_base = pr_time(base);
    let bfs_base = bfs_time(base);
    let rows = vec![
        vec![
            "s/w prefetching".to_string(),
            format!("{:.1}", pr_base / pr_time(pf)),
            format!("{:.1}", bfs_base / bfs_time(pf)),
        ],
        vec![
            "+ compression".to_string(),
            format!("{:.1}", pr_base / pr_time(pf_c)),
            format!("{:.1}", bfs_base / bfs_time(pf_c)),
        ],
        vec![
            "+ overlap comp/comm".to_string(),
            format!("{:.1}", pr_base / pr_time(pf_c_o)),
            format!("{:.1}", bfs_base / bfs_time(pf_c_o)),
        ],
        vec![
            "+ data structure opt".to_string(),
            format!("{:.1}", pr_base / pr_time(all)),
            format!("{:.1}", bfs_base / bfs_time(all)),
        ],
    ];
    let mut out = String::from(
        "Figure 7 — cumulative native optimization speedups, 4 nodes\n\
         (paper: prefetch then compression ~2-3x then overlap 1.2-2x;\n\
          BFS bit-vectors ~2x more)\n\n",
    );
    let headers = [
        "optimization (cumulative)",
        "pagerank speedup",
        "bfs speedup",
    ];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("fig7", &headers, &rows);
    out
}
