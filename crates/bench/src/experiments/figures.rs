//! Figures 3–7 (and the Tables 5/6 geomean summaries derived from them).

use graphmaze_core::prelude::*;
use graphmaze_core::report::{fmt_secs, fmt_slowdown, format_table, geomean};
use graphmaze_native::{bfs as nbfs, pagerank as npr, NativeOptions, PAGERANK_R};

use super::{fig3_graph_datasets, fig3_ratings_datasets, reported_seconds, run_cell};
use crate::{standard_params, ReproConfig};

const FIG_FRAMEWORKS: [Framework; 6] = [
    Framework::Native,
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::Giraph,
    Framework::Galois,
];

const MULTI_FRAMEWORKS: [Framework; 5] = [
    Framework::Native,
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::Giraph,
];

/// Figure 3a–d and Table 5: single-node runtimes per dataset per
/// framework, plus the geometric-mean slowdown summary.
pub fn fig3_and_table5(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let graphs = fig3_graph_datasets(cfg);
    let ratings = fig3_ratings_datasets(cfg);
    let mut out = String::new();
    // accumulated slowdowns per (framework, algorithm) for Table 5
    let mut slowdowns: std::collections::HashMap<(Framework, Algorithm), Vec<f64>> =
        std::collections::HashMap::new();

    for alg in Algorithm::ALL {
        let datasets: &[(String, Workload, f64)] =
            if alg == Algorithm::CollaborativeFiltering { &ratings } else { &graphs };
        let mut rows = Vec::new();
        for (name, wl, factor) in datasets {
            let mut row = vec![name.clone()];
            let native = run_cell(alg, Framework::Native, wl, 1, *factor, &params)
                .expect("native must run");
            for fw in FIG_FRAMEWORKS {
                match run_cell(alg, fw, wl, 1, *factor, &params) {
                    Ok(r) => {
                        row.push(fmt_secs(reported_seconds(alg, &r)));
                        if fw != Framework::Native {
                            slowdowns
                                .entry((fw, alg))
                                .or_default()
                                .push(reported_seconds(alg, &r) / reported_seconds(alg, &native));
                        }
                    }
                    Err(e) => row.push(e),
                }
            }
            rows.push(row);
        }
        let title = match alg {
            Algorithm::PageRank => "Figure 3(a) PageRank — seconds per iteration, single node",
            Algorithm::Bfs => "Figure 3(b) BFS — overall seconds, single node",
            Algorithm::CollaborativeFiltering => {
                "Figure 3(c) Collaborative Filtering — seconds per iteration, single node"
            }
            Algorithm::TriangleCount => {
                "Figure 3(d) Triangle Counting — overall seconds, single node"
            }
        };
        out.push_str(title);
        out.push_str("\n\n");
        let headers =
            ["dataset", "native", "combblas", "graphlab", "socialite", "giraph", "galois"];
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
        cfg.write_csv(&format!("fig3_{}", alg.name()), &headers, &rows);
    }

    // Table 5
    out.push_str(
        "Table 5 — single-node slowdowns vs native, geomean over datasets\n\
         (paper: PR 1.9/3.6/2.0/39/1.2; BFS 2.5/9.3/7.3/568/1.1;\n\
          CF 3.5/5.1/5.8/54/1.1; TC 34/3.2/4.7/484/2.5)\n\n",
    );
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        let mut row = vec![alg.name().to_string()];
        for fw in [
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
            Framework::Giraph,
            Framework::Galois,
        ] {
            match slowdowns.get(&(fw, alg)) {
                Some(v) if !v.is_empty() => row.push(fmt_slowdown(geomean(v))),
                _ => row.push("n/a".into()),
            }
        }
        rows.push(row);
    }
    let headers = ["algorithm", "combblas", "graphlab", "socialite", "giraph", "galois"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("table5", &headers, &rows);
    out
}

/// Figure 4a–d and Table 6: weak scaling on synthetic graphs (constant
/// edges per node) from 1 to 64 nodes, and the multi-node geomean
/// summary.
pub fn fig4_and_table6(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let node_counts: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
    // per-node budgets, scaled down from the paper's 128M/128M/256M/32M
    let base_scale = cfg.target_scale.saturating_sub(3).max(8);
    let mut out = String::new();
    let mut slowdowns: std::collections::HashMap<(Framework, Algorithm), Vec<f64>> =
        std::collections::HashMap::new();

    for alg in Algorithm::ALL {
        let (title, paper_edges_per_node): (&str, u64) = match alg {
            Algorithm::PageRank => ("Figure 4(a) PageRank weak scaling (s/iter)", 128 << 20),
            Algorithm::Bfs => ("Figure 4(b) BFS weak scaling (overall s)", 128 << 20),
            Algorithm::CollaborativeFiltering => {
                ("Figure 4(c) Collaborative Filtering weak scaling (s/iter)", 256 << 20)
            }
            Algorithm::TriangleCount => {
                ("Figure 4(d) Triangle Counting weak scaling (overall s)", 32 << 20)
            }
        };
        let mut rows = Vec::new();
        for (i, &nodes) in node_counts.iter().enumerate() {
            let scale = base_scale + i as u32;
            let (wl, actual) = match alg {
                Algorithm::TriangleCount => {
                    let wl = Workload::rmat_triangle(scale, 8, cfg.seed + i as u64);
                    let e = wl.oriented.as_ref().unwrap().num_edges();
                    (wl, e)
                }
                Algorithm::CollaborativeFiltering => {
                    let wl =
                        Workload::rmat_ratings(scale, 1 << (scale / 2), cfg.seed + i as u64);
                    let e = wl.ratings.as_ref().unwrap().num_ratings();
                    (wl, e)
                }
                _ => {
                    let wl = Workload::rmat(scale, 16, cfg.seed + i as u64);
                    let e = wl.directed.as_ref().unwrap().num_edges();
                    (wl, e)
                }
            };
            let factor =
                cfg.scale_factor(paper_edges_per_node * nodes as u64, actual);
            let mut row = vec![nodes.to_string()];
            let native = run_cell(alg, Framework::Native, &wl, nodes, factor, &params)
                .expect("native must run");
            for fw in MULTI_FRAMEWORKS {
                match run_cell(alg, fw, &wl, nodes, factor, &params) {
                    Ok(r) => {
                        row.push(fmt_secs(reported_seconds(alg, &r)));
                        if fw != Framework::Native && nodes > 1 {
                            slowdowns
                                .entry((fw, alg))
                                .or_default()
                                .push(reported_seconds(alg, &r) / reported_seconds(alg, &native));
                        }
                    }
                    Err(e) => row.push(e),
                }
            }
            rows.push(row);
        }
        out.push_str(title);
        out.push_str("\n\n");
        let headers = ["nodes", "native", "combblas", "graphlab", "socialite", "giraph"];
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
        cfg.write_csv(&format!("fig4_{}", alg.name()), &headers, &rows);
    }

    out.push_str(
        "Table 6 — multi-node slowdowns vs native, geomean over scales\n\
         (paper: PR 2.5/12.1/7.9/74; BFS 7.1/29.5/18.9/494;\n\
          CF 3.5/7.1/7.0/88; TC 13.1/3.6/1.5/54)\n\n",
    );
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        let mut row = vec![alg.name().to_string()];
        for fw in
            [Framework::CombBlas, Framework::GraphLab, Framework::SociaLite, Framework::Giraph]
        {
            match slowdowns.get(&(fw, alg)) {
                Some(v) if !v.is_empty() => row.push(fmt_slowdown(geomean(v))),
                _ => row.push("n/a".into()),
            }
        }
        rows.push(row);
    }
    let headers = ["algorithm", "combblas", "graphlab", "socialite", "giraph"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("table6", &headers, &rows);
    out
}

/// Figure 5 — large real-world graphs on multiple nodes: Twitter
/// (PageRank/BFS on 4 nodes, TC on 16) and Yahoo! Music CF on 4 nodes.
/// The paper notes CombBLAS runs out of memory on Twitter TC.
pub fn fig5(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let tspec = Dataset::TwitterLike.spec();
    let tfull = 64 - (tspec.num_vertices - 1).leading_zeros();
    let tdown = tfull.saturating_sub(cfg.target_scale);
    let twitter = Workload::from_dataset(Dataset::TwitterLike, tdown, cfg.seed);
    let tfactor = cfg.scale_factor(
        tspec.num_edges,
        twitter.directed.as_ref().unwrap().num_edges(),
    );
    let yspec = Dataset::YahooMusicLike.spec();
    let yfull = 64 - (yspec.num_vertices - 1).leading_zeros();
    let ydown = yfull.saturating_sub(cfg.target_scale.min(yfull));
    let yahoo = Workload::from_dataset(Dataset::YahooMusicLike, ydown, cfg.seed);
    let yfactor = cfg.scale_factor(
        yspec.num_edges,
        yahoo.ratings.as_ref().unwrap().num_ratings(),
    );

    let runs: [(&str, Algorithm, &Workload, usize, f64); 4] = [
        ("pagerank (twitter, 4 nodes)", Algorithm::PageRank, &twitter, 4, tfactor),
        ("bfs (twitter, 4 nodes)", Algorithm::Bfs, &twitter, 4, tfactor),
        ("cf (yahoo-music, 4 nodes)", Algorithm::CollaborativeFiltering, &yahoo, 4, yfactor),
        ("triangle (twitter, 16 nodes)", Algorithm::TriangleCount, &twitter, 16, tfactor),
    ];
    let mut rows = Vec::new();
    for (label, alg, wl, nodes, factor) in runs {
        let mut row = vec![label.to_string()];
        for fw in MULTI_FRAMEWORKS {
            match run_cell(alg, fw, wl, nodes, factor, &params) {
                Ok(r) => row.push(fmt_secs(reported_seconds(alg, &r))),
                Err(e) => row.push(e),
            }
        }
        rows.push(row);
    }
    let mut out = String::from(
        "Figure 5 — large real-world graphs, multi-node\n\
         (paper: CombBLAS OOMs on Twitter TC; Giraph BFS 96747 s)\n\n",
    );
    let headers = ["run", "native", "combblas", "graphlab", "socialite", "giraph"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("fig5", &headers, &rows);
    out
}

/// Figure 6 — system-level metrics for 4-node runs of each algorithm:
/// CPU utilization, peak network bandwidth, memory footprint and network
/// bytes sent, normalized exactly as in the paper's caption (100 = 100%
/// CPU / 5.5 GB/s / 64 GB/node / Giraph's bytes for that algorithm).
pub fn fig6(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let graph = Workload::rmat(cfg.target_scale, 16, cfg.seed);
    let tc = Workload::rmat_triangle(cfg.target_scale, 8, cfg.seed);
    let ratings =
        Workload::rmat_ratings(cfg.target_scale.saturating_sub(1), 1 << (cfg.target_scale / 2), cfg.seed);
    let mut out = String::new();
    for alg in Algorithm::ALL {
        let (wl, paper_edges): (&Workload, u64) = match alg {
            Algorithm::TriangleCount => (&tc, 32u64 << 22),
            Algorithm::CollaborativeFiltering => (&ratings, 256u64 << 22),
            _ => (&graph, 128u64 << 22),
        };
        let actual = match alg {
            Algorithm::TriangleCount => wl.oriented.as_ref().unwrap().num_edges(),
            Algorithm::CollaborativeFiltering => wl.ratings.as_ref().unwrap().num_ratings(),
            _ => wl.directed.as_ref().unwrap().num_edges(),
        };
        let factor = cfg.scale_factor(paper_edges, actual);
        let mut reports = Vec::new();
        for fw in MULTI_FRAMEWORKS {
            reports.push((fw, run_cell(alg, fw, wl, 4, factor, &params)));
        }
        let giraph_bytes = reports
            .iter()
            .find(|(fw, _)| *fw == Framework::Giraph)
            .and_then(|(_, r)| r.as_ref().ok().map(|r| r.net_bytes_per_node()))
            .unwrap_or(1.0)
            .max(1.0);
        let mut rows = Vec::new();
        for (fw, r) in &reports {
            match r {
                Ok(r) => rows.push(vec![
                    fw.name().to_string(),
                    format!("{:.0}", r.cpu_utilization * 100.0),
                    format!("{:.0}", r.traffic.peak_bw_bps / 5.5e9 * 100.0),
                    format!("{:.0}", r.peak_mem_bytes as f64 / (64u64 << 30) as f64 * 100.0),
                    format!("{:.0}", r.net_bytes_per_node() / giraph_bytes * 100.0),
                ]),
                Err(e) => rows.push(vec![fw.name().into(), e.clone(), e.clone(), e.clone(), e.clone()]),
            }
        }
        out.push_str(&format!("Figure 6 ({}) — normalized system metrics, 4 nodes\n\n", alg.name()));
        let headers = ["framework", "cpu util %", "peak net bw %", "memory %", "net bytes % of giraph"];
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
        cfg.write_csv(&format!("fig6_{}", alg.name()), &headers, &rows);
    }
    out
}

/// Figure 7 — the native optimization ablation for PageRank and BFS:
/// cumulative speedups of software prefetching, + message compression,
/// + computation/communication overlap (BFS adds the bit-vector data
/// structure). 4 nodes, as in §6.1.2.
pub fn fig7(cfg: &ReproConfig) -> String {
    let wl = Workload::rmat(cfg.target_scale, 16, cfg.seed);
    let g = wl.directed.as_ref().unwrap();
    let und = wl.undirected.as_ref().unwrap();
    let factor = cfg.scale_factor(128u64 << 22, g.num_edges());
    let source = (0..und.num_vertices() as u32).max_by_key(|&v| und.adj.degree(v)).unwrap();

    let base = NativeOptions::none();
    let pf = NativeOptions { prefetch: true, ..base };
    let pf_c = NativeOptions { compression: true, ..pf };
    let pf_c_o = NativeOptions { overlap: true, ..pf_c };
    let all = NativeOptions::all(); // adds the bit-vector lever

    let pr_time = |o: NativeOptions| -> f64 {
        crate::with_work_scale(factor, || {
            npr::pagerank_cluster(g, PAGERANK_R, 3, o, 4).expect("pr runs").1.sim_seconds
        })
    };
    let bfs_time = |o: NativeOptions| -> f64 {
        crate::with_work_scale(factor, || {
            nbfs::bfs_cluster(und, source, o, 4).expect("bfs runs").1.sim_seconds
        })
    };

    let pr_base = pr_time(base);
    let bfs_base = bfs_time(base);
    let rows = vec![
        vec![
            "s/w prefetching".to_string(),
            format!("{:.1}", pr_base / pr_time(pf)),
            format!("{:.1}", bfs_base / bfs_time(pf)),
        ],
        vec![
            "+ compression".to_string(),
            format!("{:.1}", pr_base / pr_time(pf_c)),
            format!("{:.1}", bfs_base / bfs_time(pf_c)),
        ],
        vec![
            "+ overlap comp/comm".to_string(),
            format!("{:.1}", pr_base / pr_time(pf_c_o)),
            format!("{:.1}", bfs_base / bfs_time(pf_c_o)),
        ],
        vec![
            "+ data structure opt".to_string(),
            format!("{:.1}", pr_base / pr_time(all)),
            format!("{:.1}", bfs_base / bfs_time(all)),
        ],
    ];
    let mut out = String::from(
        "Figure 7 — cumulative native optimization speedups, 4 nodes\n\
         (paper: prefetch then compression ~2-3x then overlap 1.2-2x;\n\
          BFS bit-vectors ~2x more)\n\n",
    );
    let headers = ["optimization (cumulative)", "pagerank speedup", "bfs speedup"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("fig7", &headers, &rows);
    out
}
