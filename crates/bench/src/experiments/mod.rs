//! One module per paper artifact. Every function returns the rendered
//! report text (also printed by the `repro` binary) and writes CSV
//! artifacts through [`ReproConfig::write_csv`].
//!
//! The crossbar experiments (Fig 3–6, Tables 4/5/6/7, the §5.4 estimate
//! and the strong-scaling extension) declare their cells as a
//! `Sweep` and execute through [`crate::run_sweep`] — parallel across
//! `--jobs` workers, journaled for `--resume`, with workloads shared via
//! the process-wide cache. The remaining experiments call engine
//! internals directly (ablations, roadmap mechanisms, convergence
//! studies) but still pull their workloads from the same cache.
//!
//! | function | paper artifact |
//! |---|---|
//! | [`tables::table3`] | Table 3 — dataset inventory |
//! | [`tables::table4`] | Table 4 — native efficiency vs hardware limits |
//! | [`figures::fig3_and_table5`] | Figure 3a–d + Table 5 — single-node runtimes and geomean slowdowns |
//! | [`figures::fig4_and_table6`] | Figure 4a–d + Table 6 — weak scaling and multi-node geomeans |
//! | [`figures::fig5`] | Figure 5 — large real-world graphs, multi-node |
//! | [`figures::fig6`] | Figure 6 — system metrics at 4 nodes |
//! | [`figures::fig7`] | Figure 7 — native optimization ablation |
//! | [`tables::table7`] | Table 7 — SociaLite network fix |
//! | [`extras::net_estimate`] | §5.4 — traffic-based slowdown prediction |
//! | [`extras::sgd_vs_gd`] | §3.2/§6.1.2 — SGD vs GD convergence |
//! | [`extras::giraph_split`] | §6.1.3 — Giraph superstep splitting |
//! | [`extras::ablations`] | §6.1.1 — partitioning / compression / overlap / data structures |

pub mod extras;
pub mod figures;
pub mod tables;

use graphmaze_core::prelude::*;
use graphmaze_core::sweep::CellResult;

use crate::ReproConfig;

/// The Fig 3 graph datasets (real-world stand-ins + one synthetic) as
/// workload specs, with per-dataset scale-downs that bring them near
/// `cfg.target_scale`. Building through the cache here (to size the
/// extrapolation factor) means the sweep executor gets cache hits.
pub fn fig3_graph_specs(cfg: &ReproConfig) -> Vec<(String, WorkloadSpec, f64)> {
    let mut out = Vec::new();
    for ds in [
        Dataset::LiveJournalLike,
        Dataset::FacebookLike,
        Dataset::WikipediaLike,
    ] {
        let info = ds.spec();
        let full = 64 - (info.num_vertices.max(1) - 1).leading_zeros();
        let scale_down = full.saturating_sub(cfg.target_scale);
        let spec = WorkloadSpec::Dataset {
            ds,
            scale_down,
            seed: cfg.seed,
        };
        let actual = cfg.workload(&spec).directed().expect("graph").num_edges();
        let factor = cfg.scale_factor(info.num_edges, actual);
        out.push((info.name.to_string(), spec, factor));
    }
    // the synthetic RMAT dataset of Fig 3. The paper picks sizes "so
    // that all frameworks could complete without running out of memory"
    // (§5.3); scale 24 keeps even Giraph's whole-superstep buffers under
    // 64 GB on one node.
    let spec = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let actual = cfg.workload(&spec).directed().expect("graph").num_edges();
    let paper = Dataset::Graph500 { scale: 24 }.spec().num_edges;
    out.push(("synthetic".into(), spec, cfg.scale_factor(paper, actual)));
    out
}

/// The Fig 3 ratings datasets (Netflix stand-in + synthetic) as specs.
pub fn fig3_ratings_specs(cfg: &ReproConfig) -> Vec<(String, WorkloadSpec, f64)> {
    let mut out = Vec::new();
    let info = Dataset::NetflixLike.spec();
    let full = 64 - (info.num_vertices.max(1) - 1).leading_zeros();
    let scale_down = full.saturating_sub(cfg.target_scale.min(full));
    let spec = WorkloadSpec::Dataset {
        ds: Dataset::NetflixLike,
        scale_down,
        seed: cfg.seed,
    };
    let actual = cfg
        .workload(&spec)
        .ratings()
        .expect("ratings")
        .num_ratings();
    // K substitution (paper ≈1024, ours 32) is documented in DESIGN.md;
    // the factor scales only the rating count so memory stays faithful.
    out.push((
        "netflix".into(),
        spec,
        cfg.scale_factor(info.num_edges, actual),
    ));
    let spec = WorkloadSpec::RmatRatings {
        scale: cfg.target_scale,
        num_items: 1 << (cfg.target_scale / 2),
        seed: cfg.seed,
    };
    let actual = cfg
        .workload(&spec)
        .ratings()
        .expect("ratings")
        .num_ratings();
    out.push((
        "synthetic".into(),
        spec,
        cfg.scale_factor(500_000_000, actual),
    ));
    out
}

/// Runs one cell of the benchmark crossbar under `factor` extrapolation,
/// returning the report or the error string the paper's figures annotate
/// (OOM / single-node-only). Direct (non-sweep) experiments use this.
pub fn run_cell(
    alg: Algorithm,
    fw: Framework,
    wl: &Workload,
    nodes: usize,
    factor: f64,
    params: &BenchParams,
) -> Result<RunReport, String> {
    crate::with_work_scale(factor, || {
        run_benchmark(alg, fw, wl, nodes, params)
            .map(|o| o.report)
            .map_err(|e| match e {
                SimError::OutOfMemory(_) => "OOM".to_string(),
                SimError::InvalidConfig(_) => "n/a".to_string(),
                SimError::NodeFailed { .. } => "failed".to_string(),
            })
    })
}

/// The report of a sweep cell, or the annotation string its failure mode
/// carries in the paper's figures (OOM / n/a / fail).
pub fn cell_report(result: &CellResult) -> Result<&RunReport, String> {
    match &result.outcome {
        Ok(o) => Ok(&o.report),
        Err(e) => Err(e.annotation().to_string()),
    }
}

/// Reported time for an algorithm: per-iteration where the paper uses
/// per-iteration (PageRank, CF), overall otherwise.
pub fn reported_seconds(alg: Algorithm, r: &RunReport) -> f64 {
    if alg.per_iteration() {
        r.seconds_per_iteration()
    } else {
        r.sim_seconds
    }
}
