//! The in-text experiments: §5.4 traffic-based prediction, §3.2 SGD vs
//! GD convergence, §6.1.3 Giraph superstep splitting, and the §6.1.1
//! design-choice ablations DESIGN.md calls out.

use graphmaze_core::cluster::Partition1D;
use graphmaze_core::native::cf::{self, CfConfig};
use graphmaze_core::prelude::*;
use graphmaze_core::report::{fmt_bytes, fmt_secs, fmt_slowdown, format_table};

use super::{cell_report, reported_seconds, run_cell};
use crate::{standard_params, ReproConfig};

/// §5.4 — "we look at only the measured network parameters for pagerank
/// to estimate performance differences (network bytes sent / peak network
/// bandwidth)": the paper predicts 1.75 / 9.8 / 5.6 / 32.7× for
/// CombBLAS / GraphLab / SociaLite / Giraph and finds the estimate within
/// 2.5× of measured. We reproduce both columns.
pub fn net_estimate(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let spec = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let factor = cfg.scale_factor(
        128u64 << 22,
        cfg.workload(&spec).directed().expect("graph").num_edges(),
    );
    let frameworks = [
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
    ];
    let mut sweep = Sweep::new("netestimate");
    for fw in std::iter::once(Framework::Native).chain(frameworks) {
        sweep.push(SweepCell {
            label: "synthetic".into(),
            algorithm: Algorithm::PageRank,
            framework: fw,
            spec: spec.clone(),
            nodes: 4,
            factor,
            params,
            faults: cfg.faults,
        });
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();
    let native = cell_report(results.next().expect("result"))
        .expect("native runs")
        .clone();
    let native_est = native.traffic.bytes_sent as f64 / native.traffic.peak_bw_bps.max(1.0);
    let mut rows = Vec::new();
    for fw in frameworks {
        let r = cell_report(results.next().expect("result")).expect("runs");
        let est = r.traffic.bytes_sent as f64 / r.traffic.peak_bw_bps.max(1.0);
        let predicted = est / native_est;
        let measured = r.sim_seconds / native.sim_seconds;
        let ratio = if predicted > measured {
            predicted / measured
        } else {
            measured / predicted
        };
        rows.push(vec![
            fw.name().to_string(),
            fmt_slowdown(predicted),
            fmt_slowdown(measured),
            format!("{ratio:.1}"),
        ]);
    }
    let mut out = String::from(
        "§5.4 — slowdown predicted from network traffic alone vs measured (pagerank, 4 nodes)\n\
         (paper predicts 1.75/9.8/5.6/32.7 and is within 2.5x of measured)\n\n",
    );
    let headers = ["framework", "predicted", "measured", "prediction error (x)"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("net_estimate", &headers, &rows);
    out
}

/// §3.2/§6.1.2 — SGD vs GD convergence on the Netflix stand-in: "for the
/// Netflix dataset, given a fixed convergence criterion, SGD converges in
/// about 40x fewer iterations than GD", while per-iteration cost is
/// similar in native code.
pub fn sgd_vs_gd(cfg: &ReproConfig) -> String {
    let wl = cfg.workload(&WorkloadSpec::Dataset {
        ds: Dataset::NetflixLike,
        scale_down: 7,
        seed: cfg.seed,
    });
    let g = wl.ratings().expect("ratings");
    let sgd_cfg = CfConfig {
        k: 16,
        lambda: 0.05,
        gamma0: 0.015,
        step_decay: 0.95,
        seed: 7,
    };
    let mut gd_cfg = sgd_cfg;
    // GD sums gradients over all ratings before stepping, so stability
    // needs a step inversely proportional to the max user/item degree —
    // part of why its convergence is so much slower (§3.2)
    let max_deg = (0..g.num_users())
        .map(|u| g.user_degree(u))
        .chain((0..g.num_items()).map(|v| g.item_degree(v)))
        .max()
        .unwrap_or(1);
    gd_cfg.gamma0 = (0.5 / f64::from(max_deg)).min(0.002);
    let epochs = 60;
    let (_, sgd_hist) = cf::sgd(g, &sgd_cfg, 12, 0);
    let (_, gd_hist) = cf::gd(g, &gd_cfg, epochs, 0);
    let target = sgd_hist[1]; // what SGD reaches by epoch 2
    let se = cf::epochs_to_reach(&sgd_hist, target).expect("sgd reaches its own rmse");
    let ge = cf::epochs_to_reach(&gd_hist, target);
    let mut out = String::from("§3.2 — SGD vs GD convergence (netflix stand-in)\n\n");
    let rows = vec![
        vec![
            "sgd".to_string(),
            format!("{se}"),
            format!("{:.4}", sgd_hist.last().unwrap()),
        ],
        vec![
            "gd".to_string(),
            ge.map_or(format!("> {epochs}"), |g| g.to_string()),
            format!("{:.4}", gd_hist.last().unwrap()),
        ],
    ];
    let headers = [
        "method",
        &format!("epochs to rmse {target:.3}")[..],
        "final rmse",
    ];
    out.push_str(&format_table(&headers, &rows));
    let gap = ge.map_or(epochs as f64 / se as f64, |g| f64::from(g) / f64::from(se));
    out.push_str(&format!(
        "\nconvergence gap ≥ {gap:.0}x fewer SGD epochs (paper: ~40x on Netflix)\n"
    ));
    cfg.write_csv(
        "sgd_vs_gd",
        &["method", "epochs_to_target", "final_rmse"],
        &rows,
    );
    out
}

/// §6.1.3 — Giraph superstep splitting: unsplit triangle counting
/// buffers O(Σd²) message bytes and exhausts memory at paper scale;
/// splitting into many mini-supersteps caps the buffer at the cost of
/// extra barriers.
pub fn giraph_split(cfg: &ReproConfig) -> String {
    use graphmaze_core::engines::vertex::giraph;
    let wl = cfg.workload(&WorkloadSpec::RmatTriangle {
        scale: cfg.target_scale,
        edge_factor: 8,
        seed: cfg.seed,
    });
    let oriented = wl.oriented().expect("oriented");
    let factor = cfg.scale_factor(1_468_365_182, oriented.num_edges()); // Twitter-scale
    let mut rows = Vec::new();
    for splits in [1u32, 10, 100] {
        let res = crate::with_work_scale(factor, || giraph::triangles_split(oriented, 4, splits));
        match res {
            Ok((count, report)) => rows.push(vec![
                splits.to_string(),
                "ok".to_string(),
                count.to_string(),
                fmt_bytes(report.peak_mem_bytes as f64),
                format!("{:.1}", report.sim_seconds),
            ]),
            Err(SimError::OutOfMemory(o)) => rows.push(vec![
                splits.to_string(),
                "OOM".to_string(),
                "-".to_string(),
                format!("needs {}", fmt_bytes((o.in_use + o.requested) as f64)),
                "-".to_string(),
            ]),
            Err(e) => rows.push(vec![
                splits.to_string(),
                format!("{e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    let mut out = String::from(
        "§6.1.3 — Giraph triangle counting with superstep splitting (4 nodes, Twitter-scale)\n\
         (paper: only the split version runs at all)\n\n",
    );
    let headers = [
        "splits",
        "status",
        "triangles",
        "peak mem/node",
        "sim seconds",
    ];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("giraph_split", &headers, &rows);
    out
}

/// §6.2 — **the roadmap, applied**: each framework re-run with the
/// paper's recommended changes implemented as real mechanisms, showing
/// how far the ninja gap closes. The paper's predictions: GraphLab and
/// SociaLite "within 5× of native"; Giraph "very competitive with other
/// frameworks" after a 10× network boost; CombBLAS triangle counting
/// fixed by fusing A² with the mask.
pub fn roadmap(cfg: &ReproConfig) -> String {
    use graphmaze_core::engines::spmv::combblas;
    use graphmaze_core::engines::vertex::{giraph, graphlab};
    let params = standard_params();
    let wl = cfg.workload(&WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    });
    let g = wl.directed().expect("directed");
    let factor = cfg.scale_factor(128u64 << 22, g.num_edges());
    let native = run_cell(
        Algorithm::PageRank,
        Framework::Native,
        &wl,
        4,
        factor,
        &params,
    )
    .expect("native runs");
    let nt = native.seconds_per_iteration();

    let mut rows = Vec::new();
    // GraphLab: sockets→MPI + prefetch + compression
    {
        let before = run_cell(
            Algorithm::PageRank,
            Framework::GraphLab,
            &wl,
            4,
            factor,
            &params,
        )
        .expect("graphlab");
        let after = crate::with_work_scale(factor, || {
            graphlab::pagerank_improved(g, PAGERANK_R, params.pr_iterations, 4).expect("improved")
        })
        .1;
        rows.push(vec![
            "graphlab (pagerank)".into(),
            "MPI + prefetch + compression".into(),
            fmt_slowdown(before.seconds_per_iteration() / nt),
            fmt_slowdown(after.seconds_per_iteration() / nt),
            "within 5x".into(),
        ]);
    }
    // Giraph: 10x network + 24 workers + streaming buffers + compression
    {
        let before = run_cell(
            Algorithm::PageRank,
            Framework::Giraph,
            &wl,
            4,
            factor,
            &params,
        )
        .expect("giraph");
        let after = crate::with_work_scale(factor, || {
            giraph::pagerank_improved(g, PAGERANK_R, params.pr_iterations, 4).expect("improved")
        })
        .1;
        rows.push(vec![
            "giraph (pagerank)".into(),
            "10x network + 24 workers + streaming".into(),
            fmt_slowdown(before.seconds_per_iteration() / nt),
            fmt_slowdown(after.seconds_per_iteration() / nt),
            "competitive".into(),
        ]);
    }
    // CombBLAS: fused masked SpGEMM for TC
    {
        let tc_wl = cfg.workload(&WorkloadSpec::RmatTriangle {
            scale: cfg.target_scale,
            edge_factor: 8,
            seed: cfg.seed,
        });
        let tg = tc_wl.oriented().expect("oriented");
        let tc_factor = cfg.scale_factor(32u64 << 22, tg.num_edges());
        let tc_native = run_cell(
            Algorithm::TriangleCount,
            Framework::Native,
            &tc_wl,
            4,
            tc_factor,
            &params,
        )
        .expect("native tc");
        let before = run_cell(
            Algorithm::TriangleCount,
            Framework::CombBlas,
            &tc_wl,
            4,
            tc_factor,
            &params,
        );
        let (after_count, after) = crate::with_work_scale(tc_factor, || {
            combblas::triangles_improved(tg, 4).expect("fused tc")
        });
        let (native_count, _) = crate::with_work_scale(tc_factor, || {
            graphmaze_core::native::triangle::triangles_cluster(tg, NativeOptions::all(), 4)
                .expect("native count")
        });
        assert_eq!(
            after_count, native_count,
            "fused SpGEMM must count correctly"
        );
        rows.push(vec![
            "combblas (triangle)".into(),
            "fused masked SpGEMM (no A2)".into(),
            before.map_or("OOM".into(), |r| {
                fmt_slowdown(r.sim_seconds / tc_native.sim_seconds)
            }),
            fmt_slowdown(after.sim_seconds / tc_native.sim_seconds),
            "no OOM, overlap".into(),
        ]);
    }
    // CombBLAS: bit-vector frontier compression for BFS
    {
        let und = wl.undirected().expect("undirected");
        let bfs_native = run_cell(Algorithm::Bfs, Framework::Native, &wl, 4, factor, &params)
            .expect("native bfs");
        let before = run_cell(Algorithm::Bfs, Framework::CombBlas, &wl, 4, factor, &params)
            .expect("combblas bfs");
        let source = (0..und.num_vertices() as u32)
            .max_by_key(|&v| und.adj.degree(v))
            .unwrap();
        let after = crate::with_work_scale(factor, || {
            combblas::bfs_improved(und, source, 4).expect("improved bfs")
        })
        .1;
        rows.push(vec![
            "combblas (bfs)".into(),
            "bit-vector frontier compression".into(),
            fmt_slowdown(before.sim_seconds / bfs_native.sim_seconds),
            fmt_slowdown(after.sim_seconds / bfs_native.sim_seconds),
            "improve BFS".into(),
        ]);
    }
    // SociaLite: network fix (Table 7) is its roadmap — reference it
    {
        let before = run_cell(
            Algorithm::PageRank,
            Framework::SociaLiteUnopt,
            &wl,
            4,
            factor,
            &params,
        )
        .expect("socialite-unopt");
        let after = run_cell(
            Algorithm::PageRank,
            Framework::SociaLite,
            &wl,
            4,
            factor,
            &params,
        )
        .expect("socialite");
        rows.push(vec![
            "socialite (pagerank)".into(),
            "multi-socket + batching (Table 7)".into(),
            fmt_slowdown(before.seconds_per_iteration() / nt),
            fmt_slowdown(after.seconds_per_iteration() / nt),
            "within 5x".into(),
        ]);
    }
    let mut out = String::from(
        "§6.2 — the roadmap, applied: slowdown vs native before/after the\n\
         paper's recommended changes (4 nodes)\n\n",
    );
    let headers = [
        "framework",
        "applied changes",
        "before",
        "after",
        "paper's target",
    ];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("roadmap", &headers, &rows);
    out
}

/// Extension beyond the paper: **strong scaling** — fixed total problem
/// size, growing node count. The paper only weak-scales (its rationale:
/// multi-node runs exist to fit bigger graphs); strong scaling exposes
/// the communication-to-computation crossover per framework.
pub fn strong_scaling(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let spec = WorkloadSpec::Rmat {
        scale: cfg.target_scale + 2,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let factor = cfg.scale_factor(
        512u64 << 20,
        cfg.workload(&spec).directed().expect("graph").num_edges(),
    );
    let node_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let frameworks = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::Giraph,
    ];
    let mut sweep = Sweep::new("strongscaling");
    for nodes in node_counts {
        for fw in frameworks {
            sweep.push(SweepCell {
                label: format!("{nodes} nodes"),
                algorithm: Algorithm::PageRank,
                framework: fw,
                spec: spec.clone(),
                nodes,
                factor,
                params,
                faults: cfg.faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();
    let mut rows = Vec::new();
    for nodes in node_counts {
        let mut row = vec![nodes.to_string()];
        for _ in frameworks {
            match cell_report(results.next().expect("result")) {
                Ok(r) => row.push(graphmaze_core::report::fmt_secs(r.seconds_per_iteration())),
                Err(e) => row.push(e),
            }
        }
        rows.push(row);
    }
    let mut out = String::from(
        "Extension — PageRank strong scaling (fixed graph, s/iter)\n\
         (not in the paper; shows where communication overtakes compute)\n\n",
    );
    let headers = ["nodes", "native", "combblas", "graphlab", "giraph"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("strong_scaling", &headers, &rows);
    out
}

/// §7 — the related-work frameworks the paper quantifies: GPS ("12X
/// performance improvement compared to Giraph ... but much slower than
/// native") and GraphX ("about 7X slower than GraphLab for pagerank").
pub fn related_work(cfg: &ReproConfig) -> String {
    use graphmaze_core::engines::vertex::{giraph, graphlab, related};
    let params = standard_params();
    let wl = cfg.workload(&WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    });
    let g = wl.directed().expect("directed");
    let factor = cfg.scale_factor(128u64 << 22, g.num_edges());
    let it = params.pr_iterations;
    let native = run_cell(
        Algorithm::PageRank,
        Framework::Native,
        &wl,
        4,
        factor,
        &params,
    )
    .expect("native");
    let nt = native.seconds_per_iteration();
    let run4 = |f: &dyn Fn() -> Result<graphmaze_core::metrics::RunReport, SimError>| -> f64 {
        crate::with_work_scale(factor, f)
            .expect("runs")
            .seconds_per_iteration()
    };
    let giraph_t = run4(&|| giraph::pagerank(g, PAGERANK_R, it, 4).map(|r| r.1));
    let graphlab_t = run4(&|| graphlab::pagerank(g, PAGERANK_R, it, 4).map(|r| r.1));
    let gps_t = run4(&|| related::gps_pagerank(g, PAGERANK_R, it, 4).map(|r| r.1));
    let graphx_t = run4(&|| related::graphx_pagerank(g, PAGERANK_R, it, 4).map(|r| r.1));
    let rows = vec![
        vec![
            "gps".to_string(),
            fmt_slowdown(gps_t / nt),
            format!("{:.1}x faster than giraph (paper: 12x)", giraph_t / gps_t),
        ],
        vec![
            "graphx".to_string(),
            fmt_slowdown(graphx_t / nt),
            format!(
                "{:.1}x slower than graphlab (paper: ~7x)",
                graphx_t / graphlab_t
            ),
        ],
    ];
    let mut out = String::from(
        "§7 — related-work frameworks (pagerank, 4 nodes, paper-scale extrapolation)\n\n",
    );
    let headers = ["framework", "slowdown vs native", "paper's cited relation"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv("related_work", &headers, &rows);
    out
}

/// §6.1.1 ablations of design choices: partitioning balance, the
/// compression codec's effect on bytes, overlap's effect on triangle-
/// counting buffer memory, and the direction-optimizing BFS switch.
pub fn ablations(cfg: &ReproConfig) -> String {
    let mut out = String::from("Design-choice ablations (§6.1.1)\n\n");
    let wl = cfg.workload(&WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    });
    let g = wl.directed().expect("directed");

    // (1) 1-D partition balance: vertex-balanced vs edge-balanced
    let by_vertex = Partition1D::balanced_by_vertices(g.num_vertices(), 4);
    let by_edges = Partition1D::balanced_by_edges(&g.inn, 4);
    let imbalance = |p: &Partition1D| -> f64 {
        let loads: Vec<u64> = (0..4).map(|k| p.edges_of(&g.inn, k)).collect();
        let max = *loads.iter().max().unwrap() as f64;
        let avg = loads.iter().sum::<u64>() as f64 / 4.0;
        max / avg.max(1.0)
    };
    let rows = vec![
        vec![
            "1-D by vertex count".to_string(),
            format!("{:.2}", imbalance(&by_vertex)),
        ],
        vec![
            "1-D by edge count".to_string(),
            format!("{:.2}", imbalance(&by_edges)),
        ],
    ];
    out.push_str("(1) partitioning — max/avg edge load per node (1.0 = perfect):\n");
    out.push_str(&format_table(&["scheme", "imbalance"], &rows));
    cfg.write_csv("ablation_partitioning", &["scheme", "imbalance"], &rows);

    // (2) compression: wire bytes with and without
    use graphmaze_core::native::pagerank::pagerank_cluster;
    let on = pagerank_cluster(g, PAGERANK_R, 3, NativeOptions::all(), 4)
        .unwrap()
        .1;
    let off = pagerank_cluster(
        g,
        PAGERANK_R,
        3,
        NativeOptions {
            compression: false,
            ..NativeOptions::all()
        },
        4,
    )
    .unwrap()
    .1;
    out.push_str(&format!(
        "\n(2) compression — pagerank wire bytes: {} -> {} ({:.1}x reduction; paper ~2.2x)\n",
        fmt_bytes(off.traffic.bytes_sent as f64),
        fmt_bytes(on.traffic.bytes_sent as f64),
        off.traffic.bytes_sent as f64 / on.traffic.bytes_sent.max(1) as f64
    ));

    // (3) overlap: triangle-counting buffer memory
    use graphmaze_core::native::triangle::triangles_cluster;
    let tc_wl = cfg.workload(&WorkloadSpec::RmatTriangle {
        scale: cfg.target_scale,
        edge_factor: 8,
        seed: cfg.seed,
    });
    let tg = tc_wl.oriented().expect("oriented");
    let with_overlap = triangles_cluster(tg, NativeOptions::all(), 4).unwrap().1;
    let without_overlap = triangles_cluster(
        tg,
        NativeOptions {
            overlap: false,
            ..NativeOptions::all()
        },
        4,
    )
    .unwrap()
    .1;
    out.push_str(&format!(
        "(3) overlap — TC peak buffer memory: {} -> {} (blocking large messages, §6.1.1)\n",
        fmt_bytes(without_overlap.peak_mem_bytes as f64),
        fmt_bytes(with_overlap.peak_mem_bytes as f64),
    ));

    // (4) direction-optimizing BFS: edges examined
    use graphmaze_core::native::bfs::bfs_with;
    let und = wl.undirected().expect("undirected");
    let source = (0..und.num_vertices() as u32)
        .max_by_key(|&v| und.adj.degree(v))
        .unwrap();
    let t0 = std::time::Instant::now();
    let a = bfs_with(und, source, 4, true);
    let t_opt = t0.elapsed();
    let t0 = std::time::Instant::now();
    let b = bfs_with(und, source, 4, false);
    let t_plain = t0.elapsed();
    assert_eq!(a, b);
    out.push_str(&format!(
        "(4) direction-optimizing BFS — real wall-clock {:?} vs top-down-only {:?} (identical results)\n",
        t_opt, t_plain
    ));

    // (5) bit-vector triangle counting: real wall-clock
    use graphmaze_core::native::triangle::triangles_with;
    let t0 = std::time::Instant::now();
    let c1 = triangles_with(tg, 4, true);
    let t_bv = t0.elapsed();
    let t0 = std::time::Instant::now();
    let c2 = triangles_with(tg, 4, false);
    let t_merge = t0.elapsed();
    assert_eq!(c1, c2);
    out.push_str(&format!(
        "(5) TC bit-vector hubs — real wall-clock {:?} vs merge-only {:?} (identical counts)\n",
        t_bv, t_merge
    ));

    // (6) GraphLab hub replication: wire traffic with/without
    {
        use graphmaze_core::engines::vertex::engine::run;
        use graphmaze_core::engines::vertex::gas::Gas;
        use graphmaze_core::engines::vertex::graphlab;
        use graphmaze_core::engines::vertex::programs::PageRankProgram;
        let with = graphlab::pagerank(g, PAGERANK_R, 3, 4).map_err(|e| e.to_string());
        let mut cfg_no_rep = graphlab::config(5);
        cfg_no_rep.replicate_hubs_factor = None;
        let prog = PageRankProgram {
            r: PAGERANK_R,
            iterations: 3,
        };
        let without = run(
            &g.out,
            None,
            &Gas(prog),
            vec![1.0f64; g.num_vertices()],
            vec![],
            true,
            &cfg_no_rep,
            4,
            1,
        )
        .map_err(|e| e.to_string());
        if let (Ok((_, w)), Ok((_, wo))) = (with, without) {
            out.push_str(&format!(
                "(6) GraphLab hub replication — pagerank wire bytes {} -> {} ({:.2}x reduction)\n",
                fmt_bytes(wo.traffic.bytes_sent as f64),
                fmt_bytes(w.traffic.bytes_sent as f64),
                wo.traffic.bytes_sent as f64 / w.traffic.bytes_sent.max(1) as f64,
            ));
        }
    }
    out
}

/// Communication matrix — the message plane's per-(src, dst) traffic
/// accounting, surfaced as an artifact. Runs PageRank on 4 nodes under
/// each studied framework and prints who sent how many wire bytes to
/// whom; `comm_matrix.csv` carries the full `framework × src × dst`
/// crossbar. Row sums reconcile with the per-node sent bytes the
/// simulator meters independently — the invariant the conformance tests
/// pin — so the matrix is a lossless decomposition of Fig 6's "network
/// bytes sent" bars.
pub fn comm_matrix(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let spec = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let factor = cfg.scale_factor(
        128u64 << 20,
        cfg.workload(&spec).directed().expect("graph").num_edges(),
    );
    let frameworks = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
    ];
    let nodes = 4;
    let mut sweep = Sweep::new("commmatrix");
    for fw in frameworks {
        sweep.push(SweepCell {
            label: "synthetic".into(),
            algorithm: Algorithm::PageRank,
            framework: fw,
            spec: spec.clone(),
            nodes,
            factor,
            params,
            faults: cfg.faults,
        });
    }
    let report = crate::run_sweep(cfg, &sweep);

    let mut out = String::from(
        "Communication matrix — pagerank wire bytes from src (row) to dst (column), 4 nodes\n\n",
    );
    let mut csv_rows = Vec::new();
    for (fw, result) in frameworks.iter().zip(&report.results) {
        let r = match cell_report(result) {
            Ok(r) => r,
            Err(e) => {
                out.push_str(&format!("{}: {e}\n\n", fw.name()));
                continue;
            }
        };
        let m = &r.matrix;
        let mut rows = Vec::new();
        for src in 0..nodes {
            let mut row = vec![format!("node {src}")];
            for dst in 0..nodes {
                row.push(fmt_bytes(m.bytes(src, dst) as f64));
                csv_rows.push(vec![
                    fw.name().to_string(),
                    "pagerank".to_string(),
                    src.to_string(),
                    dst.to_string(),
                    m.bytes(src, dst).to_string(),
                    m.messages(src, dst).to_string(),
                ]);
            }
            row.push(fmt_bytes(m.row_bytes(src) as f64));
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("src \\ dst".to_string())
            .chain((0..nodes).map(|d| format!("node {d}")))
            .chain(std::iter::once("sent".to_string()))
            .collect();
        let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
        out.push_str(&format!(
            "{} — total {} in {} packets (row sums reconcile: {})\n",
            fw.name(),
            fmt_bytes(m.total_bytes() as f64),
            m.total_messages(),
            (0..nodes).all(|n| m.row_bytes(n) == r.node_sent_bytes[n]),
        ));
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
    }
    cfg.write_csv(
        "comm_matrix",
        &["framework", "algorithm", "src", "dst", "bytes", "messages"],
        &csv_rows,
    );
    out
}

/// Resilience curve — retransmission overhead vs link-drop probability
/// (an extension beyond the paper, which benchmarks on a healthy
/// network). PageRank on 8 nodes per framework, sweeping the lossy-link
/// plane's drop probability; every lossy cell pays for acks, timeouts,
/// exponential-backoff retransmits, heartbeats, and (for the vertex
/// engines) speculative straggler re-execution, all charged to the Sim
/// clock by the deterministic protocol model.
///
/// The drop decision for a given `(src, dst, seq, attempt)` coordinate
/// is a pure threshold test on a seeded hash, so the curve is
/// byte-identical across `--jobs` settings and monotone in the drop
/// probability: raising the rate never un-drops a packet, so the
/// retransmit count per cell never decreases. `linkdrop=0` leaves every
/// clock bitwise-identical to the fault-free run — the first column *is*
/// the baseline.
pub fn resilience(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let spec = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let factor = cfg.scale_factor(
        128u64 << 20,
        cfg.workload(&spec).directed().expect("graph").num_edges(),
    );
    let drops = [0.0f64, 0.001, 0.01, 0.05];
    let frameworks = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
    ];
    let nodes = 8;
    let mut sweep = Sweep::new("resilience");
    for fw in frameworks {
        for p in drops {
            let plan = FaultPlan::parse(&format!("seed=7,linkdrop={p}")).expect("valid spec");
            sweep.push(SweepCell {
                label: format!("{}@{p}", fw.name()),
                algorithm: Algorithm::PageRank,
                framework: fw,
                spec: spec.clone(),
                nodes,
                factor,
                params,
                faults: plan,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut out = String::from(
        "Resilience curve — pagerank on 8 nodes under a lossy message plane\n\
         overhead = sim seconds vs the linkdrop=0 baseline of the same framework\n\n",
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for fw in frameworks {
        let mut row = vec![fw.name().to_string()];
        let mut baseline = None;
        for p in drops {
            match cell_report(results.next().expect("one result per cell")) {
                Ok(r) => {
                    let base = *baseline.get_or_insert(r.sim_seconds);
                    let overhead = (r.sim_seconds / base - 1.0) * 100.0;
                    row.push(if p == 0.0 {
                        fmt_secs(r.sim_seconds)
                    } else {
                        format!("{} (+{overhead:.1}%)", fmt_secs(r.sim_seconds))
                    });
                    let ret = &r.retransmit;
                    csv_rows.push(vec![
                        fw.name().to_string(),
                        format!("{p}"),
                        format!("{:.9e}", r.sim_seconds),
                        format!("{overhead:.4}"),
                        ret.retransmits.to_string(),
                        ret.retransmitted_bytes.to_string(),
                        ret.duplicates.to_string(),
                        format!("{:.9e}", ret.timeout_seconds),
                        ret.heartbeats.to_string(),
                        ret.suspicions.to_string(),
                        ret.speculative_reexecs.to_string(),
                        ret.suppressed_duplicates.to_string(),
                    ]);
                }
                Err(e) => row.push(e),
            }
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("framework".to_string())
        .chain(drops.iter().map(|p| format!("linkdrop={p}")))
        .collect();
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&format_table(&headers, &rows));

    // second act: layer stragglers and packet duplication on the lossy
    // plane so the vertex engines' speculative re-execution (and the
    // combiner's duplicate suppression) appear in the artifact — pure
    // link drops never make a node late, so the curve above never
    // speculates
    let spec_plan = "seed=7,linkdrop=0.01,dup=0.01,straggler=0.2x3";
    let plan = FaultPlan::parse(spec_plan).expect("valid spec");
    let mut spec_sweep = Sweep::new("resilience-spec");
    for fw in [Framework::GraphLab, Framework::Giraph] {
        spec_sweep.push(SweepCell {
            label: format!("{}@spec", fw.name()),
            algorithm: Algorithm::PageRank,
            framework: fw,
            spec: spec.clone(),
            nodes,
            factor,
            params,
            faults: plan,
        });
    }
    let spec_report = crate::run_sweep(cfg, &spec_sweep);
    out.push_str(&format!(
        "\nspeculative re-execution under {spec_plan} (vertex engines only):\n\n"
    ));
    let mut spec_rows = Vec::new();
    for (fw, result) in [Framework::GraphLab, Framework::Giraph]
        .iter()
        .zip(&spec_report.results)
    {
        match cell_report(result) {
            Ok(r) => {
                let ret = &r.retransmit;
                spec_rows.push(vec![
                    fw.name().to_string(),
                    fmt_secs(r.sim_seconds),
                    ret.speculative_reexecs.to_string(),
                    fmt_secs(ret.speculative_seconds),
                    ret.suppressed_duplicates.to_string(),
                    ret.duplicates.to_string(),
                ]);
                csv_rows.push(vec![
                    format!("{}+spec", fw.name()),
                    "0.01".to_string(),
                    format!("{:.9e}", r.sim_seconds),
                    String::new(),
                    ret.retransmits.to_string(),
                    ret.retransmitted_bytes.to_string(),
                    ret.duplicates.to_string(),
                    format!("{:.9e}", ret.timeout_seconds),
                    ret.heartbeats.to_string(),
                    ret.suspicions.to_string(),
                    ret.speculative_reexecs.to_string(),
                    ret.suppressed_duplicates.to_string(),
                ]);
            }
            Err(e) => spec_rows.push(vec![
                fw.name().to_string(),
                e,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    out.push_str(&format_table(
        &[
            "framework",
            "sim seconds",
            "spec reexecs",
            "spec seconds",
            "suppressed dups",
            "wire dups",
        ],
        &spec_rows,
    ));
    cfg.write_csv(
        "resilience",
        &[
            "framework",
            "drop_prob",
            "sim_seconds",
            "overhead_pct",
            "retransmits",
            "retransmitted_bytes",
            "duplicates",
            "timeout_seconds",
            "heartbeats",
            "suspicions",
            "speculative_reexecs",
            "suppressed_duplicates",
        ],
        &csv_rows,
    );
    out
}

/// Extension — **elastic cluster membership**. The paper benchmarks
/// fixed clusters (§4.3: every sweep point is a static node count);
/// this experiment grows and shrinks the cluster *mid-run* and verifies
/// the answer never changes. PageRank on 4 logical nodes per framework,
/// under three plans:
///
/// * `static` — the fault-free baseline;
/// * `grow-shrink` — node 4 joins at the barrier ending step 1
///   (warm-started from the last checkpoint), original node 1
///   gracefully drains and leaves at step 2 — its partition *must*
///   migrate, so rebalance traffic shows up in the communication
///   matrix — and node 4 departs at step 3, each membership change
///   triggering a live weighted repartitioning;
/// * `hetero` — a heterogeneous fleet (`hw=1:oldgen,hw=3:slownic`)
///   where the capacity-weighted repartitioner would give the slow
///   node half the edges.
///
/// Engines address logical partitions, so elasticity only moves where
/// partitions live — the digest of every elastic cell must be
/// bit-identical to its static baseline, and the whole table is
/// byte-identical across `--jobs` settings. Artifact: `elastic.csv`
/// (one row per cell with the full RebalanceStats).
pub fn elastic(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let spec = WorkloadSpec::Rmat {
        scale: cfg.target_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let factor = cfg.scale_factor(
        128u64 << 20,
        cfg.workload(&spec).directed().expect("graph").num_edges(),
    );
    let nodes = 4;
    let plans = [
        ("static", "none"),
        ("grow-shrink", "seed=7,ckpt=1,join=4@1,leave=1@2,leave=4@3"),
        ("hetero", "seed=7,hw=1:oldgen,hw=3:slownic"),
    ];
    let frameworks = [Framework::Native, Framework::GraphLab, Framework::Giraph];
    let mut sweep = Sweep::new("elastic");
    for fw in frameworks {
        for (name, plan) in plans {
            let faults = if plan == "none" {
                FaultPlan::none()
            } else {
                FaultPlan::parse(plan).expect("valid spec")
            };
            sweep.push(SweepCell {
                label: format!("{}@{name}", fw.name()),
                algorithm: Algorithm::PageRank,
                framework: fw,
                spec: spec.clone(),
                nodes,
                factor,
                params,
                faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut out = String::from(
        "Elastic membership — pagerank on 4 logical nodes; joins/leaves\n\
         repartition live, digests must stay bit-identical to static\n\n",
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for fw in frameworks {
        let mut baseline: Option<f64> = None;
        for (name, plan) in plans {
            let result = results.next().expect("one result per cell");
            match &result.outcome {
                Ok(o) => {
                    let r = &o.report;
                    let base = *baseline.get_or_insert(o.digest);
                    let bitwise = o.digest.to_bits() == base.to_bits();
                    let reb = &r.rebalance;
                    rows.push(vec![
                        fw.name().to_string(),
                        name.to_string(),
                        fmt_secs(r.sim_seconds),
                        if bitwise { "bit-identical" } else { "DIVERGED" }.to_string(),
                        format!("{}+{}", reb.joins, reb.leaves),
                        fmt_bytes(reb.migrated_bytes as f64),
                        fmt_secs(reb.stall_seconds),
                        if reb.is_zero() {
                            format!("{nodes}→{nodes}")
                        } else {
                            format!("{}→{}", reb.peak_nodes, reb.final_nodes)
                        },
                    ]);
                    csv_rows.push(vec![
                        fw.name().to_string(),
                        name.to_string(),
                        plan.to_string(),
                        format!("{:.9e}", r.sim_seconds),
                        format!("{:.17e}", o.digest),
                        (bitwise as u8).to_string(),
                        reb.joins.to_string(),
                        reb.leaves.to_string(),
                        reb.rebalances.to_string(),
                        reb.migrated_bytes.to_string(),
                        reb.migrated_vertices.to_string(),
                        format!("{:.9e}", reb.stall_seconds),
                        format!("{:.9e}", reb.warmstart_seconds),
                        reb.drained_messages.to_string(),
                        reb.peak_nodes.to_string(),
                        reb.final_nodes.to_string(),
                    ]);
                }
                Err(e) => rows.push(vec![
                    fw.name().to_string(),
                    name.to_string(),
                    e.annotation().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    out.push_str(&format_table(
        &[
            "framework",
            "plan",
            "sim seconds",
            "digest vs static",
            "joins+leaves",
            "migrated",
            "rebalance stall",
            "peak→final nodes",
        ],
        &rows,
    ));
    cfg.write_csv(
        "elastic",
        &[
            "framework",
            "plan",
            "faults",
            "sim_seconds",
            "digest",
            "digest_match",
            "joins",
            "leaves",
            "rebalances",
            "migrated_bytes",
            "migrated_vertices",
            "stall_seconds",
            "warmstart_seconds",
            "drained_messages",
            "peak_nodes",
            "final_nodes",
        ],
        &csv_rows,
    );
    out
}

/// Extension — **the ninja gap, measured**. The paper's central number
/// is the productivity frameworks' 2–30× slowdown over native ninja
/// code; GraphMat's answer is to *compile* the same vertex programs
/// onto the SpMV backend. One sweep per extended algorithm over native,
/// GraphLab, Giraph and GraphMat (the comparison set honours
/// `--frameworks`; native always runs as the ratio's denominator),
/// reporting each framework's gap ratio — work-model `sim_seconds`
/// over native's — and whether its digest matches native's. The
/// quadratic-message algorithms (TC, CF) run at a capped scale so
/// Giraph's whole-superstep buffers survive; the rest run at
/// `--scale`. Artifacts: `ninjagap.csv` (one row per cell) and
/// `BENCH_ninjagap.json` (gap ratios, digest-match bits, per-framework
/// geomean gaps).
pub fn ninja_gap(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let compare: Vec<Framework> = [Framework::GraphLab, Framework::Giraph, Framework::GraphMat]
        .into_iter()
        .filter(|fw| cfg.frameworks.as_ref().is_none_or(|f| f.contains(fw)))
        .collect();
    let capped = cfg.target_scale.min(14);
    // the vertex engines run CF as whole-gradient descent (the paper's
    // GD formulation), which with the standard step size is only stable
    // up to ~2^11 users; past that the RMSE digest blows up while
    // native's SGD still converges
    let cf_scale = cfg.target_scale.min(11);
    let spec_for = |alg: Algorithm| -> (WorkloadSpec, u64, u32) {
        match alg {
            Algorithm::TriangleCount => (
                WorkloadSpec::RmatTriangle {
                    scale: capped,
                    edge_factor: 8,
                    seed: cfg.seed,
                },
                32u64 << 22,
                capped,
            ),
            Algorithm::CollaborativeFiltering => (
                WorkloadSpec::RmatRatings {
                    scale: cf_scale,
                    // items scale with users (fig3's shape) so per-item
                    // degree stays bounded
                    num_items: 1 << (cf_scale / 2),
                    seed: cfg.seed,
                },
                500_000_000,
                cf_scale,
            ),
            _ => (
                WorkloadSpec::Rmat {
                    scale: cfg.target_scale,
                    edge_factor: 16,
                    seed: cfg.seed,
                },
                128u64 << 20,
                cfg.target_scale,
            ),
        }
    };
    let mut sweep = Sweep::new("ninjagap");
    for alg in Algorithm::EXTENDED {
        let (spec, paper_edges, scale) = spec_for(alg);
        let wl = cfg.workload(&spec);
        let actual = match alg {
            Algorithm::CollaborativeFiltering => wl.ratings().expect("ratings").num_ratings(),
            Algorithm::TriangleCount => wl.oriented().expect("oriented").num_edges(),
            _ => wl.directed().expect("graph").num_edges(),
        };
        let factor = cfg.scale_factor(paper_edges, actual);
        for fw in std::iter::once(Framework::Native).chain(compare.iter().copied()) {
            sweep.push(SweepCell {
                label: format!("s{scale}"),
                algorithm: alg,
                framework: fw,
                spec: spec.clone(),
                nodes: 4,
                factor,
                params,
                faults: cfg.faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();

    let mut out = String::from(
        "Extension — the ninja gap: slowdown vs native per algorithm, 4 nodes\n\
         (GraphMat auto-lowers the same vertex programs onto masked SpMSpV;\n\
         the paper's frameworks pay 2-30x, the lowering should pay far less)\n\n",
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut json = graphmaze_core::flatjson::FlatJsonBuilder::new();
    json.str("experiment", "ninjagap")
        .u64("scale", u64::from(cfg.target_scale))
        .u64("capped_scale", u64::from(capped))
        .u64("seed", cfg.seed)
        .u64("nodes", 4);
    let mut gaps_by_fw: Vec<(Framework, Vec<f64>)> =
        compare.iter().map(|&fw| (fw, Vec::new())).collect();
    for alg in Algorithm::EXTENDED {
        let (spec, _, scale) = spec_for(alg);
        // CF's RMSE digest is fold-order sensitive across frameworks, so
        // its match criterion is the conformance matrix's: converged
        // below the untrained baseline (everything else: 1e-9 relative)
        let untrained = (alg == Algorithm::CollaborativeFiltering).then(|| {
            let wl = cfg.workload(&spec);
            let g = wl.ratings().expect("ratings");
            let sse: f64 = g
                .triples()
                .into_iter()
                .map(|(_, _, r)| f64::from(r).powi(2))
                .sum();
            (sse / g.num_ratings().max(1) as f64).sqrt()
        });
        let digest_matches = |d: f64, native: f64| match untrained {
            Some(u) => d.is_finite() && d > 0.0 && d < u,
            None => (d - native).abs() <= 1e-9 * native.abs().max(1.0),
        };
        let native = results.next().expect("native cell");
        let (native_digest, native_secs, native_row) = match &native.outcome {
            Ok(o) => (
                o.digest,
                reported_seconds(alg, &o.report),
                fmt_secs(reported_seconds(alg, &o.report)),
            ),
            Err(e) => (f64::NAN, f64::NAN, e.annotation().to_string()),
        };
        csv_rows.push(vec![
            alg.name().to_string(),
            Framework::Native.name().to_string(),
            scale.to_string(),
            format!("{native_secs:.9e}"),
            "1.000".to_string(),
            format!("{native_digest:.17e}"),
            "1".to_string(),
        ]);
        let mut row = vec![alg.name().to_string(), native_row];
        for &fw in &compare {
            let cell = results.next().expect("one cell per framework");
            match &cell.outcome {
                Ok(o) => {
                    let gap = reported_seconds(alg, &o.report) / native_secs;
                    let digest_match = digest_matches(o.digest, native_digest);
                    row.push(format!(
                        "{} {}",
                        fmt_slowdown(gap),
                        if digest_match { "=" } else { "DIGEST DIVERGES" }
                    ));
                    csv_rows.push(vec![
                        alg.name().to_string(),
                        fw.name().to_string(),
                        scale.to_string(),
                        format!("{:.9e}", reported_seconds(alg, &o.report)),
                        format!("{gap:.3}"),
                        format!("{:.17e}", o.digest),
                        u64::from(digest_match).to_string(),
                    ]);
                    json.f64(&format!("{}_{}_gap", alg.name(), fw.name()), gap);
                    json.u64(
                        &format!("{}_{}_digest_match", alg.name(), fw.name()),
                        u64::from(digest_match),
                    );
                    gaps_by_fw
                        .iter_mut()
                        .find(|(f, _)| *f == fw)
                        .expect("tracked framework")
                        .1
                        .push(gap);
                }
                Err(e) => {
                    row.push(e.annotation().to_string());
                    csv_rows.push(vec![
                        alg.name().to_string(),
                        fw.name().to_string(),
                        scale.to_string(),
                        e.annotation().to_string(),
                        "-".into(),
                        "-".into(),
                        "0".into(),
                    ]);
                }
            }
        }
        rows.push(row);
    }
    let headers: Vec<String> = ["algorithm".to_string(), "native".to_string()]
        .into_iter()
        .chain(compare.iter().map(|fw| fw.name().to_string()))
        .collect();
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&format_table(&headers, &rows));
    out.push('\n');
    for (fw, gaps) in &gaps_by_fw {
        if gaps.is_empty() {
            continue;
        }
        let g = graphmaze_core::report::geomean(gaps);
        json.f64(&format!("{}_geomean_gap", fw.name()), g);
        out.push_str(&format!("geomean gap {}: {}\n", fw.name(), fmt_slowdown(g)));
    }
    cfg.write_csv(
        "ninjagap",
        &[
            "algorithm",
            "framework",
            "scale",
            "reported_seconds",
            "gap_vs_native",
            "digest",
            "digest_match",
        ],
        &csv_rows,
    );
    if let Some(dir) = &cfg.out_dir {
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join("BENCH_ninjagap.json");
        let mut body = json.finish();
        body.push('\n');
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("warning: failed to write {}: {e}", path.display());
        }
    }
    out
}

/// Extension — the **bit-parallel multi-source BFS** column (ROADMAP
/// item: widen Table 5 beyond the paper's four algorithms). Two acts:
///
/// 1. A two-scale engine sweep over every framework with an msbfs port
///    (native, CombBLAS, GraphLab, Giraph — SociaLite and Galois are
///    honest "n/a" cells), 4 simulated nodes, digests journaled so
///    `--resume` and the serving daemon agree bit-exactly.
/// 2. A real wall-clock race on a scale-20 RMAT graph: one batched
///    64-source word pass of `graph::msbfs` against 64 independent
///    scalar `native::bfs` runs, both at the same thread count. The
///    batched kernel amortizes the edge stream across all 64 sources
///    (one `u64` frontier mask per vertex), so it must win by ≥2×; the
///    measured speedup lands in `msbfs_race.csv`.
pub fn msbfs(cfg: &ReproConfig) -> String {
    let params = standard_params();
    let frameworks = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::Giraph,
    ];
    let scales = [cfg.target_scale.saturating_sub(2).max(6), cfg.target_scale];
    let mut sweep = Sweep::new("msbfs");
    for scale in scales {
        let spec = WorkloadSpec::Rmat {
            scale,
            edge_factor: 16,
            seed: cfg.seed,
        };
        let factor = cfg.scale_factor(
            128u64 << 20,
            cfg.workload(&spec).directed().expect("graph").num_edges(),
        );
        for fw in frameworks {
            sweep.push(SweepCell {
                label: format!("s{scale}"),
                algorithm: Algorithm::MsBfs,
                framework: fw,
                spec: spec.clone(),
                nodes: 4,
                factor,
                params,
                faults: cfg.faults,
            });
        }
    }
    let report = crate::run_sweep(cfg, &sweep);
    let mut results = report.results.iter();
    let mut out = String::from(
        "Extension — bit-parallel multi-source BFS (64 sources/word), 4 nodes\n\
         overall seconds per framework; digests are bit-exact across engines\n\n",
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for scale in scales {
        let mut row = vec![format!("rmat s{scale}")];
        for fw in frameworks {
            match cell_report(results.next().expect("one result per cell")) {
                Ok(r) => {
                    row.push(fmt_secs(r.sim_seconds));
                    csv_rows.push(vec![
                        format!("{scale}"),
                        fw.name().to_string(),
                        format!("{:.9e}", r.sim_seconds),
                        r.traffic.bytes_sent.to_string(),
                    ]);
                }
                Err(e) => {
                    row.push(e.clone());
                    csv_rows.push(vec![
                        format!("{scale}"),
                        fw.name().to_string(),
                        e,
                        "-".into(),
                    ]);
                }
            }
        }
        rows.push(row);
    }
    let headers = ["dataset", "native", "combblas", "graphlab", "giraph"];
    out.push_str(&format_table(&headers, &rows));
    cfg.write_csv(
        "msbfs",
        &["scale", "framework", "sim_seconds", "bytes_sent"],
        &csv_rows,
    );

    // act 2: the wall-clock race the batching exists for
    let race_scale = 20u32;
    let spec = WorkloadSpec::Rmat {
        scale: race_scale,
        edge_factor: 16,
        seed: cfg.seed,
    };
    let wl = cfg.workload(&spec);
    let g = wl.undirected().expect("graph");
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let sources =
        graphmaze_core::runner::msbfs_sources(g.num_vertices() as u32, 64, params.msbfs_seed);
    let t0 = std::time::Instant::now();
    let batched = graphmaze_core::native::msbfs::msbfs(g, &sources, threads);
    let batched_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    for (i, &s) in sources.iter().enumerate() {
        let row = graphmaze_core::native::bfs::bfs(g, s, threads);
        assert_eq!(row, batched[i], "scalar BFS diverged from the batch");
    }
    let scalar_secs = t1.elapsed().as_secs_f64();
    let speedup = scalar_secs / batched_secs.max(1e-12);
    out.push_str(&format!(
        "\nwall-clock race on rmat s{race_scale} (ef 16), {} sources, {threads} threads:\n\
         batched word pass {:.3}s vs {} scalar BFS runs {:.3}s — {speedup:.1}x\n",
        sources.len(),
        batched_secs,
        sources.len(),
        scalar_secs,
    ));
    cfg.write_csv(
        "msbfs_race",
        &[
            "scale",
            "sources",
            "threads",
            "batched_wall_secs",
            "scalar_wall_secs",
            "speedup",
        ],
        &[vec![
            format!("{race_scale}"),
            sources.len().to_string(),
            threads.to_string(),
            format!("{batched_secs:.6}"),
            format!("{scalar_secs:.6}"),
            format!("{speedup:.3}"),
        ]],
    );
    out
}
