//! Step-trace export: Chrome trace-event JSON + per-step CSVs.
//!
//! With `repro --trace DIR`, every sweep writes two artifact kinds under
//! `DIR`:
//!
//! * `{experiment}.trace.json` — one Chrome trace-event file for the
//!   whole sweep, loadable in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`. Each successful cell is a *process* (named
//!   `alg×fw @ label, N nodes`) with six *thread* lanes — `compute`,
//!   `comm`, `barrier`, `recovery`, `resilience`, `membership` — and one
//!   complete ("X") event per step per non-empty lane, laid out on the
//!   simulated clock. Phases labelled via `Sim::phase` become the event
//!   names, so BFS direction switches or Giraph superstep splits are
//!   visible as lane colour changes; checkpoint writes and
//!   rollback/replay show up on the `recovery` lane, retransmission
//!   timeout/backoff stalls under a lossy-link fault plan on the
//!   `resilience` lane, and elastic join/leave rebalances (warm-start
//!   restores plus partition migration) on the `membership` lane.
//! * `{experiment}/{NNN}_{alg}_{fw}_{label}_{N}n.csv` — the raw
//!   [`StepRecord`] series for each successful cell, for ad-hoc
//!   analysis.
//!
//! Both artifacts are rendered from the ordered [`SweepReport`] after
//! the sweep completes, and contain only simulated quantities (no
//! wall-clock), so their bytes are identical whatever `--jobs` was.

use std::io::Write as _;
use std::path::Path;

use graphmaze_core::metrics::{SpanRecord, StepRecord, Timeline, SPAN_STAGES};
use graphmaze_core::prelude::*;

/// Lane names, in tid order (tid = index + 1).
const LANES: [&str; 6] = [
    "compute",
    "comm",
    "barrier",
    "recovery",
    "resilience",
    "membership",
];

/// Writes the sweep's trace artifacts under `dir` (see module docs).
/// Failed cells have no timeline and are skipped. Returns the number of
/// cells that produced trace data.
pub fn write_sweep_trace(
    dir: &Path,
    sweep: &Sweep,
    report: &SweepReport,
) -> std::io::Result<usize> {
    let cell_dir = dir.join(&sweep.experiment);
    std::fs::create_dir_all(&cell_dir)?;

    let mut events = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut traced = 0usize;
    for (i, (cell, result)) in sweep.cells.iter().zip(&report.results).enumerate() {
        let Ok(outcome) = &result.outcome else {
            continue;
        };
        let tl = &outcome.report.timeline;
        if tl.is_empty() {
            continue;
        }
        traced += 1;
        let pid = i + 1;
        let process = format!(
            "{}\u{d7}{} @ {}, {} node{}",
            cell.algorithm.name(),
            cell.framework.name(),
            cell.label,
            cell.nodes,
            if cell.nodes == 1 { "" } else { "s" },
        );
        push_event(
            &mut events,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                esc(&process)
            ),
        );
        for (t, lane) in LANES.iter().enumerate() {
            push_event(
                &mut events,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":\"{lane}\"}}}}",
                    t + 1
                ),
            );
        }
        // lay the steps out on the simulated clock, in microseconds
        let mut cursor = 0.0f64;
        for rec in &tl.steps {
            let spans = [
                (rec.compute_s, String::new()),
                (rec.comm_s, format!(",\"bytes_sent\":{}", rec.bytes_sent)),
                (rec.barrier_s, String::new()),
                (rec.recovery_s, String::new()),
                (rec.resilience_s, String::new()),
                (rec.rebalance_s, String::new()),
            ];
            for (tid0, (dur_s, extra)) in spans.iter().enumerate() {
                if *dur_s > 0.0 {
                    push_event(
                        &mut events,
                        &mut first,
                        &format!(
                            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"step\":{}{extra}}}}}",
                            esc(&rec.phase),
                            tid0 + 1,
                            us(cursor),
                            us(*dur_s),
                            rec.step,
                        ),
                    );
                }
                cursor += dur_s;
            }
        }
        write_cell_csv(&cell_dir, i, cell, tl)?;
    }
    events.push_str("\n]}\n");
    let path = dir.join(format!("{}.trace.json", sweep.experiment));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(events.as_bytes())?;
    Ok(traced)
}

/// Writes the serving daemon's request spans as a Chrome trace-event
/// file (`serve --trace FILE`). One *process* named `serve` carries four
/// *thread* lanes — the [`SPAN_STAGES`] in order — and each completed
/// request contributes one complete ("X") event per non-zero stage, laid
/// end to end on the daemon's wall clock starting at the span's
/// `start_s`. Event names are the request's cell label; `args` carry the
/// request id and outcome so cache hits (zero-width `execute` events are
/// simply absent) are distinguishable at a glance. Returns the number of
/// spans rendered.
pub fn write_serve_trace(path: &Path, spans: &[SpanRecord]) -> std::io::Result<usize> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut events = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    push_event(
        &mut events,
        &mut first,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"serve\"}}",
    );
    for (t, lane) in SPAN_STAGES.iter().enumerate() {
        push_event(
            &mut events,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{lane}\"}}}}",
                t + 1
            ),
        );
    }
    for span in spans {
        let mut cursor = span.start_s;
        for (tid0, dur_ns) in span.stages_ns().iter().enumerate() {
            let dur_s = *dur_ns as f64 * 1e-9;
            if *dur_ns > 0 {
                push_event(
                    &mut events,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":\"{}\",\"outcome\":\"{}\"}}}}",
                        esc(&span.label),
                        tid0 + 1,
                        us(cursor),
                        us(dur_s),
                        esc(&span.id),
                        esc(&span.outcome),
                    ),
                );
            }
            cursor += dur_s;
        }
    }
    events.push_str("\n]}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(events.as_bytes())?;
    Ok(spans.len())
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(ev);
}

/// Microseconds with shortest-round-trip formatting (Perfetto accepts
/// fractional timestamps). Purely a function of simulated values, so the
/// output is scheduling-independent.
fn us(seconds: f64) -> String {
    format!("{:?}", seconds * 1e6)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `a/b c` → `a-b-c`: keep filenames portable.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

fn write_cell_csv(
    cell_dir: &Path,
    index: usize,
    cell: &SweepCell,
    tl: &Timeline,
) -> std::io::Result<()> {
    let name = format!(
        "{index:03}_{}_{}_{}_{}n.csv",
        sanitize(cell.algorithm.name()),
        sanitize(cell.framework.name()),
        sanitize(&cell.label),
        cell.nodes,
    );
    let headers = [
        "step",
        "phase",
        "compute_s",
        "comm_s",
        "barrier_s",
        "recovery_s",
        "resilience_s",
        "rebalance_s",
        "bytes_sent",
        "messages",
        "max_node_bytes",
        "mem_peak_bytes",
    ];
    let rows: Vec<Vec<String>> = tl.steps.iter().map(csv_row).collect();
    let body = graphmaze_core::report::format_csv(&headers, &rows);
    std::fs::write(cell_dir.join(name), body)
}

fn csv_row(rec: &StepRecord) -> Vec<String> {
    vec![
        rec.step.to_string(),
        rec.phase.clone(),
        format!("{:?}", rec.compute_s),
        format!("{:?}", rec.comm_s),
        format!("{:?}", rec.barrier_s),
        format!("{:?}", rec.recovery_s),
        format!("{:?}", rec.resilience_s),
        format!("{:?}", rec.rebalance_s),
        rec.bytes_sent.to_string(),
        rec.messages.to_string(),
        rec.max_node_bytes.to_string(),
        rec.mem_peak_bytes.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_trace_renders_one_event_per_nonzero_stage() {
        let spans = vec![
            SpanRecord {
                id: "q1".into(),
                label: "bfs/native".into(),
                outcome: "miss".into(),
                start_s: 0.5,
                queue_ns: 1_000,
                lookup_ns: 2_000,
                execute_ns: 3_000,
                respond_ns: 4_000,
                total_ns: 10_000,
            },
            SpanRecord {
                id: "q2".into(),
                label: "bfs/native".into(),
                outcome: "hit".into(),
                start_s: 0.6,
                queue_ns: 1_000,
                lookup_ns: 2_000,
                execute_ns: 0, // cache hit: no execute event at all
                respond_ns: 4_000,
                total_ns: 7_000,
            },
        ];
        let dir = std::env::temp_dir().join(format!("gm-serve-trace-{}", std::process::id()));
        let path = dir.join("serve.trace.json");
        let n = write_serve_trace(&path, &spans).expect("trace written");
        assert_eq!(n, 2);
        let body = std::fs::read_to_string(&path).expect("readable");
        std::fs::remove_dir_all(&dir).ok();
        // 1 process_name + 4 thread_name + 4 + 3 X events
        assert_eq!(body.matches("\"ph\":\"X\"").count(), 7);
        assert_eq!(body.matches("\"outcome\":\"hit\"").count(), 3);
        for lane in SPAN_STAGES {
            assert!(
                body.contains(&format!("\"name\":\"{lane}\"")),
                "{lane} lane"
            );
        }
        // stages telescope on the wall clock: q2's queue starts at 0.6 s
        assert!(body.contains("\"ts\":600000.0"), "start_s laid out in us");
        // hit's respond starts after queue+lookup (0.6s + 3 us)
        assert!(body.contains("\"ts\":600003.0"), "stage telescoping");
    }
}
