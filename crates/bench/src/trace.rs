//! Step-trace export: Chrome trace-event JSON + per-step CSVs.
//!
//! With `repro --trace DIR`, every sweep writes two artifact kinds under
//! `DIR`:
//!
//! * `{experiment}.trace.json` — one Chrome trace-event file for the
//!   whole sweep, loadable in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`. Each successful cell is a *process* (named
//!   `alg×fw @ label, N nodes`) with five *thread* lanes — `compute`,
//!   `comm`, `barrier`, `recovery`, `resilience` — and one complete
//!   ("X") event per step per non-empty lane, laid out on the simulated
//!   clock. Phases labelled via `Sim::phase` become the event names, so
//!   BFS direction switches or Giraph superstep splits are visible as
//!   lane colour changes; checkpoint writes and rollback/replay show up
//!   on the `recovery` lane, and retransmission timeout/backoff stalls
//!   under a lossy-link fault plan on the `resilience` lane.
//! * `{experiment}/{NNN}_{alg}_{fw}_{label}_{N}n.csv` — the raw
//!   [`StepRecord`] series for each successful cell, for ad-hoc
//!   analysis.
//!
//! Both artifacts are rendered from the ordered [`SweepReport`] after
//! the sweep completes, and contain only simulated quantities (no
//! wall-clock), so their bytes are identical whatever `--jobs` was.

use std::io::Write as _;
use std::path::Path;

use graphmaze_core::metrics::{StepRecord, Timeline};
use graphmaze_core::prelude::*;

/// Lane names, in tid order (tid = index + 1).
const LANES: [&str; 5] = ["compute", "comm", "barrier", "recovery", "resilience"];

/// Writes the sweep's trace artifacts under `dir` (see module docs).
/// Failed cells have no timeline and are skipped. Returns the number of
/// cells that produced trace data.
pub fn write_sweep_trace(
    dir: &Path,
    sweep: &Sweep,
    report: &SweepReport,
) -> std::io::Result<usize> {
    let cell_dir = dir.join(&sweep.experiment);
    std::fs::create_dir_all(&cell_dir)?;

    let mut events = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut traced = 0usize;
    for (i, (cell, result)) in sweep.cells.iter().zip(&report.results).enumerate() {
        let Ok(outcome) = &result.outcome else {
            continue;
        };
        let tl = &outcome.report.timeline;
        if tl.is_empty() {
            continue;
        }
        traced += 1;
        let pid = i + 1;
        let process = format!(
            "{}\u{d7}{} @ {}, {} node{}",
            cell.algorithm.name(),
            cell.framework.name(),
            cell.label,
            cell.nodes,
            if cell.nodes == 1 { "" } else { "s" },
        );
        push_event(
            &mut events,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                esc(&process)
            ),
        );
        for (t, lane) in LANES.iter().enumerate() {
            push_event(
                &mut events,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":\"{lane}\"}}}}",
                    t + 1
                ),
            );
        }
        // lay the steps out on the simulated clock, in microseconds
        let mut cursor = 0.0f64;
        for rec in &tl.steps {
            let spans = [
                (rec.compute_s, String::new()),
                (rec.comm_s, format!(",\"bytes_sent\":{}", rec.bytes_sent)),
                (rec.barrier_s, String::new()),
                (rec.recovery_s, String::new()),
                (rec.resilience_s, String::new()),
            ];
            for (tid0, (dur_s, extra)) in spans.iter().enumerate() {
                if *dur_s > 0.0 {
                    push_event(
                        &mut events,
                        &mut first,
                        &format!(
                            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"step\":{}{extra}}}}}",
                            esc(&rec.phase),
                            tid0 + 1,
                            us(cursor),
                            us(*dur_s),
                            rec.step,
                        ),
                    );
                }
                cursor += dur_s;
            }
        }
        write_cell_csv(&cell_dir, i, cell, tl)?;
    }
    events.push_str("\n]}\n");
    let path = dir.join(format!("{}.trace.json", sweep.experiment));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(events.as_bytes())?;
    Ok(traced)
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(ev);
}

/// Microseconds with shortest-round-trip formatting (Perfetto accepts
/// fractional timestamps). Purely a function of simulated values, so the
/// output is scheduling-independent.
fn us(seconds: f64) -> String {
    format!("{:?}", seconds * 1e6)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `a/b c` → `a-b-c`: keep filenames portable.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

fn write_cell_csv(
    cell_dir: &Path,
    index: usize,
    cell: &SweepCell,
    tl: &Timeline,
) -> std::io::Result<()> {
    let name = format!(
        "{index:03}_{}_{}_{}_{}n.csv",
        sanitize(cell.algorithm.name()),
        sanitize(cell.framework.name()),
        sanitize(&cell.label),
        cell.nodes,
    );
    let headers = [
        "step",
        "phase",
        "compute_s",
        "comm_s",
        "barrier_s",
        "recovery_s",
        "resilience_s",
        "bytes_sent",
        "messages",
        "max_node_bytes",
        "mem_peak_bytes",
    ];
    let rows: Vec<Vec<String>> = tl.steps.iter().map(csv_row).collect();
    let body = graphmaze_core::report::format_csv(&headers, &rows);
    std::fs::write(cell_dir.join(name), body)
}

fn csv_row(rec: &StepRecord) -> Vec<String> {
    vec![
        rec.step.to_string(),
        rec.phase.clone(),
        format!("{:?}", rec.compute_s),
        format!("{:?}", rec.comm_s),
        format!("{:?}", rec.barrier_s),
        format!("{:?}", rec.recovery_s),
        format!("{:?}", rec.resilience_s),
        rec.bytes_sent.to_string(),
        rec.messages.to_string(),
        rec.max_node_bytes.to_string(),
        rec.mem_peak_bytes.to_string(),
    ]
}
