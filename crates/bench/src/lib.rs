//! # graphmaze-bench
//!
//! The benchmark harness: [`experiments`] regenerates **every table and
//! figure** of the paper's evaluation (run the `repro` binary), and the
//! Criterion benches under `benches/` measure the *real* wall-clock of
//! the real kernels and engines.
//!
//! ## Scale and extrapolation
//!
//! The paper's runs use up to 16 B edges on 64 physical nodes; the repro
//! harness executes the same algorithms on scaled-down inputs and, for
//! absolute numbers, applies the simulator's *work-scale extrapolation*
//! (`GRAPHMAZE_WORK_SCALE`): every metered byte, flop, message and
//! allocation is multiplied by `paper_size / generated_size`, which is
//! exact for per-edge-linear algorithms (PageRank, CF) and a documented
//! approximation for BFS/TC. Ratios between frameworks — the paper's
//! actual findings — do not depend on the extrapolation.

pub mod experiments;

use graphmaze_core::prelude::*;

/// Runs `f` under a simulator work-scale of `scale` (≥ 1), restoring the
/// previous value afterwards. Not thread-safe: the repro binary is
/// single-threaded by design.
pub fn with_work_scale<T>(scale: f64, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("GRAPHMAZE_WORK_SCALE").ok();
    std::env::set_var("GRAPHMAZE_WORK_SCALE", format!("{}", scale.max(1.0)));
    let out = f();
    match prev {
        Some(v) => std::env::set_var("GRAPHMAZE_WORK_SCALE", v),
        None => std::env::remove_var("GRAPHMAZE_WORK_SCALE"),
    }
    out
}

/// Harness-wide configuration.
#[derive(Clone, Debug)]
pub struct ReproConfig {
    /// Target log2 vertex count for generated graphs (a knob: larger is
    /// slower but closer to paper scale).
    pub target_scale: u32,
    /// RNG seed.
    pub seed: u64,
    /// Extrapolate metered costs to paper scale (absolute seconds) —
    /// ratios are unaffected either way.
    pub extrapolate: bool,
    /// Output directory for CSV artifacts (`None` disables writing).
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            target_scale: 13,
            seed: 20140622, // SIGMOD'14 started June 22
            extrapolate: true,
            out_dir: Some(std::path::PathBuf::from("results")),
        }
    }
}

impl ReproConfig {
    /// Extrapolation factor for a dataset with `paper_edges` at paper
    /// scale when we generated `actual_edges` (1.0 when extrapolation is
    /// off).
    pub fn scale_factor(&self, paper_edges: u64, actual_edges: u64) -> f64 {
        if self.extrapolate {
            (paper_edges as f64 / actual_edges.max(1) as f64).max(1.0)
        } else {
            1.0
        }
    }

    /// Writes a CSV artifact if an output directory is configured.
    pub fn write_csv(&self, name: &str, headers: &[&str], rows: &[Vec<String>]) {
        if let Some(dir) = &self.out_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("{name}.csv"));
            let body = graphmaze_core::report::format_csv(headers, rows);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
    }
}

/// Standard per-algorithm benchmark parameters used across experiments.
pub fn standard_params() -> BenchParams {
    BenchParams {
        pr_iterations: 5,
        bfs_source: u32::MAX,
        cf: CfConfig { k: 32, lambda: 0.05, gamma0: 0.005, step_decay: 0.98, seed: 42 },
        cf_iterations: 2,
        giraph_splits: 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_scale_guard_restores_env() {
        std::env::remove_var("GRAPHMAZE_WORK_SCALE");
        let inside = with_work_scale(8.0, || std::env::var("GRAPHMAZE_WORK_SCALE").unwrap());
        assert_eq!(inside, "8");
        assert!(std::env::var("GRAPHMAZE_WORK_SCALE").is_err());
    }

    #[test]
    fn scale_factor_math() {
        let cfg = ReproConfig::default();
        assert_eq!(cfg.scale_factor(1000, 10), 100.0);
        assert_eq!(cfg.scale_factor(5, 10), 1.0);
        let off = ReproConfig { extrapolate: false, ..ReproConfig::default() };
        assert_eq!(off.scale_factor(1000, 10), 1.0);
    }
}
