//! # graphmaze-bench
//!
//! The benchmark harness: [`experiments`] regenerates **every table and
//! figure** of the paper's evaluation (run the `repro` binary), and the
//! Criterion benches under `benches/` measure the *real* wall-clock of
//! the real kernels and engines.
//!
//! ## Scale and extrapolation
//!
//! The paper's runs use up to 16 B edges on 64 physical nodes; the repro
//! harness executes the same algorithms on scaled-down inputs and, for
//! absolute numbers, applies the simulator's *work-scale extrapolation*
//! (`GRAPHMAZE_WORK_SCALE`): every metered byte, flop, message and
//! allocation is multiplied by `paper_size / generated_size`, which is
//! exact for per-edge-linear algorithms (PageRank, CF) and a documented
//! approximation for BFS/TC. Ratios between frameworks — the paper's
//! actual findings — do not depend on the extrapolation.
//!
//! ## Sweeps
//!
//! The crossbar experiments declare their cells as a
//! [`Sweep`] and execute through [`run_sweep`]: workloads are built once
//! per process through the shared [`WorkloadCache`], cells run across
//! `--jobs N` worker threads, and completed cells append to
//! `results/journal.jsonl` so a killed run restarted with `--resume`
//! skips everything already measured.

pub mod cli;
pub mod experiments;
pub mod trace;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use graphmaze_core::prelude::*;

/// Runs `f` under a simulator work-scale of `scale` (≥ 1), restoring the
/// previous value afterwards. The override is **thread-local** (see
/// `graphmaze_cluster::work_scale`), so sweep cells running concurrently
/// on the executor's worker threads each see only their own scale.
pub fn with_work_scale<T>(scale: f64, f: impl FnOnce() -> T) -> T {
    graphmaze_core::cluster::with_work_scale(scale, f)
}

/// Cell counters accumulated across every sweep of a `repro` invocation,
/// for the end-of-run summary.
#[derive(Debug, Default)]
pub struct RunStats {
    /// Total cells dispatched.
    pub cells: AtomicUsize,
    /// Cells executed in this process.
    pub ran: AtomicUsize,
    /// Cells reconstructed from the journal.
    pub resumed: AtomicUsize,
    /// Cells that ended in an error (OOM / n/a / panic).
    pub failed: AtomicUsize,
}

/// Harness-wide configuration.
#[derive(Clone, Debug)]
pub struct ReproConfig {
    /// Target log2 vertex count for generated graphs (a knob: larger is
    /// slower but closer to paper scale).
    pub target_scale: u32,
    /// RNG seed.
    pub seed: u64,
    /// Extrapolate metered costs to paper scale (absolute seconds) —
    /// ratios are unaffected either way.
    pub extrapolate: bool,
    /// Output directory for CSV artifacts (`None` disables writing).
    pub out_dir: Option<std::path::PathBuf>,
    /// Sweep worker threads (`--jobs`).
    pub jobs: usize,
    /// Skip cells already recorded in the journal (`--resume`).
    pub resume: bool,
    /// Print live per-cell progress events to stderr (`--progress`/`-v`).
    pub progress: bool,
    /// Write Chrome-trace JSON + per-step CSVs for every sweep under
    /// this directory (`--trace DIR`; `None` disables).
    pub trace_dir: Option<std::path::PathBuf>,
    /// Fault-injection plan applied to every sweep cell (`--faults SPEC`;
    /// [`FaultPlan::none`] runs the fault-free crossbar).
    pub faults: FaultPlan,
    /// Per-cell wall-clock budget (`--cell-timeout SECS`; `None`
    /// disables). Cells over budget record a `timeout` outcome in the
    /// journal and are quarantined by `--resume` instead of re-running.
    pub cell_timeout: Option<std::time::Duration>,
    /// Framework filter for the experiments that honour one
    /// (`--frameworks LIST`; `None` runs each experiment's full set).
    /// The native baseline always runs regardless.
    pub frameworks: Option<Vec<Framework>>,
    /// Workloads built so far, shared by every experiment in this
    /// process.
    pub cache: Arc<WorkloadCache>,
    /// Cross-sweep cell counters for the final summary.
    pub stats: Arc<RunStats>,
    /// Telemetry registry the sweep workers record into (`--telemetry`;
    /// `None` disables). One registry spans every sweep of the
    /// invocation; `repro` renders it to `results/metrics.prom` at exit.
    pub telemetry: Option<Arc<graphmaze_core::metrics::Registry>>,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            target_scale: 13,
            seed: 20140622, // SIGMOD'14 started June 22
            extrapolate: true,
            out_dir: Some(std::path::PathBuf::from("results")),
            jobs: 1,
            resume: false,
            progress: false,
            trace_dir: None,
            faults: FaultPlan::none(),
            cell_timeout: None,
            frameworks: None,
            cache: Arc::new(WorkloadCache::new()),
            stats: Arc::new(RunStats::default()),
            telemetry: None,
        }
    }
}

impl ReproConfig {
    /// Extrapolation factor for a dataset with `paper_edges` at paper
    /// scale when we generated `actual_edges` (1.0 when extrapolation is
    /// off).
    pub fn scale_factor(&self, paper_edges: u64, actual_edges: u64) -> f64 {
        if self.extrapolate {
            (paper_edges as f64 / actual_edges.max(1) as f64).max(1.0)
        } else {
            1.0
        }
    }

    /// The cached workload for `spec`, building it on first use.
    pub fn workload(&self, spec: &WorkloadSpec) -> Arc<Workload> {
        self.cache.get(spec)
    }

    /// Where the sweep journal lives (`journal.jsonl` next to the CSVs;
    /// disabled together with CSV output).
    pub fn journal_path(&self) -> Option<std::path::PathBuf> {
        self.out_dir.as_ref().map(|d| d.join("journal.jsonl"))
    }

    /// The executor options this configuration implies.
    pub fn sweep_options(&self) -> SweepOptions {
        SweepOptions {
            jobs: self.jobs,
            journal: self.journal_path(),
            resume: self.resume,
            cell_timeout: self.cell_timeout,
            telemetry: self.telemetry.clone(),
        }
    }

    /// Writes a CSV artifact if an output directory is configured.
    pub fn write_csv(&self, name: &str, headers: &[&str], rows: &[Vec<String>]) {
        if let Some(dir) = &self.out_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("{name}.csv"));
            let body = graphmaze_core::report::format_csv(headers, rows);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
    }
}

/// Executes a sweep under `cfg`: live per-cell progress events go to
/// stderr when `cfg.progress` is set (stdout is reserved for the
/// rendered tables and CSVs), a completion summary always prints, and
/// trace artifacts are written when `cfg.trace_dir` is set.
pub fn run_sweep(cfg: &ReproConfig, sweep: &Sweep) -> SweepReport {
    let total = sweep.len();
    let done = AtomicUsize::new(0);
    let report = sweep.execute(&cfg.sweep_options(), &cfg.cache, &|ev: &SweepEvent<'_>| {
        if !cfg.progress {
            return;
        }
        let describe = |cell: &SweepCell| {
            format!(
                "{}×{} @ {}, {} node{}",
                cell.algorithm.name(),
                cell.framework.name(),
                cell.label,
                cell.nodes,
                if cell.nodes == 1 { "" } else { "s" },
            )
        };
        match ev {
            SweepEvent::Started {
                cell,
                remaining,
                elapsed_s,
                ..
            } => {
                eprintln!(
                    "  [{}] started {} — {remaining} cell{} to go, {elapsed_s:.1}s elapsed",
                    sweep.experiment,
                    describe(cell),
                    if *remaining == 1 { "" } else { "s" },
                );
            }
            SweepEvent::Finished {
                cell,
                result,
                remaining,
                elapsed_s,
                ..
            }
            | SweepEvent::Failed {
                cell,
                result,
                remaining,
                elapsed_s,
                ..
            } => {
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                let outcome = match (result.status, &result.outcome) {
                    (CellStatus::Resumed, Ok(_)) => "resumed".to_string(),
                    (CellStatus::Resumed, Err(e)) => format!("resumed ({})", e.annotation()),
                    (CellStatus::Ran, Ok(_)) => format!("ok in {:.2}s", result.wall_secs),
                    (CellStatus::Ran, Err(e)) => {
                        format!("{} in {:.2}s", e.annotation(), result.wall_secs)
                    }
                };
                eprintln!(
                    "  [{}] {n:>3}/{total} {} — {outcome} ({remaining} left, {elapsed_s:.1}s elapsed)",
                    sweep.experiment,
                    describe(cell),
                );
            }
        }
    });
    eprintln!(
        "  [{}] {} cells in {:.1}s — {} run, {} resumed, {} failed",
        sweep.experiment, total, report.wall_secs, report.ran, report.resumed, report.failed
    );
    if let Some(dir) = &cfg.trace_dir {
        match trace::write_sweep_trace(dir, sweep, &report) {
            Ok(traced) => eprintln!(
                "  [{}] trace: {} cell{} -> {}",
                sweep.experiment,
                traced,
                if traced == 1 { "" } else { "s" },
                dir.join(format!("{}.trace.json", sweep.experiment))
                    .display()
            ),
            Err(e) => eprintln!(
                "warning: failed to write trace for {}: {e}",
                sweep.experiment
            ),
        }
    }
    cfg.stats.cells.fetch_add(total, Ordering::Relaxed);
    cfg.stats.ran.fetch_add(report.ran, Ordering::Relaxed);
    cfg.stats
        .resumed
        .fetch_add(report.resumed, Ordering::Relaxed);
    cfg.stats.failed.fetch_add(report.failed, Ordering::Relaxed);
    report
}

/// Standard per-algorithm benchmark parameters used across experiments.
pub fn standard_params() -> BenchParams {
    BenchParams {
        pr_iterations: 5,
        bfs_source: u32::MAX,
        cf: CfConfig {
            k: 32,
            lambda: 0.05,
            gamma0: 0.005,
            step_decay: 0.98,
            seed: 42,
        },
        cf_iterations: 2,
        giraph_splits: 16,
        msbfs_sources: 64,
        msbfs_seed: 0x6d73_6266_7331,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_scale_guard_restores_scale() {
        use graphmaze_core::cluster::current_work_scale;
        let before = current_work_scale();
        let inside = with_work_scale(8.0, current_work_scale);
        assert_eq!(inside, 8.0);
        assert_eq!(current_work_scale(), before);
    }

    #[test]
    fn scale_factor_math() {
        let cfg = ReproConfig::default();
        assert_eq!(cfg.scale_factor(1000, 10), 100.0);
        assert_eq!(cfg.scale_factor(5, 10), 1.0);
        let off = ReproConfig {
            extrapolate: false,
            ..ReproConfig::default()
        };
        assert_eq!(off.scale_factor(1000, 10), 1.0);
    }

    #[test]
    fn config_workloads_are_cached() {
        let cfg = ReproConfig {
            out_dir: None,
            ..ReproConfig::default()
        };
        let spec = WorkloadSpec::Rmat {
            scale: 7,
            edge_factor: 4,
            seed: 5,
        };
        let a = cfg.workload(&spec);
        let b = cfg.workload(&spec);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cfg.cache.misses(), 1);
    }

    #[test]
    fn journal_path_follows_out_dir() {
        let cfg = ReproConfig::default();
        assert_eq!(
            cfg.journal_path(),
            Some(std::path::PathBuf::from("results").join("journal.jsonl"))
        );
        let off = ReproConfig {
            out_dir: None,
            ..ReproConfig::default()
        };
        assert_eq!(off.journal_path(), None);
        assert!(off.sweep_options().journal.is_none());
    }
}
