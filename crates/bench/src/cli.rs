//! Declarative command-line option tables, shared by `repro` and the
//! `serve` daemon/loadgen.
//!
//! Each binary declares its options once as a static [`Opt`] table; the
//! table drives parsing *and* renders the `usage:` block, so help text
//! can never drift from what the parser accepts. Typed accessors
//! return precise diagnostics — `--scale 2x` reports
//! ``invalid integer `2x` for --scale``, not a generic "needs an
//! integer" — where the old hand-rolled `std::env::args` loops lost the
//! offending token to a silent `parse().ok()`.

use std::collections::HashMap;

use graphmaze_core::cluster::span_err;
use graphmaze_core::runner::Framework;

/// Parses a comma-separated `--frameworks` filter (e.g.
/// `giraph,graphmat`) against the extended framework set. Unknown names
/// fail with a caret pointing at the offending segment of the spec and
/// the list of valid spellings — the same shape as the `FaultPlan`
/// parser's errors.
pub fn parse_framework_filter(spec: &str) -> Result<Vec<Framework>, String> {
    let mut out = Vec::new();
    let mut at = 0usize;
    for part in spec.split(',') {
        let name = part.trim();
        let name_at = at + (part.len() - part.trim_start().len());
        let found = Framework::EXTENDED.into_iter().find(|f| f.name() == name);
        match found {
            Some(fw) => {
                if !out.contains(&fw) {
                    out.push(fw);
                }
            }
            None => {
                return Err(span_err(
                    spec,
                    name_at,
                    name.len(),
                    format!(
                        "unknown framework `{name}` (expected one of: {})",
                        Framework::EXTENDED.map(|f| f.name()).join(", ")
                    ),
                ))
            }
        }
        at += part.len() + 1;
    }
    Ok(out)
}

/// One option in a table.
#[derive(Clone, Copy, Debug)]
pub struct Opt {
    /// Canonical spelling, with dashes (e.g. `--scale`).
    pub name: &'static str,
    /// Optional short/alternate spelling (e.g. `-v`).
    pub alias: Option<&'static str>,
    /// Metavariable for the value (`None` makes this a boolean flag).
    pub metavar: Option<&'static str>,
    /// Help text; embedded newlines become aligned continuation lines.
    pub help: &'static str,
}

impl Opt {
    /// A boolean flag.
    pub const fn flag(name: &'static str, help: &'static str) -> Opt {
        Opt {
            name,
            alias: None,
            metavar: None,
            help,
        }
    }

    /// A value-taking option.
    pub const fn value(name: &'static str, metavar: &'static str, help: &'static str) -> Opt {
        Opt {
            name,
            alias: None,
            metavar: Some(metavar),
            help,
        }
    }

    /// The same option with an alias.
    pub const fn with_alias(mut self, alias: &'static str) -> Opt {
        self.alias = Some(alias);
        self
    }
}

/// A binary's full option table.
#[derive(Clone, Copy, Debug)]
pub struct OptionTable {
    /// The options, in `usage:` display order.
    pub opts: &'static [Opt],
}

/// The result of a successful parse: option values, set flags, and
/// positional arguments in order.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    values: HashMap<&'static str, String>,
    flags: Vec<&'static str>,
    /// Non-option arguments, in order.
    pub positional: Vec<String>,
}

impl OptionTable {
    fn find(&self, arg: &str) -> Option<&'static Opt> {
        self.opts
            .iter()
            .find(|o| o.name == arg || o.alias == Some(arg))
    }

    /// Parses `args` (without the program name) against the table.
    /// Unknown options and missing values are errors; anything not
    /// starting with `-` is positional.
    pub fn parse(&self, args: impl IntoIterator<Item = String>) -> Result<ParsedArgs, String> {
        let mut out = ParsedArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if !arg.starts_with('-') {
                out.positional.push(arg);
                continue;
            }
            let opt = self
                .find(&arg)
                .ok_or_else(|| format!("unknown option `{arg}`"))?;
            match opt.metavar {
                None => {
                    if !out.flags.contains(&opt.name) {
                        out.flags.push(opt.name);
                    }
                }
                Some(metavar) => {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("{} needs a value ({metavar})", opt.name))?;
                    out.values.insert(opt.name, value);
                }
            }
        }
        Ok(out)
    }

    /// Renders the aligned `options:` block for the `usage:` text.
    pub fn render_options(&self) -> String {
        let head = |o: &Opt| -> String {
            let mut s = String::from("  ");
            s.push_str(o.name);
            if let Some(alias) = o.alias {
                s.push_str(&format!(", {alias}"));
            }
            if let Some(m) = o.metavar {
                s.push(' ');
                s.push_str(m);
            }
            s
        };
        let width = self
            .opts
            .iter()
            .map(|o| head(o).len())
            .max()
            .unwrap_or(0)
            .max(20)
            + 2;
        let mut out = String::new();
        for o in self.opts {
            let h = head(o);
            let mut lines = o.help.lines();
            let first = lines.next().unwrap_or("");
            out.push_str(&format!("{h:<width$}{first}\n"));
            for cont in lines {
                out.push_str(&format!("{:<width$}{cont}\n", ""));
            }
        }
        out
    }
}

impl ParsedArgs {
    /// Whether `name` (a flag) was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(&name)
    }

    /// The raw value of `name`, if given.
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `name` parsed as an integer type.
    pub fn int<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.raw(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid integer `{raw}` for {name}")),
        }
    }

    /// The value of `name` parsed as an f64.
    pub fn num(&self, name: &str) -> Result<Option<f64>, String> {
        match self.raw(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid number `{raw}` for {name}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: OptionTable = OptionTable {
        opts: &[
            Opt::value("--scale", "N", "target scale"),
            Opt::value("--rate", "R", "arrival rate"),
            Opt::flag("--progress", "live progress").with_alias("-v"),
            Opt::value("--out", "DIR", "output directory\n(second line)"),
        ],
    };

    #[test]
    fn framework_filter_parses_and_points_at_bad_segments() {
        assert_eq!(
            parse_framework_filter("giraph,graphmat").unwrap(),
            vec![Framework::Giraph, Framework::GraphMat]
        );
        // duplicates collapse, whitespace tolerated
        assert_eq!(
            parse_framework_filter("native, native").unwrap(),
            vec![Framework::Native]
        );
        let err = parse_framework_filter("giraph,graphmatt,native").unwrap_err();
        assert!(err.contains("unknown framework `graphmatt`"), "{err}");
        assert!(err.contains("galois, graphmat"), "lists valid names: {err}");
        assert!(
            err.ends_with("\n  giraph,graphmatt,native\n         ^^^^^^^^^"),
            "caret under the bad segment: {err}"
        );
    }

    #[test]
    fn parses_values_flags_aliases_and_positionals() {
        let p = TABLE
            .parse(["fig3", "--scale", "12", "-v", "table7"].map(String::from))
            .unwrap();
        assert_eq!(p.positional, ["fig3", "table7"]);
        assert_eq!(p.int::<u32>("--scale").unwrap(), Some(12));
        assert!(p.flag("--progress"));
        assert!(!p.flag("--out"));
        assert_eq!(p.raw("--out"), None);
    }

    #[test]
    fn bad_integers_name_the_token_and_the_option() {
        let p = TABLE.parse(["--scale", "2x"].map(String::from)).unwrap();
        assert_eq!(
            p.int::<u32>("--scale").unwrap_err(),
            "invalid integer `2x` for --scale"
        );
        let p = TABLE.parse(["--rate", "fast"].map(String::from)).unwrap();
        assert_eq!(
            p.num("--rate").unwrap_err(),
            "invalid number `fast` for --rate"
        );
    }

    #[test]
    fn unknown_options_and_missing_values_error() {
        assert_eq!(
            TABLE.parse(["--nope".to_string()]).unwrap_err(),
            "unknown option `--nope`"
        );
        assert_eq!(
            TABLE.parse(["--scale".to_string()]).unwrap_err(),
            "--scale needs a value (N)"
        );
    }

    #[test]
    fn rendered_options_stay_aligned_and_cover_every_opt() {
        let text = TABLE.render_options();
        for o in TABLE.opts {
            assert!(text.contains(o.name), "{} missing", o.name);
        }
        assert!(text.contains("(second line)"));
        // continuation lines are indented to the help column
        let lines: Vec<&str> = text.lines().collect();
        let col = lines[0].find("target scale").unwrap();
        assert_eq!(lines.last().unwrap().find("(second line)").unwrap(), col);
    }
}
