//! Criterion benches of the substrate: data generation throughput,
//! CSR construction, compression codecs, bit-vector kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphmaze_core::cluster::compress::{decode, encode_best, encode_with, Encoding};
use graphmaze_core::datagen::{er, rmat, RmatConfig, RmatParams};
use graphmaze_core::graph::bitvec::BitVec;
use graphmaze_core::graph::csr::Csr;

fn bench_rmat(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen_rmat");
    for scale in [14u32, 16] {
        let cfg = RmatConfig {
            scale,
            edge_factor: 16,
            params: RmatParams::GRAPH500,
            seed: 7,
            scramble_ids: true,
            threads: 0,
        };
        group.throughput(Throughput::Elements(cfg.num_edges()));
        group.bench_with_input(BenchmarkId::new("generate", scale), &cfg, |b, cfg| {
            b.iter(|| rmat::generate(cfg));
        });
    }
    group.finish();
}

fn bench_er(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen_er");
    group.throughput(Throughput::Elements(1 << 20));
    group.bench_function("generate_1M", |b| {
        b.iter(|| er::generate(1 << 16, 1 << 20, 7))
    });
    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let cfg = RmatConfig {
        scale: 16,
        edge_factor: 16,
        params: RmatParams::GRAPH500,
        seed: 7,
        scramble_ids: true,
        threads: 0,
    };
    let el = rmat::generate(&cfg);
    let mut group = c.benchmark_group("csr");
    group.throughput(Throughput::Elements(el.num_edges()));
    group.bench_function("from_edges", |b| {
        b.iter(|| Csr::from_edges(el.num_vertices(), el.edges()))
    });
    let csr = Csr::from_edges(el.num_vertices(), el.edges());
    group.bench_function("transpose", |b| b.iter(|| csr.transpose()));
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let sparse: Vec<u32> = (0..1_000_000u32).filter(|v| v % 23 == 0).collect();
    let dense: Vec<u32> = (0..1_000_000u32).filter(|v| v % 3 != 0).collect();
    let mut group = c.benchmark_group("compression");
    group.throughput(Throughput::Elements(sparse.len() as u64));
    group.bench_function("delta_varint_encode", |b| {
        b.iter(|| encode_with(&sparse, 1_000_000, Encoding::DeltaVarint))
    });
    group.bench_function("bitmap_encode", |b| {
        b.iter(|| encode_with(&dense, 1_000_000, Encoding::Bitmap))
    });
    group.bench_function("encode_best_sparse", |b| {
        b.iter(|| encode_best(&sparse, 1_000_000))
    });
    let encoded = encode_best(&sparse, 1_000_000);
    group.bench_function("decode", |b| b.iter(|| decode(&encoded).unwrap()));
    group.finish();
}

fn bench_bitvec(c: &mut Criterion) {
    let mut a = BitVec::new(1 << 20);
    let mut bvb = BitVec::new(1 << 20);
    for i in (0..1 << 20).step_by(3) {
        a.set(i);
    }
    for i in (0..1 << 20).step_by(5) {
        bvb.set(i);
    }
    let mut group = c.benchmark_group("bitvec");
    group.throughput(Throughput::Elements(1 << 20));
    group.bench_function("intersection_count_1M", |b| {
        b.iter(|| a.intersection_count(&bvb))
    });
    group.bench_function("iter_ones_1M", |b| b.iter(|| a.iter_ones().count()));
    group.finish();
}

criterion_group!(
    benches,
    bench_rmat,
    bench_er,
    bench_csr_build,
    bench_compression,
    bench_bitvec
);
criterion_main!(benches);
