//! Criterion benches of the *real* wall-clock of the native kernels —
//! the hand-optimized implementations the whole study is anchored on.
//! These complement the simulator: simulated time models the paper's
//! hardware, these numbers measure this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphmaze_core::native::cf::{self, CfConfig};
use graphmaze_core::native::{bfs, pagerank, triangle};
use graphmaze_core::prelude::*;

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_pagerank");
    for scale in [12u32, 14] {
        let wl = Workload::rmat(scale, 16, 7);
        let g = wl.directed.as_ref().unwrap();
        group.throughput(Throughput::Elements(g.num_edges()));
        group.bench_with_input(BenchmarkId::new("per_iter", scale), g, |b, g| {
            b.iter(|| pagerank::pagerank(g, PAGERANK_R, 1, 0));
        });
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_bfs");
    for scale in [12u32, 14] {
        let wl = Workload::rmat(scale, 16, 7);
        let g = wl.undirected.as_ref().unwrap();
        let src = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.adj.degree(v))
            .unwrap();
        group.throughput(Throughput::Elements(g.adj.num_edges()));
        group.bench_with_input(BenchmarkId::new("direction_opt", scale), g, |b, g| {
            b.iter(|| bfs::bfs(g, src, 0));
        });
        group.bench_with_input(BenchmarkId::new("top_down_only", scale), g, |b, g| {
            b.iter(|| bfs::bfs_with(g, src, 0, false));
        });
    }
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_triangles");
    group.sample_size(20);
    for scale in [11u32, 13] {
        let wl = Workload::rmat_triangle(scale, 8, 7);
        let g = wl.oriented.as_ref().unwrap();
        group.throughput(Throughput::Elements(g.num_edges()));
        group.bench_with_input(BenchmarkId::new("bitvector_hubs", scale), g, |b, g| {
            b.iter(|| triangle::triangles_with(g, 0, true));
        });
        group.bench_with_input(BenchmarkId::new("merge_only", scale), g, |b, g| {
            b.iter(|| triangle::triangles_with(g, 0, false));
        });
    }
    group.finish();
}

fn bench_cf(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_cf");
    group.sample_size(15);
    let wl = Workload::rmat_ratings(12, 256, 7);
    let g = wl.ratings.as_ref().unwrap();
    let cfg = CfConfig {
        k: 32,
        lambda: 0.05,
        gamma0: 0.01,
        step_decay: 0.95,
        seed: 7,
    };
    group.throughput(Throughput::Elements(g.num_ratings()));
    group.bench_function("sgd_epoch", |b| b.iter(|| cf::sgd(g, &cfg, 1, 0)));
    group.bench_function("gd_epoch", |b| b.iter(|| cf::gd(g, &cfg, 1, 0)));
    group.finish();
}

criterion_group!(
    benches,
    bench_pagerank,
    bench_bfs,
    bench_triangles,
    bench_cf
);
criterion_main!(benches);
