//! Criterion benches of the framework engines' *real* execution cost —
//! how expensive each programming model's machinery is in this
//! implementation (message vectors, semiring dispatch, rule evaluation,
//! task scheduling) compared to the native kernels, on identical inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmaze_core::engines::datalog::socialite;
use graphmaze_core::engines::spmv::combblas;
use graphmaze_core::engines::taskpar::galois;
use graphmaze_core::engines::vertex::{giraph, graphlab};
use graphmaze_core::prelude::*;

fn bench_pagerank_models(c: &mut Criterion) {
    let wl = Workload::rmat(11, 8, 7);
    let g = wl.directed.as_ref().unwrap();
    let mut group = c.benchmark_group("pagerank_models_real_time");
    group.sample_size(15);
    group.bench_with_input(BenchmarkId::new("native", 11), g, |b, g| {
        b.iter(|| graphmaze_core::native::pagerank::pagerank(g, PAGERANK_R, 3, 1));
    });
    group.bench_with_input(BenchmarkId::new("vertex_graphlab", 11), g, |b, g| {
        b.iter(|| graphlab::pagerank(g, PAGERANK_R, 3, 1).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("vertex_giraph", 11), g, |b, g| {
        b.iter(|| giraph::pagerank(g, PAGERANK_R, 3, 1).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("spmv_combblas", 11), g, |b, g| {
        b.iter(|| combblas::pagerank(g, PAGERANK_R, 3, 1).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("datalog_socialite", 11), g, |b, g| {
        b.iter(|| socialite::pagerank(g, PAGERANK_R, 3, 1, true).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("taskpar_galois", 11), g, |b, g| {
        b.iter(|| galois::pagerank(g, PAGERANK_R, 3, 1).unwrap());
    });
    group.finish();
}

fn bench_triangle_models(c: &mut Criterion) {
    let wl = Workload::rmat_triangle(10, 8, 7);
    let g = wl.oriented.as_ref().unwrap();
    let mut group = c.benchmark_group("triangle_models_real_time");
    group.sample_size(12);
    group.bench_function("native", |b| {
        b.iter(|| graphmaze_core::native::triangle::triangles(g, 1))
    });
    group.bench_function("vertex_graphlab", |b| {
        b.iter(|| graphlab::triangles(g, 1).unwrap())
    });
    group.bench_function("spmv_combblas", |b| {
        b.iter(|| combblas::triangles(g, 1).unwrap())
    });
    group.bench_function("datalog_socialite", |b| {
        b.iter(|| socialite::triangles(g, 1, true).unwrap())
    });
    group.bench_function("taskpar_galois", |b| {
        b.iter(|| galois::triangles(g, 1).unwrap())
    });
    group.finish();
}

fn bench_cluster_sim_overhead(c: &mut Criterion) {
    // how much the simulated multi-node bookkeeping costs on top of the
    // single-node run, per node count
    let wl = Workload::rmat(11, 8, 7);
    let g = wl.directed.as_ref().unwrap();
    let mut group = c.benchmark_group("cluster_sim_overhead");
    group.sample_size(15);
    for nodes in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("native_pagerank", nodes),
            &nodes,
            |b, &n| {
                b.iter(|| {
                    graphmaze_core::native::pagerank::pagerank_cluster(
                        g,
                        PAGERANK_R,
                        3,
                        NativeOptions::all(),
                        n,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pagerank_models,
    bench_triangle_models,
    bench_cluster_sim_overhead
);
criterion_main!(benches);
