//! Named dataset recipes standing in for the paper's Table 3.
//!
//! The real datasets (Facebook interactions, Wikipedia links, LiveJournal,
//! Twitter followers, Netflix and Yahoo! Music ratings) are proprietary or
//! impractically large; per the paper's own observation that "trends on
//! the synthetic dataset are in line with real-world data" (§5.2), each
//! preset is an RMAT stand-in matching the original's vertex count, edge
//! factor and skew at a configurable scale-down.

use graphmaze_graph::{EdgeList, RatingsGraph};

use crate::ratings::{self, RatingsGenConfig};
use crate::rmat::{self, RmatConfig, RmatParams};

/// Paper-scale dimensions of a dataset (Table 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Vertices at paper scale (users for bipartite datasets).
    pub num_vertices: u64,
    /// Items at paper scale (bipartite datasets only).
    pub num_items: u64,
    /// Edges / ratings at paper scale.
    pub num_edges: u64,
    /// Whether this is a bipartite ratings dataset.
    pub bipartite: bool,
}

/// The datasets of Table 3, as generator recipes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Facebook user-interaction graph stand-in (2.9 M vertices, 42 M edges).
    FacebookLike,
    /// Wikipedia link graph stand-in (3.6 M vertices, 85 M edges).
    WikipediaLike,
    /// LiveJournal follower graph stand-in (4.8 M vertices, 86 M edges).
    LiveJournalLike,
    /// Twitter follower graph stand-in (62 M vertices, 1.47 B edges).
    TwitterLike,
    /// Graph500 RMAT synthetic at a given scale (paper: scale 29, 8.6 B edges).
    Graph500 {
        /// log2 of the vertex count.
        scale: u32,
    },
    /// Netflix Prize ratings stand-in (480 K users × 17.8 K movies, 99 M ratings).
    NetflixLike,
    /// Yahoo! Music KDDCup 2011 stand-in (1 M users × 625 K items, 253 M ratings).
    YahooMusicLike,
    /// Synthetic collaborative-filtering dataset (paper: 63 M users, 16.7 B ratings).
    CfSynthetic {
        /// log2 of the user-side RMAT dimension.
        scale: u32,
    },
}

impl Dataset {
    /// All fixed-size presets (the real-world stand-ins).
    pub const REAL_WORLD: [Dataset; 6] = [
        Dataset::FacebookLike,
        Dataset::WikipediaLike,
        Dataset::LiveJournalLike,
        Dataset::TwitterLike,
        Dataset::NetflixLike,
        Dataset::YahooMusicLike,
    ];

    /// Paper-scale dimensions (Table 3).
    pub fn spec(&self) -> DatasetSpec {
        match *self {
            Dataset::FacebookLike => DatasetSpec {
                name: "facebook",
                num_vertices: 2_937_612,
                num_items: 0,
                num_edges: 41_919_708,
                bipartite: false,
            },
            Dataset::WikipediaLike => DatasetSpec {
                name: "wikipedia",
                num_vertices: 3_566_908,
                num_items: 0,
                num_edges: 84_751_827,
                bipartite: false,
            },
            Dataset::LiveJournalLike => DatasetSpec {
                name: "livejournal",
                num_vertices: 4_847_571,
                num_items: 0,
                num_edges: 85_702_475,
                bipartite: false,
            },
            Dataset::TwitterLike => DatasetSpec {
                name: "twitter",
                num_vertices: 61_578_415,
                num_items: 0,
                num_edges: 1_468_365_182,
                bipartite: false,
            },
            Dataset::Graph500 { scale } => DatasetSpec {
                name: "graph500",
                num_vertices: 1u64 << scale,
                num_items: 0,
                num_edges: 16u64 << scale,
                bipartite: false,
            },
            Dataset::NetflixLike => DatasetSpec {
                name: "netflix",
                num_vertices: 480_189,
                num_items: 17_770,
                num_edges: 99_072_112,
                bipartite: true,
            },
            Dataset::YahooMusicLike => DatasetSpec {
                name: "yahoo-music",
                num_vertices: 1_000_990,
                num_items: 624_961,
                num_edges: 252_800_275,
                bipartite: true,
            },
            Dataset::CfSynthetic { scale } => DatasetSpec {
                name: "cf-synthetic",
                num_vertices: 1u64 << scale,
                num_items: (1u64 << scale) / 48, // paper ratio ≈ 63.4M users : 1.34M items
                num_edges: 264u64 << scale.saturating_sub(1), // ≈ 16.7B at paper scale
                bipartite: true,
            },
        }
    }

    /// True for ratings datasets (use [`Dataset::generate_ratings`]).
    pub fn bipartite(&self) -> bool {
        self.spec().bipartite
    }

    /// RMAT scale (log2 vertices) for this dataset after dividing paper
    /// scale by `2^scale_down`, clamped to a minimum of 8.
    pub fn scaled_scale(&self, scale_down: u32) -> u32 {
        let v = self.spec().num_vertices.max(1);
        let full = 64 - (v - 1).leading_zeros(); // ceil(log2(v))
        full.saturating_sub(scale_down).max(8)
    }

    /// Average degree (edge factor) at paper scale, at least 1.
    pub fn edge_factor(&self) -> u32 {
        let s = self.spec();
        ((s.num_edges + s.num_vertices - 1) / s.num_vertices.max(1)).max(1) as u32
    }

    /// Generates the graph stand-in scaled down by `2^scale_down` with the
    /// given RMAT parameter family. Panics for bipartite datasets.
    pub fn generate_graph_with(&self, scale_down: u32, params: RmatParams, seed: u64) -> EdgeList {
        assert!(!self.bipartite(), "{:?} is a ratings dataset", self);
        let cfg = RmatConfig {
            scale: self.scaled_scale(scale_down),
            edge_factor: self.edge_factor(),
            params,
            seed,
            scramble_ids: true,
            threads: 0,
        };
        rmat::generate(&cfg)
    }

    /// Generates the graph stand-in with default Graph500 parameters.
    pub fn generate_graph(&self, scale_down: u32, seed: u64) -> EdgeList {
        self.generate_graph_with(scale_down, RmatParams::GRAPH500, seed)
    }

    /// Generates the ratings stand-in scaled down by `2^scale_down`.
    /// Panics for non-bipartite datasets.
    pub fn generate_ratings(&self, scale_down: u32, seed: u64) -> RatingsGraph {
        assert!(self.bipartite(), "{:?} is not a ratings dataset", self);
        let spec = self.spec();
        let scale = self.scaled_scale(scale_down);
        let items_full = spec.num_items.max(1);
        let num_items = (items_full >> scale_down).max(64) as u32;
        let cfg = RatingsGenConfig {
            scale,
            edge_factor: self.edge_factor().min(512),
            num_items,
            min_degree: 5,
            seed,
        };
        ratings::generate(&cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table3() {
        assert_eq!(Dataset::FacebookLike.spec().num_edges, 41_919_708);
        assert_eq!(Dataset::TwitterLike.spec().num_vertices, 61_578_415);
        assert_eq!(Dataset::NetflixLike.spec().num_items, 17_770);
        assert_eq!(
            Dataset::Graph500 { scale: 29 }.spec().num_vertices,
            536_870_912
        );
        // paper: 8,589,926,431 edges ≈ 16 * 2^29 (raw RMAT before dedup)
        assert_eq!(
            Dataset::Graph500 { scale: 29 }.spec().num_edges,
            8_589_934_592
        );
    }

    #[test]
    fn edge_factor_sane() {
        assert_eq!(Dataset::FacebookLike.edge_factor(), 15);
        assert_eq!(Dataset::Graph500 { scale: 20 }.edge_factor(), 16);
        assert!(Dataset::TwitterLike.edge_factor() >= 23);
    }

    #[test]
    fn scaled_scale_clamps() {
        // facebook full scale: ceil(log2(2.94M)) = 22
        assert_eq!(Dataset::FacebookLike.scaled_scale(0), 22);
        assert_eq!(Dataset::FacebookLike.scaled_scale(10), 12);
        assert_eq!(Dataset::FacebookLike.scaled_scale(30), 8);
    }

    #[test]
    fn generate_scaled_graph() {
        let el = Dataset::FacebookLike.generate_graph(12, 1);
        assert_eq!(el.num_vertices(), 1 << 10);
        assert_eq!(el.num_edges(), 15 << 10);
    }

    #[test]
    fn generate_scaled_ratings() {
        let g = Dataset::NetflixLike.generate_ratings(9, 1);
        assert!(g.num_users() > 0);
        assert!(g.num_items() > 0);
        assert!(g.num_ratings() > 0);
    }

    #[test]
    #[should_panic(expected = "is a ratings dataset")]
    fn graph_call_on_ratings_panics() {
        Dataset::NetflixLike.generate_graph(10, 1);
    }

    #[test]
    #[should_panic(expected = "is not a ratings dataset")]
    fn ratings_call_on_graph_panics() {
        Dataset::FacebookLike.generate_ratings(10, 1);
    }

    #[test]
    fn real_world_list_is_table3() {
        assert_eq!(Dataset::REAL_WORLD.len(), 6);
        assert_eq!(
            Dataset::REAL_WORLD.iter().filter(|d| d.bipartite()).count(),
            2
        );
    }
}
