//! Erdős–Rényi `G(n, m)` uniform random graphs.
//!
//! The non-power-law control: the paper contrasts its power-law ratings
//! generator with uniform samplers like Gemulla et al.'s (§4.1.2). ER
//! graphs also serve as ablation inputs for load-balance experiments,
//! since uniform degrees remove skew entirely.

use graphmaze_graph::{EdgeList, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::rmat::splitmix64_pub as splitmix64;

/// Generates `num_edges` uniformly random directed edges over
/// `num_vertices` vertices (duplicates/self-loops possible; normalize with
/// [`EdgeList`] passes). Deterministic for a given seed.
pub fn generate(num_vertices: u64, num_edges: u64, seed: u64) -> EdgeList {
    assert!(num_vertices > 0, "need at least one vertex");
    assert!(
        num_vertices <= u64::from(u32::MAX),
        "vertex ids must fit u32"
    );
    let mut rng = SmallRng::seed_from_u64(splitmix64(seed));
    let mut edges = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..num_vertices) as VertexId;
        let d = rng.gen_range(0..num_vertices) as VertexId;
        edges.push((s, d));
    }
    EdgeList::from_edges(num_vertices, edges).expect("ids in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_graph::csr::Csr;
    use graphmaze_graph::degree::DegreeStats;

    #[test]
    fn counts_and_ranges() {
        let el = generate(100, 500, 7);
        assert_eq!(el.num_vertices(), 100);
        assert_eq!(el.num_edges(), 500);
        assert!(el.edges().iter().all(|&(s, d)| s < 100 && d < 100));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(50, 100, 3).edges(), generate(50, 100, 3).edges());
        assert_ne!(generate(50, 100, 3).edges(), generate(50, 100, 4).edges());
    }

    #[test]
    fn degrees_are_near_uniform() {
        let el = generate(1 << 10, 16 << 10, 11);
        let g = Csr::from_edges(el.num_vertices(), el.edges());
        let s = DegreeStats::of(&g);
        // Poisson(16) degrees: low skew compared to RMAT.
        assert!(s.gini < 0.25, "ER gini {} unexpectedly skewed", s.gini);
    }
}
