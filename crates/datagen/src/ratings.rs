//! Power-law ratings-matrix generator (paper §4.1.2).
//!
//! The paper's recipe, reproduced step by step:
//!
//! 1. generate a Graph500 RMAT graph with `A = 0.40, B = C = 0.22` (tail
//!    tuned to the Netflix dataset);
//! 2. "chunk the columns of the Graph500 matrix into chunks of size
//!    `N_items`", then "fold" by logical OR — i.e. item id = column mod
//!    `N_items`, duplicate cells merged;
//! 3. remove all vertices with degree < 5;
//! 4. assign star ratings. We draw ratings 1–5 from a Netflix-shaped
//!    marginal (mean ≈ 3.6) with a per-edge hash, keeping the generator
//!    deterministic and parallel-safe.

use graphmaze_graph::{RatingsGraph, VertexId, Weight};

use crate::rmat::{self, RmatConfig, RmatParams};

/// Probability of each star rating 1..=5 (Netflix-prize-shaped marginal).
const STAR_PROBS: [f64; 5] = [0.05, 0.10, 0.25, 0.35, 0.25];

/// Configuration of the ratings generator.
#[derive(Clone, Copy, Debug)]
pub struct RatingsGenConfig {
    /// `log2` of the square RMAT matrix dimension.
    pub scale: u32,
    /// Raw edges generated = `edge_factor * 2^scale`.
    pub edge_factor: u32,
    /// Number of items after folding (`N_items`, "movies" for Netflix).
    pub num_items: u32,
    /// Minimum degree kept by the filter pass (paper uses 5).
    pub min_degree: u32,
    /// RNG seed.
    pub seed: u64,
}

impl RatingsGenConfig {
    /// A config following the paper's defaults for a given scale.
    pub fn paper_defaults(scale: u32, num_items: u32, seed: u64) -> Self {
        RatingsGenConfig {
            scale,
            edge_factor: 16,
            num_items,
            min_degree: 5,
            seed,
        }
    }
}

/// Deterministically maps an edge to a star rating in `1.0..=5.0`.
#[inline]
fn star_for(u: VertexId, v: VertexId, seed: u64) -> Weight {
    let h = rmat::splitmix64_pub(
        seed ^ (u64::from(u) << 32 | u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    // map to [0,1)
    let r = (h >> 11) as f64 / (1u64 << 53) as f64;
    let mut acc = 0.0;
    for (i, &p) in STAR_PROBS.iter().enumerate() {
        acc += p;
        if r < acc {
            return (i + 1) as Weight;
        }
    }
    5.0
}

/// Runs the full pipeline and returns the bipartite ratings graph.
///
/// Users and items are compacted to dense id ranges after the min-degree
/// filter; the returned graph's `num_users()`/`num_items()` reflect the
/// surviving counts.
pub fn generate(cfg: &RatingsGenConfig) -> RatingsGraph {
    assert!(cfg.num_items > 0, "need at least one item");
    let rcfg = RmatConfig {
        scale: cfg.scale,
        edge_factor: cfg.edge_factor,
        params: RmatParams::RATINGS,
        seed: cfg.seed,
        scramble_ids: true,
        threads: 0,
    };
    let raw = rmat::generate(&rcfg);

    // Fold columns: item = col % num_items; logical OR = dedup.
    let mut cells: Vec<(VertexId, VertexId)> = raw
        .edges()
        .iter()
        .map(|&(row, col)| (row, col % cfg.num_items))
        .collect();
    cells.sort_unstable();
    cells.dedup();

    // Min-degree filter on both sides (single pass, as in the paper).
    let n_rows = raw.num_vertices() as usize;
    let mut row_deg = vec![0u32; n_rows];
    let mut col_deg = vec![0u32; cfg.num_items as usize];
    for &(r, c) in &cells {
        row_deg[r as usize] += 1;
        col_deg[c as usize] += 1;
    }
    let row_map = compact_ids(&row_deg, cfg.min_degree);
    let col_map = compact_ids(&col_deg, cfg.min_degree);
    let num_users = row_map.iter().filter(|m| m.is_some()).count() as u32;
    let num_items = col_map.iter().filter(|m| m.is_some()).count() as u32;

    let ratings: Vec<(VertexId, VertexId, Weight)> = cells
        .iter()
        .filter_map(|&(r, c)| {
            let u = row_map[r as usize]?;
            let v = col_map[c as usize]?;
            Some((u, v, star_for(u, v, cfg.seed)))
        })
        .collect();

    RatingsGraph::from_ratings(num_users, num_items, &ratings)
}

/// Maps ids with `deg >= min_degree` to dense `0..k`, dropping the rest.
fn compact_ids(degrees: &[u32], min_degree: u32) -> Vec<Option<VertexId>> {
    let mut next = 0 as VertexId;
    degrees
        .iter()
        .map(|&d| {
            if d >= min_degree {
                let id = next;
                next += 1;
                Some(id)
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RatingsGenConfig {
        RatingsGenConfig {
            scale: 12,
            edge_factor: 16,
            num_items: 256,
            min_degree: 5,
            seed: 99,
        }
    }

    #[test]
    fn generates_bipartite_graph_with_filter_applied() {
        let g = generate(&small_cfg());
        assert!(g.num_users() > 0 && g.num_items() > 0);
        assert!(g.num_items() <= 256);
        for u in 0..g.num_users() {
            assert!(
                g.user_degree(u) >= 5,
                "user {u} kept with degree {}",
                g.user_degree(u)
            );
        }
        for v in 0..g.num_items() {
            assert!(
                g.item_degree(v) >= 5,
                "item {v} kept with degree {}",
                g.item_degree(v)
            );
        }
    }

    #[test]
    fn ratings_are_stars() {
        let g = generate(&small_cfg());
        for (_, _, w) in g.triples() {
            assert!((1.0..=5.0).contains(&w) && w.fract() == 0.0, "rating {w}");
        }
    }

    #[test]
    fn mean_rating_netflix_shaped() {
        let g = generate(&small_cfg());
        let mean = g.mean_rating();
        assert!(
            (3.2..4.1).contains(&mean),
            "mean rating {mean} outside Netflix-like band"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.triples(), b.triples());
        let mut cfg = small_cfg();
        cfg.seed = 100;
        let c = generate(&cfg);
        assert_ne!(a.triples(), c.triples());
    }

    #[test]
    fn user_degrees_are_skewed() {
        // The paper tunes RMAT so the *user* (row) degree tail matches
        // Netflix; the fold never touches rows, so their skew must survive
        // the pipeline. The fold averages item-side skew at small scale,
        // so items only get a loose check.
        let g = generate(&small_cfg());
        let mut udegs: Vec<u32> = (0..g.num_users()).map(|u| g.user_degree(u)).collect();
        let ustats = graphmaze_graph::degree::DegreeStats::of_degrees(&mut udegs, g.num_ratings());
        assert!(
            ustats.gini > 0.25,
            "user degree gini {} too uniform",
            ustats.gini
        );
        let mut idegs: Vec<u32> = (0..g.num_items()).map(|v| g.item_degree(v)).collect();
        let istats = graphmaze_graph::degree::DegreeStats::of_degrees(&mut idegs, g.num_ratings());
        assert!(
            istats.gini > 0.05,
            "item degree gini {} too uniform",
            istats.gini
        );
    }

    #[test]
    fn star_distribution_roughly_matches_marginal() {
        let mut counts = [0u64; 5];
        for i in 0..20_000u64 {
            let s = star_for((i >> 8) as u32, (i & 255) as u32, 7);
            counts[s as usize - 1] += 1;
        }
        let total: u64 = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / total as f64;
            assert!(
                (p - STAR_PROBS[i]).abs() < 0.03,
                "star {} probability {p} vs expected {}",
                i + 1,
                STAR_PROBS[i]
            );
        }
    }
}
