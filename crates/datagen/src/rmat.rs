//! Graph500 RMAT (Recursive MATrix) generator.
//!
//! Each edge is placed by recursively choosing one of four quadrants of the
//! adjacency matrix with probabilities `(A, B, C, D)` until a single cell
//! remains. Skew in `A` produces the power-law degree distributions that
//! define "massive graph datasets" in the paper. Parameter presets come
//! straight from §4.1.2.
//!
//! Determinism: edges are generated in fixed 64 K-edge blocks, each block
//! seeded by `splitmix(seed, block_index)`, so output is identical for any
//! thread count.

use graphmaze_graph::par::par_for_chunks;
use graphmaze_graph::{EdgeList, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities of the recursive matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 defaults used by the paper for PageRank/BFS graphs:
    /// `A = 0.57, B = C = 0.19` (§4.1.2).
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// The paper's triangle-counting parameters, chosen "to reduce the
    /// number of triangles": `A = 0.45, B = C = 0.15`.
    pub const TRIANGLE: RmatParams = RmatParams {
        a: 0.45,
        b: 0.15,
        c: 0.15,
    };

    /// The paper's ratings-matrix parameters whose degree tail matches the
    /// Netflix dataset: `A = 0.40, B = C = 0.22`.
    pub const RATINGS: RmatParams = RmatParams {
        a: 0.40,
        b: 0.22,
        c: 0.22,
    };

    /// The implied bottom-right probability `D = 1 - A - B - C`.
    #[inline]
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Validates that all four probabilities are within `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [("a", self.a), ("b", self.b), ("c", self.c), ("d", self.d())] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("rmat parameter {name}={p} outside [0,1]"));
            }
        }
        Ok(())
    }
}

/// Full generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// `log2` of the number of vertices (Graph500 "scale").
    pub scale: u32,
    /// Edges generated = `edge_factor * 2^scale` (Graph500 uses 16).
    pub edge_factor: u32,
    /// Quadrant probabilities.
    pub params: RmatParams,
    /// RNG seed; same seed ⇒ same graph.
    pub seed: u64,
    /// Scramble vertex ids with a pseudorandom permutation, as Graph500
    /// requires, so that vertex id carries no degree information.
    pub scramble_ids: bool,
    /// Threads for generation (0 ⇒ default).
    pub threads: usize,
}

impl RmatConfig {
    /// A Graph500-flavored config at the given scale with edge factor 16.
    pub fn graph500(scale: u32, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor: 16,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: true,
            threads: 0,
        }
    }

    /// Number of vertices, `2^scale`.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of raw edges generated (before any dedup).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        u64::from(self.edge_factor) << self.scale
    }
}

/// SplitMix64 — tiny, high-quality seed mixer (public-domain constants).
#[inline]
pub fn splitmix64_pub(x: u64) -> u64 {
    splitmix64(x)
}

#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Feistel-style reversible id scramble on `scale` bits: a pseudorandom
/// permutation of `0..2^scale` without materializing it.
#[inline]
fn scramble(v: u64, scale: u32, seed: u64) -> u64 {
    debug_assert!(scale >= 2, "scramble needs at least 2 bits");
    let half = scale / 2;
    let lo_bits = half;
    let hi_bits = scale - half;
    let lo_mask = (1u64 << lo_bits) - 1;
    let hi_mask = (1u64 << hi_bits) - 1;
    let mut lo = v & lo_mask;
    let mut hi = (v >> lo_bits) & hi_mask;
    for round in 0..3u64 {
        let f = splitmix64(hi ^ seed.wrapping_add(round)) & lo_mask;
        let nl = (lo ^ f) & lo_mask;
        let nh = hi ^ (splitmix64(nl ^ seed.wrapping_mul(31).wrapping_add(round)) & hi_mask);
        lo = nl;
        hi = nh & hi_mask;
    }
    (hi << lo_bits) | lo
}

/// Generates one RMAT edge with the given RNG.
#[inline]
fn gen_edge(rng: &mut SmallRng, scale: u32, p: RmatParams) -> (u64, u64) {
    let mut src = 0u64;
    let mut dst = 0u64;
    let ab = p.a + p.b;
    let abc = ab + p.c;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left
        } else if r < ab {
            dst |= 1;
        } else if r < abc {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

const BLOCK: usize = 1 << 16;

/// Generates the raw RMAT edge list (duplicates and self-loops included —
/// normalize with [`EdgeList::dedup`] etc. as each algorithm requires).
///
/// ```
/// use graphmaze_datagen::{rmat, RmatConfig};
/// let el = rmat::generate(&RmatConfig::graph500(10, 42));
/// assert_eq!(el.num_vertices(), 1024);
/// assert_eq!(el.num_edges(), 16 * 1024); // Graph500 edge factor 16
/// ```
pub fn generate(cfg: &RmatConfig) -> EdgeList {
    cfg.params.validate().expect("invalid RMAT parameters");
    assert!(cfg.scale >= 2 && cfg.scale <= 32, "scale must be in 2..=32");
    let m = cfg.num_edges() as usize;
    let threads = if cfg.threads == 0 {
        graphmaze_graph::par::default_threads()
    } else {
        cfg.threads
    };
    let mut edges = vec![(0 as VertexId, 0 as VertexId); m];
    let nblocks = m.div_ceil(BLOCK);
    {
        let edges_slices: Vec<&mut [(VertexId, VertexId)]> = edges.chunks_mut(BLOCK).collect();
        let edges_cells: Vec<parking_slot::SliceCell<'_>> = edges_slices
            .into_iter()
            .map(parking_slot::SliceCell::new)
            .collect();
        par_for_chunks(nblocks, threads, |_, range| {
            for b in range {
                let mut rng = SmallRng::seed_from_u64(splitmix64(cfg.seed ^ (b as u64) << 1));
                let out = edges_cells[b].get_mut();
                for e in out.iter_mut() {
                    let (s, d) = gen_edge(&mut rng, cfg.scale, cfg.params);
                    let (s, d) = if cfg.scramble_ids {
                        (
                            scramble(s, cfg.scale, cfg.seed),
                            scramble(d, cfg.scale, cfg.seed),
                        )
                    } else {
                        (s, d)
                    };
                    *e = (s as VertexId, d as VertexId);
                }
            }
        });
    }
    EdgeList::from_edges(cfg.num_vertices(), edges).expect("generated ids in range")
}

/// Tiny unsafe cell wrapper letting disjoint mutable chunks be filled from
/// scoped threads. Each chunk is owned by exactly one block index.
mod parking_slot {
    use std::cell::UnsafeCell;

    pub struct SliceCell<'a>(UnsafeCell<&'a mut [(u32, u32)]>);

    // SAFETY: each SliceCell wraps a disjoint chunk and is accessed by at
    // most one worker (block indices are partitioned across threads).
    unsafe impl Sync for SliceCell<'_> {}

    impl<'a> SliceCell<'a> {
        pub fn new(s: &'a mut [(u32, u32)]) -> Self {
            SliceCell(UnsafeCell::new(s))
        }

        /// Callers must ensure exclusive access per block (par_for_chunks
        /// assigns each index to exactly one worker).
        #[allow(clippy::mut_from_ref)]
        pub fn get_mut(&self) -> &mut [(u32, u32)] {
            unsafe { *self.0.get() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_graph::csr::Csr;
    use graphmaze_graph::degree::{DegreeHistogram, DegreeStats};

    fn cfg(scale: u32) -> RmatConfig {
        RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed: 42,
            scramble_ids: false,
            threads: 2,
        }
    }

    #[test]
    fn params_presets_are_valid_distributions() {
        for p in [
            RmatParams::GRAPH500,
            RmatParams::TRIANGLE,
            RmatParams::RATINGS,
        ] {
            p.validate().unwrap();
            assert!((p.a + p.b + p.c + p.d() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.9
        }
        .validate()
        .is_err());
        assert!(RmatParams {
            a: -0.1,
            b: 0.5,
            c: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn generates_requested_counts_in_range() {
        let c = cfg(10);
        let el = generate(&c);
        assert_eq!(el.num_vertices(), 1024);
        assert_eq!(el.num_edges(), 8 * 1024);
        assert!(el.edges().iter().all(|&(s, d)| s < 1024 && d < 1024));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut c = cfg(9);
        c.threads = 1;
        let a = generate(&c);
        c.threads = 4;
        let b = generate(&c);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn different_seeds_differ() {
        let mut c = cfg(9);
        let a = generate(&c);
        c.seed = 43;
        let b = generate(&c);
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn skewed_params_give_power_law_tail() {
        let c = cfg(12);
        let el = generate(&c);
        let g = Csr::from_edges(el.num_vertices(), el.edges());
        let stats = DegreeStats::of(&g);
        // RMAT with A=0.57 concentrates degree on few vertices.
        assert!(stats.gini > 0.4, "gini {} too uniform for RMAT", stats.gini);
        let h = DegreeHistogram::of(&g);
        let slope = h.log_log_slope().expect("histogram has ≥2 buckets");
        assert!(slope < -0.3, "log-log slope {slope} not a decaying tail");
    }

    #[test]
    fn scramble_preserves_degree_distribution_but_moves_ids() {
        let mut c = cfg(10);
        c.scramble_ids = false;
        let plain = generate(&c);
        c.scramble_ids = true;
        let scrambled = generate(&c);
        assert_ne!(plain.edges(), scrambled.edges());
        // same number of edges, same multiset size
        assert_eq!(plain.num_edges(), scrambled.num_edges());
        // scramble is a bijection: degree multisets match
        let dg = |el: &EdgeList| {
            let g = Csr::from_edges(el.num_vertices(), el.edges());
            let mut d: Vec<u32> = (0..g.num_vertices()).map(|v| g.degree(v as u32)).collect();
            d.sort_unstable();
            d
        };
        assert_eq!(dg(&plain), dg(&scrambled));
    }

    #[test]
    fn scramble_is_bijective_on_small_domain() {
        let scale = 8;
        let mut seen = vec![false; 1 << scale];
        for v in 0..(1u64 << scale) {
            let s = scramble(v, scale, 1234) as usize;
            assert!(s < 1 << scale);
            assert!(!seen[s], "collision at {v} -> {s}");
            seen[s] = true;
        }
    }
}
