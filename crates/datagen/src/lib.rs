//! # graphmaze-datagen
//!
//! Synthetic graph and ratings-matrix generators reproducing §4.1 of
//! Satish et al. (SIGMOD 2014):
//!
//! * [`rmat`] — the Graph500 RMAT recursive-matrix generator with the
//!   paper's parameter presets (default `A=0.57, B=C=0.19`; triangle
//!   counting `A=0.45, B=C=0.15`; ratings `A=0.40, B=C=0.22`);
//! * [`er`] — Erdős–Rényi uniform graphs, the non-power-law control;
//! * [`ratings`] — the paper's fold-based power-law ratings generator
//!   (§4.1.2): RMAT → column chunking → logical OR → min-degree filter;
//! * [`presets`] — named dataset recipes standing in for the paper's
//!   real-world datasets (Table 3) at configurable scale.
//!
//! All generators are deterministic given a seed, independent of thread
//! count.

pub mod er;
pub mod presets;
pub mod ratings;
pub mod rmat;

pub use presets::{Dataset, DatasetSpec};
pub use ratings::RatingsGenConfig;
pub use rmat::{RmatConfig, RmatParams};
