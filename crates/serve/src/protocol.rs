//! The serving wire protocol: line-delimited flat JSON over TCP.
//!
//! One request per line, one response line per request, in order. The
//! codec round-trips a full [`RunRequest`] — every field of the cell
//! identity (experiment, label, algorithm, framework, workload spec,
//! nodes, factor, params, fault plan) plus the optional wall-clock
//! budget — so a query submitted over the wire is *the same run* the
//! offline `repro` harness would execute: same [`RunRequest::key`]
//! identity hash, same digest.
//!
//! Workload specs travel as their canonical journal string
//! (`rmat/s13/e16/x42`, parsed by `WorkloadSpec::parse_key`), and fault
//! plans as their canonical `FaultPlan` spec — the same spellings every
//! other artifact of the repo uses.
//!
//! Request ops:
//!
//! | op         | effect                                                |
//! |------------|-------------------------------------------------------|
//! | `run`      | execute (or answer from cache) a benchmark cell       |
//! | `stats`    | report counters, gauges and per-stage percentiles     |
//! | `metrics`  | Prometheus text exposition, terminated by `# EOF`     |
//! | `ping`     | liveness probe, answers `pong`                        |
//! | `shutdown` | acknowledge with `bye`, then drain and stop           |
//!
//! Every response carries `"status"`: `done` / `failed` (a cell-level
//! failure such as OOM — still an *answer*, and cached as one) /
//! `stats` / `pong` / `bye` / `error` (malformed request; nothing ran).
//!
//! `metrics` is the one deliberate exception to "one response line per
//! request": its payload is the multi-line Prometheus text-exposition
//! format (rendered by `graphmaze_metrics::expose`), so clients read
//! until the literal `# EOF` line instead of stopping at the first
//! newline. Every other op stays strictly line-delimited.

use std::collections::HashMap;
use std::time::Duration;

use graphmaze_core::cluster::FaultPlan;
use graphmaze_core::flatjson::FlatJsonBuilder;
use graphmaze_core::{
    Algorithm, BenchParams, Framework, Provenance, RunRequest, RunResponse, SweepCell, WorkloadSpec,
};

/// Current protocol version, carried in every response as `"proto"`.
/// Bump on incompatible changes; clients should reject mismatches.
pub const PROTOCOL_VERSION: u32 = 1;

/// Parses an algorithm by its stable short name (`Algorithm::name`),
/// including the `msbfs` extension (the full servable set is
/// `Algorithm::EXTENDED`). Unknown names fail with a caret pointing at
/// the offending span of `spec` (the whole line the name came from) and
/// the list of valid spellings, in the [`FaultPlan`] parser's style.
pub fn parse_algorithm_at(spec: &str, at: usize, name: &str) -> Result<Algorithm, String> {
    Algorithm::EXTENDED
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| {
            graphmaze_core::cluster::span_err(
                spec,
                at,
                name.len(),
                format!(
                    "unknown algorithm `{name}` (expected one of: {})",
                    Algorithm::EXTENDED.map(|a| a.name()).join(", ")
                ),
            )
        })
}

/// [`parse_algorithm_at`] with the name itself as the spec — the whole
/// name is underlined.
pub fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    parse_algorithm_at(name, 0, name)
}

/// Every framework the serving layer can name: the paper's six plus the
/// Table 7-only `socialite-unopt` variant and the GraphMat
/// auto-lowering engine.
pub const SERVABLE_FRAMEWORKS: [Framework; 8] = [
    Framework::Native,
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::SociaLiteUnopt,
    Framework::Giraph,
    Framework::Galois,
    Framework::GraphMat,
];

/// Parses a framework by its stable short name (`Framework::name`),
/// including the Table 7-only `socialite-unopt`. Unknown names fail
/// with a caret pointing at the offending span of `spec` and the list
/// of valid spellings, in the [`FaultPlan`] parser's style.
pub fn parse_framework_at(spec: &str, at: usize, name: &str) -> Result<Framework, String> {
    SERVABLE_FRAMEWORKS
        .into_iter()
        .find(|f| f.name() == name)
        .ok_or_else(|| {
            graphmaze_core::cluster::span_err(
                spec,
                at,
                name.len(),
                format!(
                    "unknown framework `{name}` (expected one of: {})",
                    SERVABLE_FRAMEWORKS.map(|f| f.name()).join(", ")
                ),
            )
        })
}

/// [`parse_framework_at`] with the name itself as the spec — the whole
/// name is underlined.
pub fn parse_framework(name: &str) -> Result<Framework, String> {
    parse_framework_at(name, 0, name)
}

/// Encodes a `run` request as one wire line (no trailing newline).
/// Every identity field is written explicitly — the decoder's defaults
/// never participate, so an encoded request round-trips bit-exactly.
pub fn encode_run_request(id: &str, req: &RunRequest) -> String {
    let c = &req.cell;
    let p = &c.params;
    let mut b = FlatJsonBuilder::new();
    b.str("op", "run")
        .str("id", id)
        .str("experiment", &req.experiment)
        .str("label", &c.label)
        .str("algorithm", c.algorithm.name())
        .str("framework", c.framework.name())
        .str("spec", &c.spec.key())
        .u64("nodes", c.nodes as u64)
        .f64("factor", c.factor)
        .str("faults", &c.faults.key())
        .u64("pr_iterations", u64::from(p.pr_iterations))
        .u64("bfs_source", u64::from(p.bfs_source))
        .u64("cf_k", p.cf.k as u64)
        .f64("cf_lambda", p.cf.lambda)
        .f64("cf_gamma0", p.cf.gamma0)
        .f64("cf_step_decay", p.cf.step_decay)
        .u64("cf_seed", p.cf.seed)
        .u64("cf_iterations", u64::from(p.cf_iterations))
        .u64("giraph_splits", u64::from(p.giraph_splits))
        .u64("msbfs_sources", u64::from(p.msbfs_sources))
        .u64("msbfs_seed", p.msbfs_seed);
    if let Some(t) = req.timeout {
        b.f64("timeout_s", t.as_secs_f64());
    }
    b.finish()
}

/// Decodes a parsed `run` request line into a [`RunRequest`]. Only
/// `algorithm` and `spec` are required; everything else falls back to
/// the documented defaults (experiment `serve`, framework `native`,
/// 1 node, factor 1, no faults, `BenchParams::default()`).
pub fn decode_run_request(m: &HashMap<String, String>) -> Result<RunRequest, String> {
    fn get_num<T: std::str::FromStr>(
        m: &HashMap<String, String>,
        key: &str,
        default: T,
    ) -> Result<T, String> {
        match m.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid number `{raw}` for `{key}`")),
        }
    }
    let algorithm = parse_algorithm(
        m.get("algorithm")
            .ok_or("missing required field `algorithm`")?,
    )?;
    let spec = WorkloadSpec::parse_key(m.get("spec").ok_or("missing required field `spec`")?)?;
    let framework = match m.get("framework") {
        Some(name) => parse_framework(name)?,
        None => Framework::Native,
    };
    let faults = match m.get("faults") {
        Some(spec) if spec != "none" => FaultPlan::parse(spec)?,
        _ => FaultPlan::none(),
    };
    let defaults = BenchParams::default();
    let params = BenchParams {
        pr_iterations: get_num(m, "pr_iterations", defaults.pr_iterations)?,
        bfs_source: get_num(m, "bfs_source", defaults.bfs_source)?,
        cf: graphmaze_core::native::cf::CfConfig {
            k: get_num(m, "cf_k", defaults.cf.k)?,
            lambda: get_num(m, "cf_lambda", defaults.cf.lambda)?,
            gamma0: get_num(m, "cf_gamma0", defaults.cf.gamma0)?,
            step_decay: get_num(m, "cf_step_decay", defaults.cf.step_decay)?,
            seed: get_num(m, "cf_seed", defaults.cf.seed)?,
        },
        cf_iterations: get_num(m, "cf_iterations", defaults.cf_iterations)?,
        giraph_splits: get_num(m, "giraph_splits", defaults.giraph_splits)?,
        msbfs_sources: get_num(m, "msbfs_sources", defaults.msbfs_sources)?,
        msbfs_seed: get_num(m, "msbfs_seed", defaults.msbfs_seed)?,
    };
    let timeout = match m.get("timeout_s") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("invalid number `{raw}` for `timeout_s`"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(format!("`timeout_s` must be non-negative, got `{raw}`"));
            }
            Some(Duration::from_secs_f64(secs))
        }
    };
    let cell = SweepCell {
        label: m.get("label").cloned().unwrap_or_default(),
        algorithm,
        framework,
        spec,
        nodes: get_num(m, "nodes", 1usize)?,
        factor: get_num(m, "factor", 1.0f64)?,
        params,
        faults,
    };
    Ok(RunRequest {
        experiment: m
            .get("experiment")
            .cloned()
            .unwrap_or_else(|| "serve".to_string()),
        cell,
        timeout,
    })
}

/// Encodes the response to a `run` request (no trailing newline). Both
/// success and cell-level failure lines carry the identity hash
/// (`key`, 16 hex digits) and the cache provenance (`cache`:
/// `hit`/`miss`).
pub fn encode_run_response(id: &str, resp: &RunResponse) -> String {
    let mut b = FlatJsonBuilder::new();
    b.u64("proto", u64::from(PROTOCOL_VERSION)).str("id", id);
    b.str("key", &format!("{:016x}", resp.key));
    b.str("cache", resp.provenance.wire_tag());
    match &resp.outcome {
        Ok(out) => {
            b.str("status", "done")
                .f64("digest", out.digest)
                .f64("sim_seconds", out.report.sim_seconds)
                .u64("steps", u64::from(out.report.steps))
                .u64("iterations", u64::from(out.report.iterations))
                .u64("run_nodes", out.report.nodes as u64)
                .u64("bytes_sent", out.report.traffic.bytes_sent);
        }
        Err(e) => {
            b.str("status", "failed")
                .str("error_kind", e.kind())
                .str("error", e.message())
                .str("annotation", e.annotation());
        }
    }
    b.f64("wall_secs", resp.wall_secs);
    b.finish()
}

/// Encodes a protocol-level error (nothing ran).
pub fn encode_error(id: &str, error: &str) -> String {
    FlatJsonBuilder::new()
        .u64("proto", u64::from(PROTOCOL_VERSION))
        .str("id", id)
        .str("status", "error")
        .str("error", error)
        .finish()
}

/// Whether a response line says the run was served from cache
/// (`"cache":"hit"`).
pub fn is_cache_hit(m: &HashMap<String, String>) -> bool {
    m.get("cache").map(String::as_str) == Some(Provenance::Cached.wire_tag())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_core::flatjson::parse_flat_json;

    fn sample_request() -> RunRequest {
        RunRequest::new(
            "serve",
            SweepCell {
                label: "pagerank@rmat".into(),
                algorithm: Algorithm::PageRank,
                framework: Framework::Giraph,
                spec: WorkloadSpec::Rmat {
                    scale: 10,
                    edge_factor: 16,
                    seed: 42,
                },
                nodes: 4,
                factor: 2.5,
                params: BenchParams::default(),
                faults: FaultPlan::parse("seed=7,linkdrop=0.01").unwrap(),
            },
        )
        .with_timeout(Some(Duration::from_secs_f64(1.5)))
    }

    #[test]
    fn run_request_round_trips_with_identical_identity_hash() {
        let req = sample_request();
        let line = encode_run_request("q1", &req);
        let m = parse_flat_json(&line).expect("parses");
        assert_eq!(m["op"], "run");
        assert_eq!(m["id"], "q1");
        let back = decode_run_request(&m).expect("decodes");
        assert_eq!(back.key(), req.key(), "identity hash survives the wire");
        assert_eq!(back.timeout, req.timeout);
        assert_eq!(back.cell.faults.key(), req.cell.faults.key());
    }

    #[test]
    fn msbfs_request_round_trips_params_and_identity_hash() {
        let req = RunRequest::new(
            "serve",
            SweepCell {
                label: "msbfs@rmat".into(),
                algorithm: Algorithm::MsBfs,
                framework: Framework::CombBlas,
                spec: WorkloadSpec::Rmat {
                    scale: 9,
                    edge_factor: 16,
                    seed: 42,
                },
                nodes: 4,
                factor: 1.0,
                params: BenchParams {
                    msbfs_sources: 128,
                    msbfs_seed: 0xfeed,
                    ..BenchParams::default()
                },
                faults: FaultPlan::none(),
            },
        );
        let m = parse_flat_json(&encode_run_request("q2", &req)).expect("parses");
        assert_eq!(m["algorithm"], "msbfs");
        let back = decode_run_request(&m).expect("decodes");
        assert_eq!(back.cell.params.msbfs_sources, 128);
        assert_eq!(back.cell.params.msbfs_seed, 0xfeed);
        assert_eq!(back.key(), req.key(), "identity hash survives the wire");
    }

    #[test]
    fn minimal_request_uses_documented_defaults() {
        let m =
            parse_flat_json(r#"{"op":"run","algorithm":"bfs","spec":"rmat/s8/e4/x1"}"#).unwrap();
        let req = decode_run_request(&m).unwrap();
        assert_eq!(req.experiment, "serve");
        assert_eq!(req.cell.framework, Framework::Native);
        assert_eq!(req.cell.nodes, 1);
        assert_eq!(req.cell.factor, 1.0);
        assert!(!req.cell.faults.is_active());
        assert_eq!(req.timeout, None);
    }

    #[test]
    fn bad_requests_name_the_offending_field() {
        let cases = [
            (r#"{"op":"run","spec":"rmat/s8/e4/x1"}"#, "algorithm"),
            (r#"{"op":"run","algorithm":"pagerank"}"#, "spec"),
            (
                r#"{"op":"run","algorithm":"pagerank","spec":"rmat/s8/e4/x1","nodes":"two"}"#,
                "`two`",
            ),
            (
                r#"{"op":"run","algorithm":"dijkstra","spec":"rmat/s8/e4/x1"}"#,
                "dijkstra",
            ),
            (
                r#"{"op":"run","algorithm":"bfs","spec":"rmat/s8/e4/x1","timeout_s":"-1"}"#,
                "timeout_s",
            ),
        ];
        for (line, needle) in cases {
            let err = decode_run_request(&parse_flat_json(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn unknown_names_point_at_the_offending_span() {
        let err = parse_framework("grahpmat").unwrap_err();
        assert!(err.contains("unknown framework `grahpmat`"), "{err}");
        assert!(err.contains("graphmat"), "lists valid names: {err}");
        assert!(err.ends_with("\n  grahpmat\n  ^^^^^^^^"), "{err}");
        let err = parse_algorithm_at("algos=pr,dijkstra", 9, "dijkstra").unwrap_err();
        assert!(err.contains("unknown algorithm `dijkstra`"), "{err}");
        assert!(
            err.ends_with("\n  algos=pr,dijkstra\n           ^^^^^^^^"),
            "caret sits under the bad segment: {err}"
        );
        assert!(parse_framework("graphmat").is_ok());
    }

    #[test]
    fn responses_encode_provenance_and_outcome() {
        let resp = RunResponse {
            key: 0xdead_beef,
            outcome: Err(graphmaze_core::CellError::OutOfMemory(
                "node 2: 5 GB".into(),
            )),
            provenance: Provenance::Cached,
            wall_secs: 0.001,
            cache_lookup: Duration::ZERO,
            execute: Duration::ZERO,
        };
        let m = parse_flat_json(&encode_run_response("x", &resp)).unwrap();
        assert_eq!(m["status"], "failed");
        assert_eq!(m["key"], "00000000deadbeef");
        assert_eq!(m["error_kind"], "oom");
        assert_eq!(m["annotation"], "OOM");
        assert!(is_cache_hit(&m));
        let err = parse_flat_json(&encode_error("x", "nope")).unwrap();
        assert_eq!(err["status"], "error");
        assert!(!is_cache_hit(&err));
    }
}
