//! Closed-loop load generator for the serving daemon.
//!
//! `concurrency` workers each hold one TCP connection and issue
//! requests back-to-back (closed loop), sampling queries from a fixed
//! population under a Zipf(s) distribution — rank 0 is hottest — so
//! repeated queries exercise the daemon's result cache the way a real
//! skewed workload would. Sampling is keyed by the *global request
//! index*, so the query multiset of a fixed-seed burst is identical
//! whatever the concurrency or daemon scheduling. An optional open-loop
//! pacing cap (`rate` requests/second across all workers) throttles
//! issue times to a deterministic schedule.
//!
//! The report carries every per-request latency (sorted, milliseconds)
//! plus hit/miss counts parsed from the response lines, and renders the
//! summary CSV the CI smoke job asserts on: p50/p99 latency,
//! throughput, cache hit rate.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use graphmaze_core::flatjson::parse_flat_json;
use graphmaze_core::RunRequest;

use crate::protocol::{encode_run_request, is_cache_hit};

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon address to connect to.
    pub addr: String,
    /// Total requests to issue across all workers.
    pub requests: usize,
    /// Concurrent closed-loop workers (one connection each).
    pub concurrency: usize,
    /// Zipf skew exponent `s` (weight of rank `r` ∝ 1/(r+1)^s). 0 is
    /// uniform; 1 is the classic web-workload skew.
    pub zipf_s: f64,
    /// Optional aggregate arrival-rate cap, requests/second (`None`
    /// issues as fast as the closed loop allows).
    pub rate: Option<f64>,
    /// RNG seed for query sampling.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:4891".to_string(),
            requests: 100,
            concurrency: 4,
            zipf_s: 1.0,
            rate: None,
            seed: 1,
        }
    }
}

/// SplitMix64 — tiny, seedable, and good enough for query sampling.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Precomputed Zipf(s) sampler over ranks `0..n`: inverse-CDF lookup on
/// the cumulative weights (O(log n) per sample).
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty population");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // normalise so binary search on a [0,1) draw lands in range
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl FnMut() -> f64) -> usize {
        let u = rng();
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// Daemon-side latency summary scraped from the enriched `stats` verb
/// after the burst, so client-vs-server skew is visible in one file.
/// All latencies are histogram-bucket upper bounds in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    pub queue_p50_ms: f64,
    pub queue_p99_ms: f64,
    pub lookup_p50_ms: f64,
    pub lookup_p99_ms: f64,
    pub execute_p50_ms: f64,
    pub execute_p99_ms: f64,
    pub respond_p50_ms: f64,
    pub respond_p99_ms: f64,
    pub total_p50_ms: f64,
    pub total_p99_ms: f64,
    /// The daemon's own cache hit rate over its whole lifetime (may
    /// exceed the client-observed rate if the cache started warm).
    pub hit_rate: f64,
}

/// What one loadgen run observed.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests answered with `done`/`failed` (a cell-level failure is
    /// still a served answer).
    pub completed: usize,
    /// Requests that got a protocol error or lost their connection.
    pub failures: usize,
    /// Responses marked `"cache":"hit"`.
    pub hits: usize,
    /// Responses marked `"cache":"miss"`.
    pub misses: usize,
    /// Wall-clock of the whole run, seconds.
    pub wall_secs: f64,
    /// Per-request latencies, milliseconds, sorted ascending.
    pub latencies_ms: Vec<f64>,
    /// Daemon-reported latency summary (`None` if the post-burst
    /// `stats` scrape failed).
    pub server: Option<ServerStats>,
}

impl LoadgenReport {
    /// Nearest-rank percentile latency, `p` in `[0, 100]`; 0 when no
    /// request completed.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.latencies_ms.len() as f64).ceil() as usize;
        self.latencies_ms[rank.clamp(1, self.latencies_ms.len()) - 1]
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.completed as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Fraction of served answers that came from the result cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Renders the summary CSV (header + one data row) the CI smoke job
    /// parses. Client-side columns come first; the `srv_*` columns are
    /// the daemon's own numbers for the same burst (`nan` if the
    /// post-burst `stats` scrape failed), so client-vs-server latency
    /// skew is visible in one file.
    pub fn to_csv(&self, cfg: &LoadgenConfig) -> String {
        let s = self.server.unwrap_or(ServerStats {
            queue_p50_ms: f64::NAN,
            queue_p99_ms: f64::NAN,
            lookup_p50_ms: f64::NAN,
            lookup_p99_ms: f64::NAN,
            execute_p50_ms: f64::NAN,
            execute_p99_ms: f64::NAN,
            respond_p50_ms: f64::NAN,
            respond_p99_ms: f64::NAN,
            total_p50_ms: f64::NAN,
            total_p99_ms: f64::NAN,
            hit_rate: f64::NAN,
        });
        format!(
            "requests,concurrency,zipf_s,rate_rps,wall_secs,throughput_rps,\
             p50_ms,p99_ms,cache_hits,cache_misses,hit_rate,failures,\
             srv_queue_p50_ms,srv_queue_p99_ms,srv_lookup_p50_ms,srv_lookup_p99_ms,\
             srv_execute_p50_ms,srv_execute_p99_ms,srv_respond_p50_ms,srv_respond_p99_ms,\
             srv_total_p50_ms,srv_total_p99_ms,srv_hit_rate\n\
             {},{},{},{},{:.6},{:.3},{:.3},{:.3},{},{},{:.4},{},\
             {:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4}\n",
            self.completed + self.failures,
            cfg.concurrency,
            cfg.zipf_s,
            cfg.rate
                .map_or_else(|| "unlimited".into(), |r| r.to_string()),
            self.wall_secs,
            self.throughput_rps(),
            self.percentile_ms(50.0),
            self.percentile_ms(99.0),
            self.hits,
            self.misses,
            self.hit_rate(),
            self.failures,
            s.queue_p50_ms,
            s.queue_p99_ms,
            s.lookup_p50_ms,
            s.lookup_p99_ms,
            s.execute_p50_ms,
            s.execute_p99_ms,
            s.respond_p50_ms,
            s.respond_p99_ms,
            s.total_p50_ms,
            s.total_p99_ms,
            s.hit_rate,
        )
    }
}

/// Scrapes the daemon's enriched `stats` into a [`ServerStats`].
/// Returns `None` on any connection or parse failure — the loadgen
/// report is still useful without the server side.
pub fn scrape_server_stats(addr: &str) -> Option<ServerStats> {
    let stream = TcpStream::connect(addr).ok()?;
    let read_half = stream.try_clone().ok()?;
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, r#"{{"op":"stats","id":"loadgen"}}"#).ok()?;
    writer.flush().ok()?;
    let mut reply = String::new();
    reader.read_line(&mut reply).ok()?;
    let m = parse_flat_json(reply.trim_end())?;
    let num = |key: &str| m.get(key).and_then(|v| v.parse::<f64>().ok());
    Some(ServerStats {
        queue_p50_ms: num("queue_wait_p50_ms")?,
        queue_p99_ms: num("queue_wait_p99_ms")?,
        lookup_p50_ms: num("cache_lookup_p50_ms")?,
        lookup_p99_ms: num("cache_lookup_p99_ms")?,
        execute_p50_ms: num("execute_p50_ms")?,
        execute_p99_ms: num("execute_p99_ms")?,
        respond_p50_ms: num("respond_p50_ms")?,
        respond_p99_ms: num("respond_p99_ms")?,
        total_p50_ms: num("total_p50_ms")?,
        total_p99_ms: num("total_p99_ms")?,
        hit_rate: num("cache_hit_rate")?,
    })
}

/// Runs the closed loop: samples `cfg.requests` queries from
/// `population` under Zipf(`cfg.zipf_s`) and issues them from
/// `cfg.concurrency` workers against the daemon at `cfg.addr`.
pub fn run(cfg: &LoadgenConfig, population: &[RunRequest]) -> std::io::Result<LoadgenReport> {
    assert!(
        !population.is_empty(),
        "loadgen needs a non-empty query population"
    );
    let zipf = Zipf::new(population.len(), cfg.zipf_s);
    // pre-encode every population member once; workers only index
    let encoded: Vec<String> = population
        .iter()
        .enumerate()
        .map(|(i, req)| encode_run_request(&format!("q{i}"), req))
        .collect();
    let issued = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let failures = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);
    let latencies_us: Vec<AtomicU64> = (0..cfg.requests).map(|_| AtomicU64::new(0)).collect();
    let start = Instant::now();
    thread::scope(|scope| {
        for _worker in 0..cfg.concurrency.max(1) {
            let (zipf, encoded) = (&zipf, &encoded);
            let (issued, completed, failures) = (&issued, &completed, &failures);
            let (hits, misses, latencies_us) = (&hits, &misses, &latencies_us);
            let addr = cfg.addr.clone();
            let rate = cfg.rate;
            scope.spawn(move || {
                let Ok(stream) = TcpStream::connect(&addr) else {
                    // count every request this worker would have issued
                    loop {
                        if issued.fetch_add(1, Ordering::Relaxed) >= cfg.requests {
                            return;
                        }
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                };
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let mut reader = BufReader::new(read_half);
                let mut writer = BufWriter::new(stream);
                loop {
                    let idx = issued.fetch_add(1, Ordering::Relaxed);
                    if idx >= cfg.requests {
                        return;
                    }
                    if let Some(rate) = rate {
                        // deterministic open-loop schedule: request idx
                        // is due at start + idx/rate
                        let due = start + Duration::from_secs_f64(idx as f64 / rate);
                        let now = Instant::now();
                        if due > now {
                            thread::sleep(due - now);
                        }
                    }
                    // sample by global request index, not by a per-worker
                    // RNG stream: the query multiset is then a pure
                    // function of (seed, requests, population), identical
                    // whatever the worker scheduling or daemon --jobs —
                    // the invariant the telemetry determinism tests pin
                    let mut rng = SplitMix64(
                        cfg.seed
                            .wrapping_add((idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    );
                    let mut draw = || rng.next_f64();
                    let line = &encoded[zipf.sample(&mut draw)];
                    let sent = Instant::now();
                    let ok = writeln!(writer, "{line}")
                        .and_then(|()| writer.flush())
                        .is_ok();
                    let mut reply = String::new();
                    if !ok || !matches!(reader.read_line(&mut reply), Ok(n) if n > 0) {
                        failures.fetch_add(1, Ordering::Relaxed);
                        return; // connection is gone; stop this worker
                    }
                    let latency = sent.elapsed();
                    match parse_flat_json(reply.trim_end()) {
                        Some(m)
                            if matches!(
                                m.get("status").map(String::as_str),
                                Some("done") | Some("failed")
                            ) =>
                        {
                            // store at least 1µs so a sub-microsecond
                            // cache hit is not confused with "no sample"
                            let us = latency.as_micros().clamp(1, u64::MAX as u128) as u64;
                            latencies_us[idx].store(us, Ordering::Relaxed);
                            completed.fetch_add(1, Ordering::Relaxed);
                            if is_cache_hit(&m) {
                                hits.fetch_add(1, Ordering::Relaxed);
                            } else {
                                misses.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let mut latencies_ms: Vec<f64> = latencies_us
        .iter()
        .map(|us| us.load(Ordering::Relaxed))
        .filter(|&us| us > 0)
        .map(|us| us as f64 / 1000.0)
        .collect();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let wall_secs = start.elapsed().as_secs_f64();
    // the burst is over; ask the daemon for its side of the story
    let server = scrape_server_stats(&cfg.addr);
    Ok(LoadgenReport {
        completed: completed.load(Ordering::Relaxed),
        failures: failures.load(Ordering::Relaxed),
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
        wall_secs,
        latencies_ms,
        server,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks_and_uniform_at_zero() {
        let mut rng = SplitMix64(7);
        let mut draw = || rng.next_f64();
        let zipf = Zipf::new(10, 1.0);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut draw)] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9], "{counts:?}");
        // s = 0 degenerates to uniform: no rank should dominate
        let uniform = Zipf::new(10, 0.0);
        let mut flat = [0usize; 10];
        for _ in 0..20_000 {
            flat[uniform.sample(&mut draw)] += 1;
        }
        let (min, max) = (flat.iter().min().unwrap(), flat.iter().max().unwrap());
        assert!(*max < min * 2, "{flat:?}");
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = SplitMix64(1);
        let mut draw = || rng.next_f64();
        for _ in 0..1000 {
            assert!(zipf.sample(&mut draw) < 3);
        }
        // even a draw of exactly ~1.0 - eps must not index out of bounds
        let mut top = || 0.999_999_999_999;
        assert!(zipf.sample(&mut top) < 3);
    }

    #[test]
    fn percentiles_and_csv_shape() {
        let report = LoadgenReport {
            completed: 4,
            failures: 1,
            hits: 3,
            misses: 1,
            wall_secs: 2.0,
            latencies_ms: vec![1.0, 2.0, 3.0, 100.0],
            server: None,
        };
        assert_eq!(report.percentile_ms(50.0), 2.0);
        assert_eq!(report.percentile_ms(99.0), 100.0);
        assert!(report.percentile_ms(50.0) <= report.percentile_ms(99.0));
        assert_eq!(report.throughput_rps(), 2.0);
        assert_eq!(report.hit_rate(), 0.75);
        let csv = report.to_csv(&LoadgenConfig::default());
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and row have the same arity"
        );
        assert!(lines[0].contains("p50_ms") && lines[0].contains("hit_rate"));
        // a missing server scrape shows up as NaN, not a ragged row
        assert!(lines[0].contains("srv_total_p99_ms"));
        assert!(lines[1].contains("NaN"));
        // with a scrape, the server columns carry its numbers
        let with_server = LoadgenReport {
            server: Some(ServerStats {
                total_p99_ms: 128.0,
                hit_rate: 0.5,
                ..ServerStats::default()
            }),
            ..report
        };
        let row = with_server.to_csv(&LoadgenConfig::default());
        assert!(row.lines().nth(1).unwrap().contains("128.000000"));
    }

    #[test]
    fn splitmix_is_deterministic_per_seed() {
        let seq = |seed| {
            let mut rng = SplitMix64(seed);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }
}
