//! `serve` — the graphmaze serving daemon and its load generator.
//!
//! ```sh
//! # start the daemon (prints the bound address, serves until shutdown)
//! cargo run --release -p graphmaze-serve --bin serve -- --listen 127.0.0.1:4891
//!
//! # drive it with a Zipf-skewed closed loop and write the latency CSV
//! cargo run --release -p graphmaze-serve --bin serve -- --loadgen \
//!     --connect 127.0.0.1:4891 --requests 200 --concurrency 4 \
//!     --zipf 1.0 --csv results/loadgen.csv --shutdown
//! ```
//!
//! Both modes share one option table; `--loadgen` selects the client.

use graphmaze_bench::cli::{Opt, OptionTable};
use graphmaze_serve::loadgen::{self, LoadgenConfig};
use graphmaze_serve::{grid, ServeConfig, Server};

const OPTIONS: OptionTable = OptionTable {
    opts: &[
        // daemon mode
        Opt::value(
            "--listen",
            "ADDR",
            "daemon: listen address (default 127.0.0.1:4891;\nport 0 picks an ephemeral port)",
        ),
        Opt::value(
            "--jobs",
            "N",
            "daemon: max queries executing concurrently (default 2)",
        ),
        Opt::value(
            "--cache-capacity",
            "N",
            "daemon: result-cache entries before LRU eviction\n(default 1024; 0 disables caching)",
        ),
        Opt::value(
            "--warm-journal",
            "FILE",
            "daemon: pre-populate the result cache from an offline\nsweep journal (results/journal.jsonl)",
        ),
        Opt::value(
            "--access-log",
            "FILE",
            "daemon: append one JSONL line per completed request\nto FILE (flushed on drain)",
        ),
        Opt::value(
            "--trace",
            "FILE",
            "daemon: write a Chrome-trace JSON of request spans\nto FILE at shutdown",
        ),
        // loadgen mode
        Opt::flag(
            "--loadgen",
            "run the load generator instead of the daemon",
        ),
        Opt::value(
            "--connect",
            "ADDR",
            "loadgen: daemon address (default 127.0.0.1:4891)",
        ),
        Opt::value(
            "--requests",
            "N",
            "loadgen: total requests to issue (default 100)",
        ),
        Opt::value(
            "--concurrency",
            "N",
            "loadgen: closed-loop workers, one connection each\n(default 4)",
        ),
        Opt::value(
            "--zipf",
            "S",
            "loadgen: Zipf skew exponent over the query grid\n(default 1.0; 0 = uniform)",
        ),
        Opt::value(
            "--rate",
            "RPS",
            "loadgen: cap aggregate arrival rate, requests/second\n(default: unlimited)",
        ),
        Opt::value("--seed", "N", "loadgen: sampling seed (default 1)"),
        Opt::value(
            "--scale",
            "N",
            "loadgen: log2 vertex count of the query grid's graphs\n(default 8)",
        ),
        Opt::value(
            "--nodes",
            "N",
            "loadgen: simulated node count per query (default 4)",
        ),
        Opt::value(
            "--csv",
            "FILE",
            "loadgen: write the summary CSV (p50/p99 latency,\nthroughput, cache hit rate) to FILE",
        ),
        Opt::flag(
            "--shutdown",
            "loadgen: send a shutdown request when done, stopping\nthe daemon",
        ),
        Opt::flag("--help", "print this help and exit").with_alias("-h"),
    ],
};

fn usage() -> String {
    format!(
        "\
usage: serve [options]                 start the daemon
       serve --loadgen [options]      drive a daemon and report latency

options:
{}",
        OPTIONS.render_options()
    )
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{}", usage());
    std::process::exit(2)
}

fn or_die<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| die(&e))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = OPTIONS.parse(args).unwrap_or_else(|e| die(&e));
    if parsed.flag("--help") {
        print!("{}", usage());
        return;
    }
    if let Some(stray) = parsed.positional.first() {
        die(&format!("unexpected argument `{stray}`"));
    }
    if parsed.flag("--loadgen") {
        run_loadgen(&parsed);
    } else {
        run_daemon(&parsed);
    }
}

fn run_daemon(parsed: &graphmaze_bench::cli::ParsedArgs) {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:4891".to_string(),
        ..ServeConfig::default()
    };
    if let Some(addr) = parsed.raw("--listen") {
        cfg.addr = addr.to_string();
    }
    if let Some(n) = or_die(parsed.int::<usize>("--jobs")) {
        if n < 1 {
            die("--jobs needs a positive integer");
        }
        cfg.jobs = n;
    }
    if let Some(n) = or_die(parsed.int("--cache-capacity")) {
        cfg.cache_capacity = n;
    }
    cfg.warm_journal = parsed.raw("--warm-journal").map(Into::into);
    cfg.access_log = parsed.raw("--access-log").map(Into::into);
    let trace_path = parsed.raw("--trace").map(std::path::PathBuf::from);
    let server = Server::bind(&cfg).unwrap_or_else(|e| die(&format!("bind {}: {e}", cfg.addr)));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| die(&format!("local_addr: {e}")));
    let warmed = server.state().results.stats().len;
    println!(
        "graphmaze serve — listening on {addr}, {} job{}, cache capacity {}{}",
        cfg.jobs,
        if cfg.jobs == 1 { "" } else { "s" },
        cfg.cache_capacity,
        if warmed > 0 {
            format!(" ({warmed} entries warmed from journal)")
        } else {
            String::new()
        },
    );
    if let Err(e) = server.run() {
        die(&format!("serve loop: {e}"));
    }
    if let Some(path) = &trace_path {
        let spans = server.state().spans();
        match graphmaze_bench::trace::write_serve_trace(path, &spans) {
            Ok(n) => println!(
                "graphmaze serve — {n} request span{} traced to {}",
                if n == 1 { "" } else { "s" },
                path.display()
            ),
            Err(e) => eprintln!("warning: failed to write trace {}: {e}", path.display()),
        }
    }
    let stats = server.state().results.stats();
    println!(
        "graphmaze serve — shut down after {} request{}: {} hit{}, {} miss{} ({:.0}% hit rate)",
        server.state().requests(),
        if server.state().requests() == 1 {
            ""
        } else {
            "s"
        },
        stats.hits,
        if stats.hits == 1 { "" } else { "s" },
        stats.misses,
        if stats.misses == 1 { "" } else { "es" },
        stats.hit_rate() * 100.0,
    );
}

fn run_loadgen(parsed: &graphmaze_bench::cli::ParsedArgs) {
    let mut cfg = LoadgenConfig::default();
    if let Some(addr) = parsed.raw("--connect") {
        cfg.addr = addr.to_string();
    }
    if let Some(n) = or_die(parsed.int("--requests")) {
        cfg.requests = n;
    }
    if let Some(n) = or_die(parsed.int::<usize>("--concurrency")) {
        if n < 1 {
            die("--concurrency needs a positive integer");
        }
        cfg.concurrency = n;
    }
    if let Some(s) = or_die(parsed.num("--zipf")) {
        if !s.is_finite() || s < 0.0 {
            die("--zipf needs a non-negative exponent");
        }
        cfg.zipf_s = s;
    }
    if let Some(r) = or_die(parsed.num("--rate")) {
        if !r.is_finite() || r <= 0.0 {
            die("--rate needs a positive requests/second");
        }
        cfg.rate = Some(r);
    }
    if let Some(n) = or_die(parsed.int("--seed")) {
        cfg.seed = n;
    }
    let scale: u32 = or_die(parsed.int("--scale")).unwrap_or(8);
    let nodes: usize = or_die(parsed.int("--nodes")).unwrap_or(4);
    if nodes < 1 {
        die("--nodes needs a positive integer");
    }
    let population = grid::default_grid(scale, 42, nodes);
    println!(
        "graphmaze loadgen — {} requests, {} workers, Zipf({}) over {} queries (scale 2^{scale}, {nodes} nodes) against {}",
        cfg.requests, cfg.concurrency, cfg.zipf_s, population.len(), cfg.addr,
    );
    let report = loadgen::run(&cfg, &population)
        .unwrap_or_else(|e| die(&format!("loadgen against {}: {e}", cfg.addr)));
    println!(
        "  {} completed, {} failed in {:.2}s — {:.1} req/s, p50 {:.2} ms, p99 {:.2} ms, hit rate {:.0}%",
        report.completed,
        report.failures,
        report.wall_secs,
        report.throughput_rps(),
        report.percentile_ms(50.0),
        report.percentile_ms(99.0),
        report.hit_rate() * 100.0,
    );
    if let Some(path) = parsed.raw("--csv") {
        let path = std::path::Path::new(path);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, report.to_csv(&cfg)) {
            Ok(()) => println!("  summary CSV written to {}", path.display()),
            Err(e) => die(&format!("write {}: {e}", path.display())),
        }
    }
    if parsed.flag("--shutdown") {
        match send_shutdown(&cfg.addr) {
            Ok(()) => println!("  daemon at {} told to shut down", cfg.addr),
            Err(e) => eprintln!("warning: shutdown of {} failed: {e}", cfg.addr),
        }
    }
    if report.completed == 0 {
        std::process::exit(1);
    }
}

fn send_shutdown(addr: &str) -> std::io::Result<()> {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.write_all(b"{\"op\":\"shutdown\"}\n")?;
    stream.flush()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    Ok(())
}
