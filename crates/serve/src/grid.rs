//! The default query population the load generator samples from: the
//! paper's experiment grid (4 algorithms × the 6 multi-node frameworks)
//! plus the `msbfs` extension × its 5 ported frameworks, at a
//! configurable scale, each cell expressed as the same [`RunRequest`]
//! the offline harness would build.

use graphmaze_core::{Algorithm, Framework, RunRequest, SweepCell, WorkloadSpec};

/// The six frameworks with multi-node implementations, in paper order
/// with the GraphMat auto-lowering engine appended (Galois is
/// single-node only; the Table 7 `socialite-unopt` variant is excluded
/// like everywhere outside Table 7).
pub const SERVING_FRAMEWORKS: [Framework; 6] = [
    Framework::Native,
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::SociaLite,
    Framework::Giraph,
    Framework::GraphMat,
];

/// The workload each algorithm runs on at `scale`, mirroring the
/// crossbar experiments: Graph500 RMAT for PageRank/BFS, the
/// triangle-tuned RMAT for TC, synthetic ratings for CF.
pub fn spec_for(algorithm: Algorithm, scale: u32, seed: u64) -> WorkloadSpec {
    match algorithm {
        Algorithm::PageRank | Algorithm::Bfs => WorkloadSpec::Rmat {
            scale,
            edge_factor: 16,
            seed,
        },
        Algorithm::TriangleCount => WorkloadSpec::RmatTriangle {
            scale,
            edge_factor: 8,
            seed,
        },
        Algorithm::CollaborativeFiltering => WorkloadSpec::RmatRatings {
            scale,
            num_items: 64,
            seed,
        },
        Algorithm::MsBfs => WorkloadSpec::Rmat {
            scale,
            edge_factor: 16,
            seed,
        },
    }
}

/// The frameworks with a bit-parallel multi-source BFS port (SociaLite's
/// Datalog model has none — those cells are "n/a" in the extended
/// Table 5, so the grid omits them rather than serving guaranteed
/// failures).
pub const MSBFS_FRAMEWORKS: [Framework; 5] = [
    Framework::Native,
    Framework::CombBlas,
    Framework::GraphLab,
    Framework::Giraph,
    Framework::GraphMat,
];

/// Builds the 29-cell default grid at `scale` on `nodes` simulated
/// nodes, with the harness's standard parameters: the paper's 4
/// algorithms × the 6 serving frameworks, plus `msbfs` × its 5 ported
/// frameworks. Order is deterministic — algorithm-major, paper
/// framework order — so Zipf rank 0 is always `pagerank × native`.
pub fn default_grid(scale: u32, seed: u64, nodes: usize) -> Vec<RunRequest> {
    let params = graphmaze_bench::standard_params();
    let mut grid = Vec::with_capacity(
        Algorithm::ALL.len() * SERVING_FRAMEWORKS.len() + MSBFS_FRAMEWORKS.len(),
    );
    let cell = |algorithm: Algorithm, framework: Framework| {
        RunRequest::new(
            "serve",
            SweepCell {
                label: format!("s{scale}"),
                algorithm,
                framework,
                spec: spec_for(algorithm, scale, seed),
                nodes,
                factor: 1.0,
                params,
                faults: graphmaze_core::cluster::FaultPlan::none(),
            },
        )
    };
    for algorithm in Algorithm::ALL {
        for framework in SERVING_FRAMEWORKS {
            grid.push(cell(algorithm, framework));
        }
    }
    for framework in MSBFS_FRAMEWORKS {
        grid.push(cell(Algorithm::MsBfs, framework));
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_is_complete_and_identity_hashes_are_distinct() {
        let grid = default_grid(8, 42, 4);
        assert_eq!(grid.len(), 29);
        let keys: HashSet<u64> = grid.iter().map(RunRequest::key).collect();
        assert_eq!(keys.len(), 29, "every cell has a distinct identity hash");
        assert_eq!(grid[0].cell.algorithm, Algorithm::PageRank);
        assert_eq!(grid[0].cell.framework, Framework::Native);
        let msbfs: Vec<_> = grid
            .iter()
            .filter(|r| r.cell.algorithm == Algorithm::MsBfs)
            .collect();
        assert_eq!(msbfs.len(), MSBFS_FRAMEWORKS.len());
        assert!(msbfs
            .iter()
            .all(|r| r.cell.framework != Framework::SociaLite));
        for req in &grid {
            assert_eq!(req.cell.nodes, 4);
            assert_eq!(req.experiment, "serve");
        }
    }

    #[test]
    fn grid_is_deterministic_across_calls() {
        let a: Vec<u64> = default_grid(9, 7, 2).iter().map(RunRequest::key).collect();
        let b: Vec<u64> = default_grid(9, 7, 2).iter().map(RunRequest::key).collect();
        assert_eq!(a, b);
    }
}
