//! # graphmaze-serve
//!
//! The online serving layer (DESIGN.md "Serving layer"): a long-lived
//! daemon that loads workloads **once** into the shared
//! [`WorkloadCache`], accepts concurrent analytics queries — algorithm ×
//! framework × scale × faults — over a line-delimited-JSON TCP protocol
//! ([`protocol`]), executes them through the same [`RunRequest`] API the
//! offline `repro` harness uses, and answers repeats straight from a
//! bounded [`ResultCache`].
//!
//! Because both entry points share one code path
//! (`RunRequest::execute*` → `run_benchmark` with thread-local fault
//! plan and work scale), a query answered online is **bit-identical** —
//! same digest, same 64-bit identity hash — to the same cell measured
//! by `repro`; the round-trip test in `tests/serve_roundtrip.rs` pins
//! this.
//!
//! The closed-loop load generator lives in [`loadgen`]; [`grid`] builds
//! the default query population it samples from.

pub mod grid;
pub mod loadgen;
pub mod protocol;

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use graphmaze_core::flatjson::{parse_flat_json, FlatJsonBuilder};
use graphmaze_core::{ResultCache, RunRequest, WorkloadCache};

use protocol::{decode_run_request, encode_error, encode_run_response, PROTOCOL_VERSION};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Maximum queries *executing* concurrently. Connections beyond this
    /// queue on an internal semaphore — cache hits still have to take a
    /// permit, keeping admission order fair.
    pub jobs: usize,
    /// Result-cache capacity in entries (0 disables caching: every
    /// query recomputes).
    pub cache_capacity: usize,
    /// Optionally pre-populate the result cache from an offline sweep
    /// journal (`results/journal.jsonl`) so the daemon starts warm.
    pub warm_journal: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            cache_capacity: 1024,
            warm_journal: None,
        }
    }
}

/// A counting semaphore bounding concurrently-executing queries.
/// `std::sync` has no semaphore; a `Mutex<usize>` + `Condvar` pair is
/// the canonical construction.
struct Semaphore {
    free: Mutex<usize>,
    available: Condvar,
}

struct Permit<'a>(&'a Semaphore);

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            free: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut free = self.free.lock().unwrap();
        while *free == 0 {
            free = self.available.wait(free).unwrap();
        }
        *free -= 1;
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.0.free.lock().unwrap() += 1;
        self.0.available.notify_one();
    }
}

/// Shared daemon state: the two caches, the execution semaphore and the
/// request counters. Lives behind an `Arc` so connection threads and
/// embedding tests share one instance.
pub struct ServeState {
    /// Workloads, built once per daemon lifetime and shared by every
    /// query (the whole point of serving vs. one-shot CLI runs).
    pub workloads: WorkloadCache,
    /// Completed results keyed by [`RunRequest::key`].
    pub results: ResultCache,
    permits: Semaphore,
    jobs: usize,
    requests: AtomicU64,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    started: Instant,
}

impl ServeState {
    fn new(cfg: &ServeConfig) -> Self {
        let results = ResultCache::new(cfg.cache_capacity);
        if let Some(journal) = &cfg.warm_journal {
            results.warm_from_journal(journal);
        }
        ServeState {
            workloads: WorkloadCache::new(),
            results,
            permits: Semaphore::new(cfg.jobs.max(1)),
            jobs: cfg.jobs.max(1),
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
            started: Instant::now(),
        }
    }

    /// Total `run` requests accepted so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Whether a `shutdown` request has been processed.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Executes one [`RunRequest`] under the daemon's caches and
    /// concurrency limit — the programmatic equivalent of sending a
    /// `run` line over the wire.
    pub fn execute(&self, req: &RunRequest) -> graphmaze_core::RunResponse {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let _permit = self.permits.acquire();
        req.execute_cached(&self.workloads, &self.results)
    }

    /// Handles one request line, returning `(response_line, stop)`;
    /// `stop` is set by a `shutdown` request after its `bye` goes out.
    /// Exposed so tests can drive the protocol without a socket.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let Some(m) = parse_flat_json(line) else {
            return (
                encode_error(
                    "",
                    "malformed request (expected one flat JSON object per line)",
                ),
                false,
            );
        };
        let id = m.get("id").cloned().unwrap_or_default();
        match m.get("op").map(String::as_str) {
            Some("run") => match decode_run_request(&m) {
                Ok(req) => (encode_run_response(&id, &self.execute(&req)), false),
                Err(e) => (encode_error(&id, &e), false),
            },
            Some("stats") => (self.encode_stats(&id), false),
            Some("ping") => (
                FlatJsonBuilder::new()
                    .u64("proto", u64::from(PROTOCOL_VERSION))
                    .str("id", &id)
                    .str("status", "pong")
                    .finish(),
                false,
            ),
            Some("shutdown") => (
                FlatJsonBuilder::new()
                    .u64("proto", u64::from(PROTOCOL_VERSION))
                    .str("id", &id)
                    .str("status", "bye")
                    .finish(),
                true,
            ),
            Some(other) => (encode_error(&id, &format!("unknown op `{other}`")), false),
            None => (encode_error(&id, "missing required field `op`"), false),
        }
    }

    fn encode_stats(&self, id: &str) -> String {
        let cache = self.results.stats();
        FlatJsonBuilder::new()
            .u64("proto", u64::from(PROTOCOL_VERSION))
            .str("id", id)
            .str("status", "stats")
            .u64("requests", self.requests())
            .u64("jobs", self.jobs as u64)
            .u64("cache_hits", cache.hits)
            .u64("cache_misses", cache.misses)
            .u64("cache_admissions", cache.admissions)
            .u64("cache_rejections", cache.rejections)
            .u64("cache_evictions", cache.evictions)
            .u64("cache_len", cache.len)
            .u64("cache_capacity", self.results.capacity() as u64)
            .f64("cache_hit_rate", cache.hit_rate())
            .u64("workloads_built", self.workloads.misses())
            .u64("workloads_reused", self.workloads.hits())
            .f64("uptime_secs", self.started.elapsed().as_secs_f64())
            .finish()
    }

    /// Flags shutdown and pokes the accept loop awake with a throwaway
    /// connection so [`Server::run`] returns promptly.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = *self.addr.lock().unwrap() {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// The serving daemon: a bound listener plus its [`ServeState`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the listen socket and builds the daemon state (including
    /// journal warm-up). Does not accept yet — call [`Server::run`].
    pub fn bind(cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let state = Arc::new(ServeState::new(cfg));
        *state.addr.lock().unwrap() = Some(listener.local_addr()?);
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared daemon state, for embedding (tests, in-process use).
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Accepts connections until a `shutdown` request arrives, one
    /// thread per connection (execution parallelism is bounded by the
    /// permit semaphore, not the connection count). Joins every
    /// connection thread before returning so in-flight responses flush.
    pub fn run(&self) -> io::Result<()> {
        let mut handles = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutting_down() {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // transient accept errors (e.g. ECONNABORTED) are not fatal
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            handles.push(thread::spawn(move || handle_connection(stream, &state)));
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, state: &ServeState) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, stop) = state.handle_line(&line);
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if stop {
            state.begin_shutdown();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_state() -> ServeState {
        ServeState::new(&ServeConfig {
            cache_capacity: 8,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn ping_stats_and_errors_over_handle_line() {
        let state = quiet_state();
        let (pong, stop) = state.handle_line(r#"{"op":"ping","id":"a"}"#);
        assert!(pong.contains(r#""status":"pong""#) && pong.contains(r#""id":"a""#));
        assert!(!stop);
        let (stats, _) = state.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""status":"stats""#));
        assert!(stats.contains(r#""cache_capacity":8"#));
        let (err, _) = state.handle_line("not json");
        assert!(err.contains(r#""status":"error""#));
        let (err, _) = state.handle_line(r#"{"op":"teleport"}"#);
        assert!(err.contains("unknown op `teleport`"));
        let (bye, stop) = state.handle_line(r#"{"op":"shutdown"}"#);
        assert!(bye.contains(r#""status":"bye""#));
        assert!(stop);
    }

    #[test]
    fn run_line_executes_and_second_query_hits_cache() {
        let state = quiet_state();
        let line = r#"{"op":"run","id":"q","algorithm":"pagerank","spec":"rmat/s7/e4/x1"}"#;
        let (first, _) = state.handle_line(line);
        assert!(first.contains(r#""status":"done""#), "{first}");
        assert!(first.contains(r#""cache":"miss""#), "{first}");
        let (second, _) = state.handle_line(line);
        assert!(second.contains(r#""cache":"hit""#), "{second}");
        assert_eq!(state.requests(), 2);
        assert_eq!(state.results.stats().hits, 1);
        // identical identity hash and digest on both paths
        let key = |s: &str| {
            let m = parse_flat_json(s).unwrap();
            (m["key"].clone(), m["digest"].clone())
        };
        assert_eq!(key(&first), key(&second));
    }

    #[test]
    fn semaphore_bounds_and_releases() {
        let sem = Semaphore::new(2);
        let a = sem.acquire();
        let _b = sem.acquire();
        assert_eq!(*sem.free.lock().unwrap(), 0);
        drop(a);
        assert_eq!(*sem.free.lock().unwrap(), 1);
        let _c = sem.acquire();
        assert_eq!(*sem.free.lock().unwrap(), 0);
    }
}
