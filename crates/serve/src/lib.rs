//! # graphmaze-serve
//!
//! The online serving layer (DESIGN.md "Serving layer"): a long-lived
//! daemon that loads workloads **once** into the shared
//! [`WorkloadCache`], accepts concurrent analytics queries — algorithm ×
//! framework × scale × faults — over a line-delimited-JSON TCP protocol
//! ([`protocol`]), executes them through the same [`RunRequest`] API the
//! offline `repro` harness uses, and answers repeats straight from a
//! bounded [`ResultCache`].
//!
//! Because both entry points share one code path
//! (`RunRequest::execute*` → `run_benchmark` with thread-local fault
//! plan and work scale), a query answered online is **bit-identical** —
//! same digest, same 64-bit identity hash — to the same cell measured
//! by `repro`; the round-trip test in `tests/serve_roundtrip.rs` pins
//! this.
//!
//! ## Observability (DESIGN.md "Serving observability")
//!
//! Every `run` request is traced as a **span** of four consecutive
//! stages — `queue_wait` (enqueue → permit), `cache_lookup`, `execute`
//! (zero for cache hits), `respond` (result → flushed to the socket) —
//! whose integer-nanosecond durations telescope to the span total
//! *exactly*. Spans feed per-stage histograms in a process-wide
//! [`Registry`], an optional JSONL access log, and the Chrome-trace
//! exporter. Two protocol verbs expose the state live: `metrics`
//! (Prometheus text exposition over the same line protocol, terminated
//! by `# EOF`) and an enriched `stats` (per-stage percentiles, in-flight
//! and draining gauges, per-cell request counts).
//!
//! The closed-loop load generator lives in [`loadgen`]; [`grid`] builds
//! the default query population it samples from.

pub mod grid;
pub mod loadgen;
pub mod protocol;

use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use graphmaze_core::flatjson::{parse_flat_json, FlatJsonBuilder};
use graphmaze_core::metrics::{
    expose, Counter, Gauge, Histogram, RebalanceStats, Registry, SpanRecord, SPAN_STAGES,
};
use graphmaze_core::{Provenance, ResultCache, RunRequest, WorkloadCache};

use protocol::{decode_run_request, encode_error, encode_run_response, PROTOCOL_VERSION};

/// Spans retained in memory for trace export. Beyond this the daemon
/// keeps counting (histograms and the access log never drop) but stops
/// accumulating per-request records, so a long-lived daemon is bounded.
const SPAN_CAPACITY: usize = 65_536;

/// How often a connection thread wakes from a blocking read to check
/// whether the daemon is draining.
const DRAIN_POLL: Duration = Duration::from_millis(100);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Maximum queries *executing* concurrently. Connections beyond this
    /// queue on an internal semaphore — cache hits still have to take a
    /// permit, keeping admission order fair.
    pub jobs: usize,
    /// Result-cache capacity in entries (0 disables caching: every
    /// query recomputes).
    pub cache_capacity: usize,
    /// Optionally pre-populate the result cache from an offline sweep
    /// journal (`results/journal.jsonl`) so the daemon starts warm.
    pub warm_journal: Option<PathBuf>,
    /// Per-request JSONL access log (`--access-log PATH`; `None`
    /// disables). One line per completed `run` span, flushed on drain.
    pub access_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            cache_capacity: 1024,
            warm_journal: None,
            access_log: None,
        }
    }
}

/// A counting semaphore bounding concurrently-executing queries.
/// `std::sync` has no semaphore; a `Mutex<usize>` + `Condvar` pair is
/// the canonical construction.
struct Semaphore {
    free: Mutex<usize>,
    available: Condvar,
}

struct Permit<'a>(&'a Semaphore);

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            free: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut free = self.free.lock().unwrap();
        while *free == 0 {
            free = self.available.wait(free).unwrap();
        }
        *free -= 1;
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.0.free.lock().unwrap() += 1;
        self.0.available.notify_one();
    }
}

/// The fixed instrument handles of the serving path, registered once at
/// startup so the hot path records through pre-resolved atomics instead
/// of taking the registry lock per request.
struct ServeMetrics {
    requests: Counter,
    in_flight: Gauge,
    draining: Gauge,
    /// One histogram per [`SPAN_STAGES`] entry, same order.
    stages: [Histogram; 4],
    total: Histogram,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> Self {
        let stage = |name: &'static str| {
            registry.histogram(
                "graphmaze_serve_stage_seconds",
                "request span stage durations",
                &[("stage", name)],
            )
        };
        ServeMetrics {
            requests: registry.counter(
                "graphmaze_serve_requests_total",
                "run requests accepted",
                &[],
            ),
            in_flight: registry.gauge(
                "graphmaze_serve_in_flight",
                "run requests currently between enqueue and response",
                &[],
            ),
            draining: registry.gauge(
                "graphmaze_serve_draining",
                "1 while the daemon is refusing new connections and finishing in-flight work",
                &[],
            ),
            stages: [
                stage(SPAN_STAGES[0]),
                stage(SPAN_STAGES[1]),
                stage(SPAN_STAGES[2]),
                stage(SPAN_STAGES[3]),
            ],
            total: registry.histogram(
                "graphmaze_serve_request_seconds",
                "end-to-end request span durations",
                &[],
            ),
        }
    }
}

/// A span whose first three stages are measured but whose `respond`
/// stage is still open: the response line exists but has not been
/// written to the socket yet. [`ServeState::finish_span`] closes it
/// after the flush, so socket time lands in the `respond` histogram.
pub struct PendingSpan {
    id: String,
    label: String,
    outcome: &'static str,
    algorithm: &'static str,
    framework: &'static str,
    sim_seconds: Option<f64>,
    /// Elasticity stats of the run, when its fault plan had membership
    /// or hardware events (`None` for static runs and failures).
    rebalance: Option<RebalanceStats>,
    start_s: f64,
    queue_ns: u64,
    lookup_ns: u64,
    execute_ns: u64,
    /// When the execute stage closed; `respond` runs from here.
    executed_at: Instant,
}

/// Shared daemon state: the two caches, the execution semaphore, the
/// telemetry registry and the request counters. Lives behind an `Arc`
/// so connection threads and embedding tests share one instance.
pub struct ServeState {
    /// Workloads, built once per daemon lifetime and shared by every
    /// query (the whole point of serving vs. one-shot CLI runs).
    pub workloads: WorkloadCache,
    /// Completed results keyed by [`RunRequest::key`].
    pub results: ResultCache,
    permits: Semaphore,
    jobs: usize,
    requests: AtomicU64,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    started: Instant,
    telemetry: Arc<Registry>,
    metrics: ServeMetrics,
    spans: Mutex<Vec<SpanRecord>>,
    spans_dropped: AtomicU64,
    access_log: Mutex<Option<BufWriter<std::fs::File>>>,
}

impl ServeState {
    fn new(cfg: &ServeConfig) -> Self {
        let results = ResultCache::new(cfg.cache_capacity);
        if let Some(journal) = &cfg.warm_journal {
            results.warm_from_journal(journal);
        }
        let access_log = cfg.access_log.as_ref().and_then(|path| {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::File::create(path) {
                Ok(f) => Some(BufWriter::new(f)),
                Err(e) => {
                    eprintln!("warning: cannot open access log {}: {e}", path.display());
                    None
                }
            }
        });
        let telemetry = Arc::new(Registry::new());
        let metrics = ServeMetrics::new(&telemetry);
        ServeState {
            workloads: WorkloadCache::new(),
            results,
            permits: Semaphore::new(cfg.jobs.max(1)),
            jobs: cfg.jobs.max(1),
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
            started: Instant::now(),
            telemetry,
            metrics,
            spans: Mutex::new(Vec::new()),
            spans_dropped: AtomicU64::new(0),
            access_log: Mutex::new(access_log),
        }
    }

    /// Total `run` requests accepted so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Whether a `shutdown` request has been processed.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The daemon's telemetry registry, for embedding and scraping.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Snapshot of the retained request spans (bounded by an internal
    /// capacity; histograms and the access log are never bounded).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().clone()
    }

    /// Executes one [`RunRequest`] under the daemon's caches and
    /// concurrency limit — the programmatic equivalent of sending a
    /// `run` line over the wire.
    pub fn execute(&self, req: &RunRequest) -> graphmaze_core::RunResponse {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.inc();
        let _permit = self.permits.acquire();
        req.execute_cached(&self.workloads, &self.results)
    }

    /// Handles one request line, returning `(response_line, stop)`;
    /// `stop` is set by a `shutdown` request after its `bye` goes out.
    /// Exposed so tests can drive the protocol without a socket. The
    /// span closes before the line is returned, so its `respond` stage
    /// only covers response encoding — the socket loop uses
    /// [`ServeState::handle_line_spanned`] to charge the actual write.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let (reply, stop, pending) = self.handle_line_spanned(line);
        if let Some(span) = pending {
            self.finish_span(span);
        }
        (reply, stop)
    }

    /// [`ServeState::handle_line`] with the span left open: the caller
    /// must pass the returned [`PendingSpan`] to
    /// [`ServeState::finish_span`] *after* flushing the reply, so the
    /// `respond` stage includes the socket write.
    pub fn handle_line_spanned(&self, line: &str) -> (String, bool, Option<PendingSpan>) {
        let Some(m) = parse_flat_json(line) else {
            return (
                encode_error(
                    "",
                    "malformed request (expected one flat JSON object per line)",
                ),
                false,
                None,
            );
        };
        let id = m.get("id").cloned().unwrap_or_default();
        match m.get("op").map(String::as_str) {
            Some("run") => match decode_run_request(&m) {
                Ok(req) => {
                    let (resp, span) = self.execute_spanned(&id, &req);
                    (encode_run_response(&id, &resp), false, Some(span))
                }
                Err(e) => {
                    self.count_outcome("error");
                    (encode_error(&id, &e), false, None)
                }
            },
            Some("stats") => (self.encode_stats(&id), false, None),
            Some("metrics") => (self.render_metrics(), false, None),
            Some("ping") => (
                FlatJsonBuilder::new()
                    .u64("proto", u64::from(PROTOCOL_VERSION))
                    .str("id", &id)
                    .str("status", "pong")
                    .finish(),
                false,
                None,
            ),
            Some("shutdown") => (
                FlatJsonBuilder::new()
                    .u64("proto", u64::from(PROTOCOL_VERSION))
                    .str("id", &id)
                    .str("status", "bye")
                    .finish(),
                true,
                None,
            ),
            Some(other) => (
                encode_error(&id, &format!("unknown op `{other}`")),
                false,
                None,
            ),
            None => (
                encode_error(&id, "missing required field `op`"),
                false,
                None,
            ),
        }
    }

    /// Runs one request with its span's first three stages measured.
    ///
    /// Stage accounting is exact by construction: `queue_wait` is the
    /// permit wait, and the permit→result interval is split so the
    /// stages telescope — on a hit the whole interval *is* the cache
    /// lookup (`execute == 0` by definition); on a miss the lookup
    /// duration comes from the core measurement and `execute` absorbs
    /// the remainder (engine time plus admission).
    fn execute_spanned(
        &self,
        id: &str,
        req: &RunRequest,
    ) -> (graphmaze_core::RunResponse, PendingSpan) {
        let t0 = Instant::now();
        let start_s = self.started.elapsed().as_secs_f64();
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.inc();
        self.metrics.in_flight.inc();
        let algorithm = req.cell.algorithm.name();
        let framework = req.cell.framework.name();
        self.telemetry
            .counter(
                "graphmaze_serve_cell_requests_total",
                "run requests by cell coordinates",
                &[("algorithm", algorithm), ("framework", framework)],
            )
            .inc();
        let permit = self.permits.acquire();
        let t1 = Instant::now();
        let resp = req.execute_cached(&self.workloads, &self.results);
        drop(permit);
        let executed_at = Instant::now();
        let permit_to_result = executed_at.duration_since(t1).as_nanos() as u64;
        let (lookup_ns, execute_ns) = if resp.provenance == Provenance::Cached {
            (permit_to_result, 0)
        } else {
            let lookup = (resp.cache_lookup.as_nanos() as u64).min(permit_to_result);
            (lookup, permit_to_result - lookup)
        };
        let outcome = match (&resp.provenance, &resp.outcome) {
            (Provenance::Cached, _) => "hit",
            (Provenance::Computed, Ok(_)) => "miss",
            (Provenance::Computed, Err(e)) if e.kind() == "timeout" => "timeout",
            (Provenance::Computed, Err(_)) => "failed",
        };
        let sim_seconds = resp.outcome.as_ref().ok().map(|o| o.report.sim_seconds);
        let rebalance = resp
            .outcome
            .as_ref()
            .ok()
            .map(|o| o.report.rebalance)
            .filter(|reb| !reb.is_zero());
        let span = PendingSpan {
            id: id.to_string(),
            label: format!("{algorithm}/{framework}"),
            outcome,
            algorithm,
            framework,
            sim_seconds,
            rebalance,
            start_s,
            queue_ns: t1.duration_since(t0).as_nanos() as u64,
            lookup_ns,
            execute_ns,
            executed_at,
        };
        (resp, span)
    }

    /// Closes a span: measures the `respond` stage, records every stage
    /// histogram, the outcome counter and the jobs-invariant simulated
    /// seconds, appends the access-log line, and retains the record for
    /// trace export.
    pub fn finish_span(&self, span: PendingSpan) {
        let respond_ns = span.executed_at.elapsed().as_nanos() as u64;
        let record = SpanRecord {
            id: span.id,
            label: span.label,
            outcome: span.outcome.to_string(),
            start_s: span.start_s,
            queue_ns: span.queue_ns,
            lookup_ns: span.lookup_ns,
            execute_ns: span.execute_ns,
            respond_ns,
            total_ns: span.queue_ns + span.lookup_ns + span.execute_ns + respond_ns,
        };
        for (hist, ns) in self.metrics.stages.iter().zip(record.stages_ns()) {
            hist.observe_duration(Duration::from_nanos(ns));
        }
        self.metrics
            .total
            .observe_duration(Duration::from_nanos(record.total_ns));
        self.count_outcome(span.outcome);
        if let Some(sim) = span.sim_seconds {
            // simulated time is a pure function of the request (hits
            // return the bit-exact cached outcome), so this histogram is
            // identical across daemon --jobs settings — the determinism
            // anchor the CI smoke compares
            self.telemetry
                .histogram(
                    "graphmaze_serve_sim_seconds",
                    "simulated seconds per successful request (jobs-invariant)",
                    &[("algorithm", span.algorithm), ("framework", span.framework)],
                )
                .observe(sim);
        }
        if let Some(reb) = &span.rebalance {
            // elasticity, live: the latest elastic run's final cluster
            // width and the cumulative bytes its rebalances migrated
            self.telemetry
                .gauge(
                    "graphmaze_cluster_nodes",
                    "physical nodes active at the end of the latest elastic run",
                    &[],
                )
                .set(i64::from(reb.final_nodes));
            self.telemetry
                .counter(
                    "graphmaze_rebalance_bytes_total",
                    "partition state migrated by elastic rebalances, bytes",
                    &[],
                )
                .add(reb.migrated_bytes);
        }
        self.metrics.in_flight.dec();
        if let Some(log) = self.access_log.lock().unwrap().as_mut() {
            let _ = writeln!(log, "{}", access_log_line(&record));
        }
        let mut spans = self.spans.lock().unwrap();
        if spans.len() < SPAN_CAPACITY {
            spans.push(record);
        } else {
            self.spans_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count_outcome(&self, outcome: &str) {
        self.telemetry
            .counter(
                "graphmaze_serve_outcomes_total",
                "completed requests by outcome",
                &[("outcome", outcome)],
            )
            .inc();
    }

    /// Renders the live Prometheus exposition, mirroring the cache and
    /// workload counters in first (collect-on-scrape). The payload is
    /// multi-line; the final line is `# EOF` so line-oriented clients
    /// know where it ends.
    pub fn render_metrics(&self) -> String {
        self.results.export_into(&self.telemetry);
        self.telemetry
            .counter(
                "graphmaze_workloads_built_total",
                "workloads constructed by the shared cache",
                &[],
            )
            .store(self.workloads.misses());
        self.telemetry
            .counter(
                "graphmaze_workloads_reused_total",
                "workload cache hits",
                &[],
            )
            .store(self.workloads.hits());
        self.telemetry
            .counter(
                "graphmaze_serve_spans_dropped_total",
                "span records dropped after the retention cap",
                &[],
            )
            .store(self.spans_dropped.load(Ordering::Relaxed));
        let text = expose::render(&self.telemetry);
        text.trim_end().to_string()
    }

    fn encode_stats(&self, id: &str) -> String {
        let cache = self.results.stats();
        let mut b = FlatJsonBuilder::new();
        b.u64("proto", u64::from(PROTOCOL_VERSION))
            .str("id", id)
            .str("status", "stats")
            .u64("requests", self.requests())
            .u64("jobs", self.jobs as u64)
            .u64("in_flight", self.metrics.in_flight.get().max(0) as u64)
            .u64("draining", self.metrics.draining.get().max(0) as u64)
            .u64("cache_hits", cache.hits)
            .u64("cache_misses", cache.misses)
            .u64("cache_admissions", cache.admissions)
            .u64("cache_rejections", cache.rejections)
            .u64("cache_evictions", cache.evictions)
            .u64("cache_len", cache.len)
            .u64("cache_capacity", self.results.capacity() as u64)
            .f64("cache_hit_rate", cache.hit_rate())
            .u64("workloads_built", self.workloads.misses())
            .u64("workloads_reused", self.workloads.hits())
            .f64("uptime_secs", self.started.elapsed().as_secs_f64());
        // per-stage and end-to-end latency percentiles (histogram
        // bucket upper bounds — within one power-of-two of exact)
        for (name, hist) in SPAN_STAGES
            .iter()
            .zip(&self.metrics.stages)
            .chain(std::iter::once((&"total", &self.metrics.total)))
        {
            for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                b.f64(&format!("{name}_{tag}_ms"), hist.quantile(q) * 1e3);
            }
        }
        b.f64("permit_wait_total_s", self.metrics.stages[0].sum_seconds());
        // per-(algorithm, framework) request counts — and the elasticity
        // series, once an elastic run has been served — read back from
        // the registry's own exposition so stats and metrics cannot
        // diverge
        if let Ok(samples) = expose::parse(&expose::render(&self.telemetry)) {
            for s in &samples {
                match s.name.as_str() {
                    "graphmaze_serve_cell_requests_total" => {
                        if let (Some(alg), Some(fw)) = (s.label("algorithm"), s.label("framework"))
                        {
                            b.u64(&format!("count_{alg}_{fw}"), s.value as u64);
                        }
                    }
                    "graphmaze_cluster_nodes" => {
                        b.u64("cluster_nodes", s.value as u64);
                    }
                    "graphmaze_rebalance_bytes_total" => {
                        b.u64("rebalance_bytes", s.value as u64);
                    }
                    _ => {}
                }
            }
        }
        b.finish()
    }

    /// Flags shutdown (and the `draining` gauge) and pokes the accept
    /// loop awake with a throwaway connection so [`Server::run`] returns
    /// promptly. Connection threads notice the flag within one
    /// [`DRAIN_POLL`] and close once their buffered requests are served.
    fn begin_shutdown(&self) {
        self.metrics.draining.set(1);
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = *self.addr.lock().unwrap() {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Flushes the access log (drain step; also safe to call anytime).
    pub fn flush_access_log(&self) {
        if let Some(log) = self.access_log.lock().unwrap().as_mut() {
            let _ = log.flush();
        }
    }
}

/// One access-log JSONL line for a completed span.
fn access_log_line(r: &SpanRecord) -> String {
    FlatJsonBuilder::new()
        .f64("ts_s", r.start_s)
        .str("id", &r.id)
        .str("cell", &r.label)
        .str("outcome", &r.outcome)
        .u64("queue_ns", r.queue_ns)
        .u64("cache_lookup_ns", r.lookup_ns)
        .u64("execute_ns", r.execute_ns)
        .u64("respond_ns", r.respond_ns)
        .u64("total_ns", r.total_ns)
        .finish()
}

/// The serving daemon: a bound listener plus its [`ServeState`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the listen socket and builds the daemon state (including
    /// journal warm-up). Does not accept yet — call [`Server::run`].
    pub fn bind(cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let state = Arc::new(ServeState::new(cfg));
        *state.addr.lock().unwrap() = Some(listener.local_addr()?);
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared daemon state, for embedding (tests, in-process use).
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Accepts connections until a `shutdown` request arrives, one
    /// thread per connection (execution parallelism is bounded by the
    /// permit semaphore, not the connection count). Shutdown is a
    /// graceful drain: the accept loop stops, every connection thread
    /// finishes the requests it has already read and then closes, and
    /// the access log is flushed before this returns.
    pub fn run(&self) -> io::Result<()> {
        let mut handles = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutting_down() {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // transient accept errors (e.g. ECONNABORTED) are not fatal
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            handles.push(thread::spawn(move || handle_connection(stream, &state)));
        }
        for h in handles {
            let _ = h.join();
        }
        self.state.flush_access_log();
        Ok(())
    }
}

/// Serves one connection. Reads are chunked with a short timeout
/// instead of blocking forever so an idle keep-alive connection cannot
/// stall a drain: once the daemon is draining, a connection with no
/// buffered input closes, while buffered requests are still answered.
fn handle_connection(stream: TcpStream, state: &ServeState) {
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&raw[..raw.len() - 1]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (reply, stop, pending) = state.handle_line_spanned(line);
            let sent = writeln!(writer, "{reply}").and_then(|()| writer.flush());
            // the span closes after the flush so the respond stage
            // charges the real socket write
            if let Some(span) = pending {
                state.finish_span(span);
            }
            if sent.is_err() {
                return;
            }
            if stop {
                state.begin_shutdown();
                return;
            }
        }
        match read_half.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.shutting_down() {
                    return; // draining and nothing buffered: close
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_state() -> ServeState {
        ServeState::new(&ServeConfig {
            cache_capacity: 8,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn ping_stats_and_errors_over_handle_line() {
        let state = quiet_state();
        let (pong, stop) = state.handle_line(r#"{"op":"ping","id":"a"}"#);
        assert!(pong.contains(r#""status":"pong""#) && pong.contains(r#""id":"a""#));
        assert!(!stop);
        let (stats, _) = state.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""status":"stats""#));
        assert!(stats.contains(r#""cache_capacity":8"#));
        assert!(stats.contains(r#""in_flight":0"#));
        assert!(stats.contains(r#""draining":0"#));
        assert!(stats.contains("queue_wait_p50_ms"));
        let (err, _) = state.handle_line("not json");
        assert!(err.contains(r#""status":"error""#));
        let (err, _) = state.handle_line(r#"{"op":"teleport"}"#);
        assert!(err.contains("unknown op `teleport`"));
        let (bye, stop) = state.handle_line(r#"{"op":"shutdown"}"#);
        assert!(bye.contains(r#""status":"bye""#));
        assert!(stop);
    }

    #[test]
    fn run_line_executes_and_second_query_hits_cache() {
        let state = quiet_state();
        let line = r#"{"op":"run","id":"q","algorithm":"pagerank","spec":"rmat/s7/e4/x1"}"#;
        let (first, _) = state.handle_line(line);
        assert!(first.contains(r#""status":"done""#), "{first}");
        assert!(first.contains(r#""cache":"miss""#), "{first}");
        let (second, _) = state.handle_line(line);
        assert!(second.contains(r#""cache":"hit""#), "{second}");
        assert_eq!(state.requests(), 2);
        assert_eq!(state.results.stats().hits, 1);
        // identical identity hash and digest on both paths
        let key = |s: &str| {
            let m = parse_flat_json(s).unwrap();
            (m["key"].clone(), m["digest"].clone())
        };
        assert_eq!(key(&first), key(&second));
    }

    #[test]
    fn elastic_runs_surface_cluster_metrics_live() {
        let state = quiet_state();
        // grow to 3 nodes, then node 1 departs: its partition must
        // migrate onto the joiner, so the byte counter moves too
        let line = r#"{"op":"run","id":"e1","algorithm":"pagerank","spec":"rmat/s7/e4/x1","nodes":2,"faults":"seed=1,join=2@1,leave=1@3"}"#;
        let (resp, _) = state.handle_line(line);
        assert!(resp.contains(r#""status":"done""#), "{resp}");
        let (text, _) = state.handle_line(r#"{"op":"metrics"}"#);
        let samples = expose::parse(&text).expect("exposition parses");
        assert_eq!(
            expose::sample_value(&samples, "graphmaze_cluster_nodes", &[]),
            Some(2.0),
            "grew to 3, shrank back to 2 physical nodes"
        );
        let migrated =
            expose::sample_value(&samples, "graphmaze_rebalance_bytes_total", &[]).unwrap();
        assert!(migrated > 0.0, "rebalance moved state: {migrated}");
        let (stats, _) = state.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""cluster_nodes":2"#), "{stats}");
        assert!(stats.contains(r#""rebalance_bytes":"#), "{stats}");
        // a static run leaves the elasticity series untouched
        let (stats_before, _) = {
            let fresh = quiet_state();
            fresh.handle_line(
                r#"{"op":"run","id":"s1","algorithm":"pagerank","spec":"rmat/s7/e4/x1"}"#,
            );
            fresh.handle_line(r#"{"op":"stats"}"#)
        };
        assert!(!stats_before.contains("cluster_nodes"), "{stats_before}");
    }

    #[test]
    fn semaphore_bounds_and_releases() {
        let sem = Semaphore::new(2);
        let a = sem.acquire();
        let _b = sem.acquire();
        assert_eq!(*sem.free.lock().unwrap(), 0);
        drop(a);
        assert_eq!(*sem.free.lock().unwrap(), 1);
        let _c = sem.acquire();
        assert_eq!(*sem.free.lock().unwrap(), 0);
    }

    #[test]
    fn spans_reconcile_and_feed_the_registry() {
        let state = quiet_state();
        let line = r#"{"op":"run","id":"s1","algorithm":"bfs","spec":"rmat/s7/e4/x2"}"#;
        state.handle_line(line);
        state.handle_line(line);
        let spans = state.spans();
        assert_eq!(spans.len(), 2);
        for span in &spans {
            assert_eq!(span.stage_sum_ns(), span.total_ns, "exact telescoping");
        }
        assert_eq!(spans[0].outcome, "miss");
        assert_eq!(spans[1].outcome, "hit");
        assert_eq!(spans[1].execute_ns, 0, "nothing runs on a hit");
        // the metrics verb exposes matching counters, EOF-terminated
        let (text, stop) = state.handle_line(r#"{"op":"metrics"}"#);
        assert!(!stop);
        assert!(text.ends_with(expose::EXPOSITION_EOF));
        let samples = expose::parse(&text).expect("exposition parses");
        let value =
            |name: &str, labels: &[(&str, &str)]| expose::sample_value(&samples, name, labels);
        assert_eq!(value("graphmaze_serve_requests_total", &[]), Some(2.0));
        assert_eq!(
            value(
                "graphmaze_serve_cell_requests_total",
                &[("algorithm", "bfs"), ("framework", "native")]
            ),
            Some(2.0)
        );
        assert_eq!(
            value("graphmaze_serve_outcomes_total", &[("outcome", "hit")]),
            Some(1.0)
        );
        assert_eq!(
            value("graphmaze_serve_outcomes_total", &[("outcome", "miss")]),
            Some(1.0)
        );
        assert_eq!(value("graphmaze_serve_in_flight", &[]), Some(0.0));
        assert_eq!(
            value(
                "graphmaze_serve_stage_seconds_count",
                &[("stage", "execute")]
            ),
            Some(2.0)
        );
        assert_eq!(
            value("graphmaze_serve_request_seconds_count", &[]),
            Some(2.0)
        );
        assert_eq!(
            value(
                "graphmaze_serve_sim_seconds_count",
                &[("algorithm", "bfs"), ("framework", "native")]
            ),
            Some(2.0),
            "hits observe the same simulated time as the miss"
        );
        assert_eq!(value("graphmaze_cache_hits_total", &[]), Some(1.0));
        // stats mirrors the same per-cell count
        let (stats, _) = state.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""count_bfs_native":2"#), "{stats}");
    }
}
