//! Online telemetry over a real TCP socket: span accounting must
//! reconcile exactly (the stage sum telescopes to the measured total,
//! cache hits report a zero-length `execute` stage), the live `metrics`
//! exposition must parse and agree with the load generator's request
//! count, the simulated-seconds histogram must be bit-identical across
//! daemon `--jobs` settings, and a drain must flush the JSONL access
//! log before the serve loop returns.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

use graphmaze_core::flatjson::parse_flat_json;
use graphmaze_core::metrics::{parse_exposition, EXPOSITION_EOF};
use graphmaze_core::prelude::*;
use graphmaze_serve::loadgen::{self, LoadgenConfig};
use graphmaze_serve::protocol::encode_run_request;
use graphmaze_serve::{grid, ServeConfig, ServeState, Server};

/// Binds a daemon on an ephemeral port and runs it on a background
/// thread; returns its address, its shared state (for post-drain
/// inspection), and the join handle.
fn spawn_daemon(cfg: ServeConfig) -> (String, Arc<ServeState>, thread::JoinHandle<()>) {
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let state = server.state();
    let handle = thread::spawn(move || server.run().expect("serve loop"));
    (addr, state, handle)
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    reply.trim_end().to_string()
}

/// Issues a `metrics` request and reads the multi-line exposition until
/// the `# EOF` terminator — the protocol's one exception to one-line
/// responses.
fn scrape_metrics(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) -> String {
    writeln!(stream, r#"{{"op":"metrics"}}"#).expect("send");
    stream.flush().expect("flush");
    let mut text = String::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("exposition line") > 0,
            "connection closed before {EXPOSITION_EOF}"
        );
        let done = line.trim_end() == EXPOSITION_EOF;
        text.push_str(&line);
        if done {
            return text;
        }
    }
}

/// A sample's value by metric name + exact label subset match.
fn sample_value(text: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    parse_exposition(text)
        .expect("exposition parses")
        .into_iter()
        .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
        .map(|s| s.value)
}

fn bfs_request(seed: u64) -> RunRequest {
    RunRequest::new(
        "serve",
        SweepCell {
            label: "telemetry".to_string(),
            algorithm: Algorithm::Bfs,
            framework: Framework::Native,
            spec: WorkloadSpec::Rmat {
                scale: 6,
                edge_factor: 4,
                seed,
            },
            nodes: 2,
            factor: 1.0,
            params: graphmaze_bench::standard_params(),
            faults: FaultPlan::none(),
        },
    )
}

#[test]
fn spans_reconcile_exactly_over_tcp() {
    let (addr, state, daemon) = spawn_daemon(ServeConfig::default());
    let (mut stream, mut reader) = connect(&addr);

    let line = encode_run_request("q", &bfs_request(5));
    let first = parse_flat_json(&send_line(&mut stream, &mut reader, &line)).expect("json");
    let second = parse_flat_json(&send_line(&mut stream, &mut reader, &line)).expect("json");
    assert_eq!(first["status"], "done");
    assert_eq!(second["cache"], "hit");

    // live scrape: counters agree with what this connection sent
    let text = scrape_metrics(&mut stream, &mut reader);
    assert_eq!(
        sample_value(&text, "graphmaze_serve_requests_total", &[]),
        Some(2.0)
    );
    assert_eq!(
        sample_value(&text, "graphmaze_serve_in_flight", &[]),
        Some(0.0),
        "both requests answered before the scrape"
    );
    assert_eq!(
        sample_value(
            &text,
            "graphmaze_serve_outcomes_total",
            &[("outcome", "hit")]
        ),
        Some(1.0)
    );
    assert_eq!(
        sample_value(
            &text,
            "graphmaze_serve_outcomes_total",
            &[("outcome", "miss")]
        ),
        Some(1.0)
    );
    // stage histogram counts: every stage saw both spans
    for stage in graphmaze_core::metrics::SPAN_STAGES {
        assert_eq!(
            sample_value(
                &text,
                "graphmaze_serve_stage_seconds_count",
                &[("stage", stage)]
            ),
            Some(2.0),
            "stage {stage}"
        );
    }

    send_line(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    daemon.join().expect("daemon exits cleanly");

    // exact reconciliation: integer nanoseconds, telescoped sum
    let spans = state.spans();
    assert_eq!(spans.len(), 2, "stats/metrics ops do not open spans");
    for span in &spans {
        assert_eq!(
            span.stage_sum_ns(),
            span.total_ns,
            "stage sum must reconcile with the total exactly, not approximately"
        );
        assert!(span.total_ns > 0);
    }
    assert_eq!(spans[0].outcome, "miss");
    assert!(spans[0].execute_ns > 0, "a computed answer has engine time");
    assert_eq!(spans[1].outcome, "hit");
    assert_eq!(
        spans[1].execute_ns, 0,
        "cache hits report a zero-length execute stage by definition"
    );
}

#[test]
fn loadgen_burst_scrape_and_access_log_drain() {
    let log_path = std::env::temp_dir().join(format!("gm-access-{}.jsonl", std::process::id()));
    let (addr, state, daemon) = spawn_daemon(ServeConfig {
        jobs: 4,
        access_log: Some(log_path.clone()),
        ..ServeConfig::default()
    });
    let population = grid::default_grid(6, 1, 2);
    let cfg = LoadgenConfig {
        addr: addr.clone(),
        requests: 40,
        concurrency: 4,
        zipf_s: 1.0,
        rate: None,
        seed: 11,
    };
    let report = loadgen::run(&cfg, &population).expect("loadgen runs");
    assert_eq!(report.completed, 40, "failures: {}", report.failures);
    let server = report.server.expect("server-side stats scraped");
    assert!(server.total_p50_ms <= server.total_p99_ms);
    assert!(server.hit_rate >= 0.0 && server.hit_rate <= 1.0);

    // scrape while live: the request counter matches the loadgen count
    let (mut stream, mut reader) = connect(&addr);
    let text = scrape_metrics(&mut stream, &mut reader);
    assert_eq!(
        sample_value(&text, "graphmaze_serve_requests_total", &[]),
        Some(40.0),
        "total-request counter must equal the loadgen request count"
    );
    assert_eq!(
        sample_value(&text, "graphmaze_serve_in_flight", &[]),
        Some(0.0),
        "in-flight gauge returns to zero after the burst"
    );
    assert_eq!(
        sample_value(&text, "graphmaze_serve_draining", &[]),
        Some(0.0)
    );
    // cache mirror: hits + misses == requests
    let hits = sample_value(&text, "graphmaze_cache_hits_total", &[]).expect("hits");
    let misses = sample_value(&text, "graphmaze_cache_misses_total", &[]).expect("misses");
    assert_eq!(hits + misses, 40.0);
    assert_eq!(hits as u64, report.hits as u64, "daemon and client agree");

    send_line(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    daemon.join().expect("daemon exits cleanly");
    assert!(state.shutting_down());

    // drain flushed the access log: one well-formed JSONL line per
    // request, stage fields telescoping to the total
    let log = std::fs::read_to_string(&log_path).expect("access log exists");
    std::fs::remove_file(&log_path).ok();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 40, "one access-log line per run request");
    for line in lines {
        let m = parse_flat_json(line).expect("access-log line parses");
        let ns = |k: &str| m[k].parse::<u64>().expect(k);
        assert_eq!(
            ns("queue_ns") + ns("cache_lookup_ns") + ns("execute_ns") + ns("respond_ns"),
            ns("total_ns"),
            "logged stages reconcile: {line}"
        );
        assert!(matches!(
            m["outcome"].as_str(),
            "hit" | "miss" | "failed" | "timeout"
        ));
    }
}

#[test]
fn sim_seconds_exposition_is_jobs_invariant() {
    // the same fixed-seed burst against a serial and a 4-way daemon
    // must produce bit-identical simulated-seconds histogram sections:
    // simulated time is a pure function of the request, and cache hits
    // return the bit-exact computed outcome
    let population = grid::default_grid(6, 1, 2);
    let mut sections = Vec::new();
    for jobs in [1usize, 4] {
        let (addr, _state, daemon) = spawn_daemon(ServeConfig {
            jobs,
            ..ServeConfig::default()
        });
        let cfg = LoadgenConfig {
            addr: addr.clone(),
            requests: 30,
            concurrency: 3,
            zipf_s: 1.0,
            rate: None,
            seed: 7,
        };
        let report = loadgen::run(&cfg, &population).expect("loadgen runs");
        assert_eq!(report.completed, 30);
        let (mut stream, mut reader) = connect(&addr);
        let text = scrape_metrics(&mut stream, &mut reader);
        send_line(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
        daemon.join().expect("daemon exits cleanly");
        let section: String = text
            .lines()
            .filter(|l| l.contains("graphmaze_serve_sim_seconds"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(
            section.contains("graphmaze_serve_sim_seconds_bucket"),
            "successful requests must populate the histogram"
        );
        sections.push(section);
    }
    assert_eq!(
        sections[0], sections[1],
        "simulated-seconds exposition must be bit-identical across --jobs 1 and --jobs 4"
    );
}
