//! End-to-end serving tests over a real TCP socket: the daemon must be
//! a transparent wrapper around the offline [`RunRequest`] path — same
//! identity hash, same digest — and the load generator's closed loop
//! must observe rising cache hit rates on repeated queries.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;

use graphmaze_core::flatjson::parse_flat_json;
use graphmaze_core::prelude::*;
use graphmaze_serve::loadgen::{self, LoadgenConfig};
use graphmaze_serve::protocol::{encode_run_request, is_cache_hit};
use graphmaze_serve::{grid, ServeConfig, Server};

/// Binds a daemon on an ephemeral port and runs it on a background
/// thread; returns its address. The accept thread exits when a
/// `shutdown` request arrives.
fn spawn_daemon(cfg: ServeConfig) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle)
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    reply.trim_end().to_string()
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

#[test]
fn daemon_answers_match_offline_execution_bit_exactly() {
    let (addr, daemon) = spawn_daemon(ServeConfig::default());
    let (mut stream, mut reader) = connect(&addr);

    // the exact cell `repro`'s sweeps would build, executed offline
    let req = RunRequest::new(
        "serve",
        SweepCell {
            label: "parity".to_string(),
            algorithm: Algorithm::Bfs,
            framework: Framework::GraphLab,
            spec: WorkloadSpec::Rmat {
                scale: 7,
                edge_factor: 4,
                seed: 3,
            },
            nodes: 2,
            factor: 1.0,
            params: graphmaze_bench::standard_params(),
            faults: FaultPlan::none(),
        },
    );
    let offline = req.execute(&WorkloadCache::new());
    let offline_digest = offline.outcome.as_ref().expect("runs").digest;

    // same cell over the wire — first answer computes, second hits
    let line = encode_run_request("parity", &req);
    let first = parse_flat_json(&send_line(&mut stream, &mut reader, &line)).expect("json");
    let second = parse_flat_json(&send_line(&mut stream, &mut reader, &line)).expect("json");
    assert_eq!(first["status"], "done");
    assert_eq!(
        first["key"],
        format!("{:016x}", offline.key),
        "identity hash parity"
    );
    assert_eq!(
        first["digest"].parse::<f64>().expect("digest"),
        offline_digest,
        "digest parity between daemon and offline path"
    );
    assert!(!is_cache_hit(&first));
    assert!(is_cache_hit(&second));
    assert_eq!(
        first["digest"], second["digest"],
        "cache returns the same answer"
    );

    // stats reflect the two runs and the single admission
    let stats =
        parse_flat_json(&send_line(&mut stream, &mut reader, r#"{"op":"stats"}"#)).expect("json");
    assert_eq!(stats["requests"], "2");
    assert_eq!(stats["cache_hits"], "1");
    assert_eq!(stats["cache_misses"], "1");
    assert_eq!(stats["cache_admissions"], "1");

    let bye = send_line(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    assert!(bye.contains(r#""status":"bye""#));
    daemon.join().expect("daemon exits cleanly");
}

#[test]
fn malformed_lines_get_errors_without_killing_the_connection() {
    let (addr, daemon) = spawn_daemon(ServeConfig::default());
    let (mut stream, mut reader) = connect(&addr);
    let err = send_line(&mut stream, &mut reader, "garbage");
    assert!(err.contains(r#""status":"error""#));
    let err = send_line(
        &mut stream,
        &mut reader,
        r#"{"op":"run","id":"x","algorithm":"pagerank","spec":"rmat/s2x/e4/x1"}"#,
    );
    assert!(err.contains("invalid integer `2x`"), "{err}");
    assert!(err.contains(r#""id":"x""#));
    // connection still serves good requests afterwards
    let pong = send_line(&mut stream, &mut reader, r#"{"op":"ping"}"#);
    assert!(pong.contains(r#""status":"pong""#));
    send_line(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    daemon.join().expect("daemon exits cleanly");
}

#[test]
fn loadgen_closed_loop_reports_rising_hit_rate() {
    let (addr, daemon) = spawn_daemon(ServeConfig {
        jobs: 4,
        ..ServeConfig::default()
    });
    // tiny population at tiny scale: 60 requests over 24 distinct
    // queries guarantees repeats, hence cache hits
    let population = grid::default_grid(6, 1, 2);
    let cfg = LoadgenConfig {
        addr: addr.clone(),
        requests: 60,
        concurrency: 3,
        zipf_s: 1.0,
        rate: None,
        seed: 9,
    };
    let report = loadgen::run(&cfg, &population).expect("loadgen runs");
    assert_eq!(report.completed, 60, "failures: {}", report.failures);
    assert_eq!(report.failures, 0);
    assert!(
        report.hits > 0 && report.hit_rate() > 0.5,
        "repeated Zipf queries must hit the cache: {} hits / {} misses",
        report.hits,
        report.misses
    );
    assert!(
        report.misses <= population.len(),
        "at most one miss per distinct query"
    );
    assert_eq!(report.latencies_ms.len(), 60);
    assert!(report.percentile_ms(50.0) <= report.percentile_ms(99.0));
    assert!(report.throughput_rps() > 0.0);
    // the CSV the CI smoke job parses is well-formed
    let csv = report.to_csv(&cfg);
    let lines: Vec<&str> = csv.trim_end().lines().collect();
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());

    // a second identical burst is all hits: the hit rate rises
    let second = loadgen::run(&cfg, &population).expect("second burst");
    assert!(
        second.hit_rate() > report.hit_rate(),
        "warm cache must raise the hit rate: {} -> {}",
        report.hit_rate(),
        second.hit_rate()
    );
    let (mut stream, mut reader) = connect(&addr);
    send_line(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    daemon.join().expect("daemon exits cleanly");
}

#[test]
fn cell_failures_are_answers_and_cached() {
    let (addr, daemon) = spawn_daemon(ServeConfig::default());
    let (mut stream, mut reader) = connect(&addr);
    // Galois is single-node only — a deterministic InvalidConfig failure
    let req = RunRequest::new(
        "serve",
        SweepCell {
            label: "invalid".to_string(),
            algorithm: Algorithm::PageRank,
            framework: Framework::Galois,
            spec: WorkloadSpec::Rmat {
                scale: 6,
                edge_factor: 4,
                seed: 1,
            },
            nodes: 4,
            factor: 1.0,
            params: graphmaze_bench::standard_params(),
            faults: FaultPlan::none(),
        },
    );
    let line = encode_run_request("f", &req);
    let first = parse_flat_json(&send_line(&mut stream, &mut reader, &line)).expect("json");
    assert_eq!(first["status"], "failed");
    assert!(!is_cache_hit(&first));
    let second = parse_flat_json(&send_line(&mut stream, &mut reader, &line)).expect("json");
    assert_eq!(second["status"], "failed");
    assert!(
        is_cache_hit(&second),
        "deterministic failures are cached answers"
    );
    assert_eq!(first["error_kind"], second["error_kind"]);
    send_line(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    daemon.join().expect("daemon exits cleanly");
}
