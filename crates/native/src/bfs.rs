//! Hand-optimized Breadth-First Search (paper §2 eq. (2), §3.2, §6.1).
//!
//! The native implementation "follows the approach explained in \[28\]"
//! (Satish et al., SC'12): level-synchronous traversal with a bit-vector
//! visited set, direction-optimizing top-down/bottom-up switching, and —
//! across nodes — compressed frontier exchange (delta coding for sparse
//! frontiers, bitmaps for dense ones, which [`encode_best`] picks
//! automatically).

use graphmaze_cluster::compress::encode_best;
use graphmaze_cluster::{ClusterSpec, Partition1D, Router, Sim, SimError};
use graphmaze_graph::bitvec::AtomicBitVec;
use graphmaze_graph::csr::UndirectedGraph;
use graphmaze_graph::par::par_tasks;
use graphmaze_graph::{BitVec, VertexId};
use graphmaze_metrics::{RunReport, Work};

use crate::common::{edge_stream_work, NativeOptions};

/// Distance value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Occupancy threshold above which the bottom-up direction is preferred.
const BOTTOM_UP_THRESHOLD: f64 = 0.05;

/// Single-node parallel BFS from `source`. Returns hop distances
/// (`UNREACHED` for unreachable vertices).
pub fn bfs(g: &UndirectedGraph, source: VertexId, threads: usize) -> Vec<u32> {
    bfs_with(g, source, threads, true)
}

/// BFS with the direction-optimizing switch controllable (for ablation).
pub fn bfs_with(
    g: &UndirectedGraph,
    source: VertexId,
    threads: usize,
    direction_optimizing: bool,
) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    if n == 0 {
        return dist;
    }
    let visited = AtomicBitVec::new(n);
    visited.set(source as usize);
    dist[source as usize] = 0;
    let mut frontier: Vec<VertexId> = vec![source];
    let mut level: u32 = 0;
    while !frontier.is_empty() {
        level += 1;
        let occupancy = frontier.len() as f64 / n as f64;
        let next: Vec<VertexId> = if direction_optimizing && occupancy > BOTTOM_UP_THRESHOLD {
            bottom_up_level(g, &frontier, &visited, threads)
        } else {
            top_down_level(g, &frontier, &visited, threads)
        };
        for &v in &next {
            dist[v as usize] = level;
        }
        frontier = next;
    }
    dist
}

/// Expands `frontier` over out-edges, claiming unvisited targets.
fn top_down_level(
    g: &UndirectedGraph,
    frontier: &[VertexId],
    visited: &AtomicBitVec,
    threads: usize,
) -> Vec<VertexId> {
    let parts = par_tasks(threads.max(1), |t| {
        let mut local = Vec::new();
        let chunk = frontier.len().div_ceil(threads.max(1)).max(1);
        let lo = (t * chunk).min(frontier.len());
        let hi = ((t + 1) * chunk).min(frontier.len());
        for &u in &frontier[lo..hi] {
            for &v in g.adj.neighbors(u) {
                if visited.test_and_set(v as usize) {
                    local.push(v);
                }
            }
        }
        local
    });
    let mut next: Vec<VertexId> = parts.into_iter().flatten().collect();
    next.sort_unstable();
    next
}

/// Scans unvisited vertices, joining the next frontier if any neighbor is
/// in the current frontier — the bottom-up direction of \[28\].
fn bottom_up_level(
    g: &UndirectedGraph,
    frontier: &[VertexId],
    visited: &AtomicBitVec,
    threads: usize,
) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut fmask = BitVec::new(n);
    for &v in frontier {
        fmask.set(v as usize);
    }
    let fmask = &fmask;
    let parts = par_tasks(threads.max(1), |t| {
        let mut local = Vec::new();
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let lo = (t * chunk).min(n);
        let hi = ((t + 1) * chunk).min(n);
        for v in lo..hi {
            if visited.get(v) {
                continue;
            }
            for &u in g.adj.neighbors(v as VertexId) {
                if fmask.get(u as usize) {
                    // only this worker scans v, so the claim always wins
                    visited.set(v);
                    local.push(v as VertexId);
                    break;
                }
            }
        }
        local
    });
    parts.into_iter().flatten().collect()
}

/// BFS that also records a parent per reached vertex — the output the
/// Graph500 benchmark (which BFS "is part of", §2) validates. Sequential
/// reference; parents are the first-discovering neighbor in scan order.
pub fn bfs_with_parents(g: &UndirectedGraph, source: VertexId) -> (Vec<u32>, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    let mut parent = vec![UNREACHED; n];
    if n == 0 {
        return (dist, parent);
    }
    dist[source as usize] = 0;
    parent[source as usize] = source;
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.adj.neighbors(u) {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = level;
                    parent[v as usize] = u;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    (dist, parent)
}

/// Graph500-style validation of a parent tree: the source is its own
/// parent; every reached vertex's parent is a real neighbor exactly one
/// level closer; parents are reached.
pub fn validate_parents(
    g: &UndirectedGraph,
    source: VertexId,
    dist: &[u32],
    parent: &[VertexId],
) -> bool {
    if parent[source as usize] != source || dist[source as usize] != 0 {
        return false;
    }
    for v in 0..g.num_vertices() as u32 {
        let p = parent[v as usize];
        if dist[v as usize] == UNREACHED {
            if p != UNREACHED {
                return false;
            }
            continue;
        }
        if v == source {
            continue;
        }
        if p == UNREACHED || dist[p as usize] == UNREACHED {
            return false;
        }
        if dist[p as usize] + 1 != dist[v as usize] {
            return false;
        }
        if !g.adj.neighbors(v).contains(&p) {
            return false;
        }
    }
    true
}

/// Validates a distance labelling against the graph (Graph500-style):
/// source has distance 0, every edge spans at most one level, every
/// reached vertex has a neighbor one level closer, unreached vertices
/// have no reached neighbors.
pub fn validate_distances(g: &UndirectedGraph, source: VertexId, dist: &[u32]) -> bool {
    if dist[source as usize] != 0 {
        return false;
    }
    for v in 0..g.num_vertices() as u32 {
        let dv = dist[v as usize];
        if dv == UNREACHED {
            if g.adj
                .neighbors(v)
                .iter()
                .any(|&u| dist[u as usize] != UNREACHED)
            {
                return false;
            }
            continue;
        }
        if dv > 0 {
            let mut ok = false;
            for &u in g.adj.neighbors(v) {
                let du = dist[u as usize];
                if du != UNREACHED && du + 1 < dv {
                    return false; // an edge shortcuts more than one level
                }
                if du != UNREACHED && du + 1 == dv {
                    ok = true;
                }
            }
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Distributed BFS on the simulated cluster: 1-D partition, per-level
/// frontier exchange. Returns distances identical to [`bfs`] plus the
/// run report.
pub fn bfs_cluster(
    g: &UndirectedGraph,
    source: VertexId,
    opts: NativeOptions,
    nodes: usize,
) -> Result<(Vec<u32>, RunReport), SimError> {
    let mut sim = Sim::new(ClusterSpec::paper(nodes), opts.profile());
    let mut router = Router::new(nodes, sim.profile());
    let n = g.num_vertices();
    let part = Partition1D::balanced_by_edges(&g.adj, nodes);

    for node in 0..nodes {
        let local_edges = part.edges_of(&g.adj, node);
        let local_vertices = part.len(node) as u64;
        sim.declare_partition(node, local_vertices, local_edges);
        // CSR slice + distance array + visited bit-vector (or u32 flags
        // when the bit-vector lever is off)
        let visited_bytes = if opts.bitvector {
            local_vertices / 8 + 8
        } else {
            local_vertices * 4
        };
        sim.alloc(
            node,
            local_edges * 4 + local_vertices * 4 + visited_bytes,
            "bfs:graph+state",
        )?;
    }

    let mut dist = vec![UNREACHED; n];
    let mut visited = BitVec::new(n);
    dist[source as usize] = 0;
    visited.set(source as usize);
    // per-node current frontier (owned vertices only)
    let mut frontiers: Vec<Vec<VertexId>> = vec![Vec::new(); nodes];
    frontiers[part.owner(source)].push(source);
    let mut level = 0u32;

    sim.phase("bfs:top-down");
    loop {
        let active: u64 = frontiers.iter().map(|f| f.len() as u64).sum();
        if active == 0 {
            break;
        }
        level += 1;
        // outbox[from][to] = discovered vertices owned by `to`
        let mut outbox: Vec<Vec<Vec<VertexId>>> = vec![vec![Vec::new(); nodes]; nodes];
        for node in 0..nodes {
            let mut scanned_edges = 0u64;
            for &u in &frontiers[node] {
                let neigh = g.adj.neighbors(u);
                scanned_edges += neigh.len() as u64;
                for &v in neigh {
                    outbox[node][part.owner(v)].push(v);
                }
            }
            // Work: stream frontier + its adjacency; one visited-structure
            // probe per scanned edge. Without bit-vectors the probe
            // footprint quadruples (u32 flags vs 1 bit), costing extra
            // random accesses — the paper's "slightly over 2X" lever.
            let probe_factor = if opts.bitvector { 1 } else { 2 };
            let mut w = edge_stream_work(scanned_edges, 1);
            w.accumulate(Work::random(scanned_edges * probe_factor));
            sim.charge(node, w);
        }
        // exchange: each node sends its remote discoveries
        let mut inbox: Vec<Vec<VertexId>> = vec![Vec::new(); nodes];
        for from in 0..nodes {
            for (to, ids) in outbox[from].iter_mut().enumerate() {
                ids.sort_unstable();
                ids.dedup();
                if to == from {
                    inbox[to].extend(ids.iter().copied());
                    continue;
                }
                if ids.is_empty() {
                    continue;
                }
                let raw = ids.len() as u64 * 4;
                let wire = if opts.compression {
                    encode_best(ids, n as u64).len() as u64
                } else {
                    raw
                };
                router.send(&mut sim, from, to, wire, raw);
                inbox[to].extend(ids.iter().copied());
            }
        }
        router.flush(&mut sim);
        // claim and build next frontiers
        for node in 0..nodes {
            let mut next = Vec::new();
            inbox[node].sort_unstable();
            inbox[node].dedup();
            // merging the inbox costs a probe per candidate
            sim.charge(node, Work::random(inbox[node].len() as u64));
            for &v in &inbox[node] {
                if visited.test_and_set(v as usize) {
                    dist[v as usize] = level;
                    next.push(v);
                }
            }
            frontiers[node] = next;
        }
        sim.end_step()?;
    }
    sim.end_iteration();
    Ok((dist, sim.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};

    fn sample() -> UndirectedGraph {
        // 0-1, 0-2, 1-3, 2-3, 3-4; 5 isolated
        UndirectedGraph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    }

    fn rmat_undirected(scale: u32, seed: u64) -> UndirectedGraph {
        let cfg = RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        };
        let mut el = rmat::generate(&cfg);
        el.remove_self_loops();
        el.symmetrize();
        UndirectedGraph::from_symmetric_edge_list(&el)
    }

    #[test]
    fn distances_on_small_graph() {
        let g = sample();
        let d = bfs(&g, 0, 2);
        assert_eq!(d, vec![0, 1, 1, 2, 3, UNREACHED]);
        assert!(validate_distances(&g, 0, &d));
    }

    #[test]
    fn bfs_from_other_source() {
        let g = sample();
        let d = bfs(&g, 4, 1);
        assert_eq!(d, vec![3, 2, 2, 1, 0, UNREACHED]);
    }

    #[test]
    fn direction_optimization_does_not_change_results() {
        let g = rmat_undirected(10, 5);
        let a = bfs_with(&g, 0, 4, true);
        let b = bfs_with(&g, 0, 4, false);
        assert_eq!(a, b);
        assert!(validate_distances(&g, 0, &a));
    }

    #[test]
    fn thread_counts_agree() {
        let g = rmat_undirected(9, 2);
        let a = bfs(&g, 1, 1);
        let b = bfs(&g, 1, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn validator_rejects_wrong_labelling() {
        let g = sample();
        let mut d = bfs(&g, 0, 1);
        d[3] = 9; // break it
        assert!(!validate_distances(&g, 0, &d));
        let mut d2 = bfs(&g, 0, 1);
        d2[5] = 4; // unreachable marked reached
        assert!(!validate_distances(&g, 0, &d2));
    }

    #[test]
    fn cluster_matches_single_node() {
        let g = rmat_undirected(10, 11);
        let single = bfs(&g, 0, 2);
        for nodes in [1, 2, 4] {
            let (dist, report) = bfs_cluster(&g, 0, NativeOptions::all(), nodes).unwrap();
            assert_eq!(dist, single, "nodes={nodes}");
            assert!(report.sim_seconds > 0.0);
            if nodes > 1 {
                assert!(report.traffic.bytes_sent > 0);
            }
        }
    }

    #[test]
    fn cluster_compression_shrinks_traffic() {
        let g = rmat_undirected(11, 13);
        let mut on = NativeOptions::all();
        on.compression = true;
        let mut off = NativeOptions::all();
        off.compression = false;
        let (_, rep_on) = bfs_cluster(&g, 0, on, 4).unwrap();
        let (_, rep_off) = bfs_cluster(&g, 0, off, 4).unwrap();
        let factor = rep_off.traffic.bytes_sent as f64 / rep_on.traffic.bytes_sent as f64;
        // the paper reports ~3.2x net for BFS
        assert!(factor > 2.0, "BFS compression factor {factor}");
    }

    #[test]
    fn parents_form_valid_bfs_tree() {
        let g = rmat_undirected(10, 19);
        let (dist, parent) = bfs_with_parents(&g, 3);
        assert!(validate_parents(&g, 3, &dist, &parent));
        // distances agree with the parallel implementation
        assert_eq!(dist, bfs(&g, 3, 4));
    }

    #[test]
    fn parent_validator_rejects_corruption() {
        let g = sample();
        let (dist, mut parent) = bfs_with_parents(&g, 0);
        assert!(validate_parents(&g, 0, &dist, &parent));
        parent[4] = 0; // 0 is not a neighbor of 4
        assert!(!validate_parents(&g, 0, &dist, &parent));
        let (mut dist2, parent2) = bfs_with_parents(&g, 0);
        dist2[0] = 1; // source must be level 0
        assert!(!validate_parents(&g, 0, &dist2, &parent2));
    }

    #[test]
    fn empty_graph_and_singleton() {
        let g = UndirectedGraph::from_edges(1, &[]);
        let d = bfs(&g, 0, 2);
        assert_eq!(d, vec![0]);
        assert!(validate_distances(&g, 0, &d));
    }
}
