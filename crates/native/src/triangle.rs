//! Hand-optimized triangle counting (paper §2 eq. (3), §3.2, §6.1).
//!
//! Native algorithm per the paper: every vertex "shares its neighborhood
//! list with each of its neighbors", each vertex intersects received
//! lists with its own. Edges are pre-oriented into a DAG (smaller id →
//! larger id, §4.1.2) so each triangle is counted exactly once. Adjacency
//! lists are sorted for linear-time merge intersection; the bit-vector
//! lever (§6.1.1, worth ~2.2×) switches hub vertices to constant-time
//! membership probes.

use graphmaze_cluster::compress::encode_best;
use graphmaze_cluster::{ClusterSpec, Partition1D, Router, Sim, SimError};
use graphmaze_graph::csr::Csr;
use graphmaze_graph::par::par_reduce;
use graphmaze_graph::{BitVec, EdgeList, VertexId};
use graphmaze_metrics::{RunReport, Work};

use crate::common::{edge_stream_work, NativeOptions};

/// Degree above which the bit-vector membership strategy is used for a
/// vertex's neighbor set.
const BITVEC_DEGREE_THRESHOLD: u32 = 256;

/// Orients edges from smaller to larger vertex id (dropping self-loops
/// and duplicates) and returns a sorted-adjacency CSR — the preprocessing
/// the paper applies to make "the implementations efficient on all
/// frameworks" (§4.1.2).
pub fn orient_and_sort(el: &EdgeList) -> Csr {
    let mut oriented = el.clone();
    oriented.orient_by_id();
    let mut csr = Csr::from_edge_list(&oriented);
    csr.sort_neighbors();
    csr
}

/// Counts the triangles of a DAG-oriented, sorted-adjacency CSR by merge
/// intersection of `N+(u)` and `N+(v)` for every edge `(u, v)`.
pub fn triangles(g: &Csr, threads: usize) -> u64 {
    triangles_with(g, threads, true)
}

/// Triangle counting with the bit-vector lever controllable.
pub fn triangles_with(g: &Csr, threads: usize, use_bitvector: bool) -> u64 {
    debug_assert!(g.neighbors_sorted(), "adjacency must be sorted");
    let n = g.num_vertices();
    par_reduce(
        n,
        threads,
        || 0u64,
        |acc, u| {
            let nu = g.neighbors(u as VertexId);
            if nu.is_empty() {
                return acc;
            }
            let mut local = 0u64;
            if use_bitvector && nu.len() as u32 >= BITVEC_DEGREE_THRESHOLD {
                // hub: constant-time probes against a bitmap of N+(u)
                let mut bv = BitVec::new(n);
                for &w in nu {
                    bv.set(w as usize);
                }
                for &v in nu {
                    for &w in g.neighbors(v) {
                        if bv.get(w as usize) {
                            local += 1;
                        }
                    }
                }
            } else {
                for &v in nu {
                    local += merge_intersect_count(nu, g.neighbors(v));
                }
            }
            acc + local
        },
        |a, b| a + b,
    )
}

/// Counts common elements of two sorted slices.
#[inline]
fn merge_intersect_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut count) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Brute-force triangle count over all vertex triples — the O(n³) oracle
/// for tests.
pub fn triangles_brute_force(edges: &[(VertexId, VertexId)], n: usize) -> u64 {
    let mut adj = vec![BitVec::new(n); n];
    for &(s, d) in edges {
        if s != d {
            adj[s as usize].set(d as usize);
            adj[d as usize].set(s as usize);
        }
    }
    let mut count = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if !adj[i].get(j) {
                continue;
            }
            for k in (j + 1)..n {
                if adj[i].get(k) && adj[j].get(k) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// The number of BSP phases the native code splits the neighbor-list
/// exchange into when overlap is enabled (bounds buffer memory, §6.1.1).
const EXCHANGE_PHASES: usize = 16;

/// Distributed triangle counting on the simulated cluster. Returns the
/// exact count (equal to [`triangles`]) and the run report. Fails with
/// [`SimError::OutOfMemory`] if message buffering exceeds node capacity —
/// which is precisely what the paper reports for naive whole-exchange
/// implementations on large graphs.
pub fn triangles_cluster(
    g: &Csr,
    opts: NativeOptions,
    nodes: usize,
) -> Result<(u64, RunReport), SimError> {
    debug_assert!(g.neighbors_sorted(), "adjacency must be sorted");
    let mut sim = Sim::new(ClusterSpec::paper(nodes), opts.profile());
    let n = g.num_vertices();
    let part = Partition1D::balanced_by_edges(g, nodes);

    for node in 0..nodes {
        let local_edges = part.edges_of(g, node);
        sim.alloc(
            node,
            local_edges * 4 + part.len(node) as u64 * 8,
            "tc:graph",
        )?;
    }

    // Which remote adjacency lists does each node need? v is needed by
    // node c when v ∈ N+(u) for some u owned by c.
    let mut needed: Vec<Vec<VertexId>> = vec![Vec::new(); nodes];
    for node in 0..nodes {
        let r = part.range(node);
        let mut ids: Vec<VertexId> = (r.start..r.end)
            .flat_map(|u| g.neighbors(u).iter().copied())
            .filter(|&v| part.owner(v) != node)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        needed[node] = ids;
    }

    // Exchange: owners ship each requested adjacency list once per
    // consumer. Buffer memory is the whole inbound volume, unless overlap
    // is on and the exchange is phased (§6.1.1 "blocking of a very large
    // message into multiple smaller ones").
    for consumer in 0..nodes {
        let mut inbound_bytes = 0u64;
        // batch all lists from one owner into a single bulk message
        let mut per_owner: Vec<(u64, u64)> = vec![(0, 0); nodes]; // (wire, raw)
        for &v in &needed[consumer] {
            let owner = part.owner(v);
            let deg = g.degree(v) as u64;
            let raw = 4 + deg * 4;
            let wire = if opts.compression {
                4 + encode_best(g.neighbors(v), n as u64).len() as u64
            } else {
                raw
            };
            per_owner[owner].0 += wire;
            per_owner[owner].1 += raw;
            inbound_bytes += raw;
        }
        let mut router = Router::new(nodes, sim.profile());
        for (owner, &(wire, raw)) in per_owner.iter().enumerate() {
            if wire > 0 {
                router.send(&mut sim, owner, consumer, wire, raw);
            }
        }
        router.flush(&mut sim);
        let buffer = if opts.overlap {
            inbound_bytes / EXCHANGE_PHASES as u64 + 1
        } else {
            inbound_bytes
        };
        sim.alloc(consumer, buffer, "tc:inbound-lists")?;
    }

    // Local counting (the real computation, charged per owner node).
    sim.phase("tc:exchange+count");
    let mut total = 0u64;
    for node in 0..nodes {
        let r = part.range(node);
        let mut count = 0u64;
        let mut stream_edges = 0u64;
        let mut probes = 0u64;
        for u in r.start..r.end {
            let nu = g.neighbors(u);
            if nu.is_empty() {
                continue;
            }
            let hub = opts.bitvector && nu.len() as u32 >= BITVEC_DEGREE_THRESHOLD;
            if hub {
                let mut bv = BitVec::new(n);
                for &w in nu {
                    bv.set(w as usize);
                }
                for &v in nu {
                    for &w in g.neighbors(v) {
                        probes += 1;
                        if bv.get(w as usize) {
                            count += 1;
                        }
                    }
                }
            } else {
                for &v in nu {
                    let nv = g.neighbors(v);
                    stream_edges += (nu.len() + nv.len()) as u64;
                    count += merge_intersect_count(nu, nv);
                }
            }
        }
        total += count;
        // Merge scans stream both lists; probe strategy costs one random
        // access per probe; without the bit-vector lever probes double
        // (word-sized flags, worse cache behaviour).
        let probe_factor = if opts.bitvector { 1 } else { 2 };
        let mut w = edge_stream_work(stream_edges, 1);
        w.accumulate(Work::random(probes * probe_factor));
        sim.charge(node, w);
    }
    sim.end_step()?;
    sim.end_iteration();
    Ok((total, sim.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};

    fn k4() -> EdgeList {
        // complete graph on 4 vertices: 4 triangles
        EdgeList::from_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    fn rmat_el(scale: u32, seed: u64) -> EdgeList {
        let cfg = RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::TRIANGLE,
            seed,
            scramble_ids: false,
            threads: 1,
        };
        rmat::generate(&cfg)
    }

    #[test]
    fn paper_fig2_example_has_two_triangles() {
        // §3.2: the CombBLAS example counts nnz(A ∩ A²) = 2 for Figure 2.
        let el = EdgeList::from_edges(4, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        let g = orient_and_sort(&el);
        assert_eq!(triangles(&g, 1), 2);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = orient_and_sort(&k4());
        assert_eq!(triangles(&g, 2), 4);
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // a star has no triangles
        let el = EdgeList::from_edges(6, vec![(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let g = orient_and_sort(&el);
        assert_eq!(triangles(&g, 2), 0);
    }

    #[test]
    fn matches_brute_force_on_rmat() {
        let el = rmat_el(8, 5);
        let g = orient_and_sort(&el);
        let fast = triangles(&g, 4);
        let brute = triangles_brute_force(el.edges(), el.num_vertices() as usize);
        assert_eq!(fast, brute);
    }

    #[test]
    fn bitvector_lever_does_not_change_count() {
        let el = rmat_el(10, 9);
        let g = orient_and_sort(&el);
        assert_eq!(triangles_with(&g, 4, true), triangles_with(&g, 4, false));
    }

    #[test]
    fn orientation_handles_duplicates_and_loops() {
        let el =
            EdgeList::from_edges(3, vec![(0, 1), (1, 0), (1, 1), (1, 2), (2, 0), (0, 2)]).unwrap();
        let g = orient_and_sort(&el);
        assert_eq!(triangles(&g, 1), 1);
    }

    #[test]
    fn cluster_matches_single_node() {
        let el = rmat_el(10, 3);
        let g = orient_and_sort(&el);
        let single = triangles(&g, 2);
        let mut traffic = Vec::new();
        for nodes in [1, 2, 4] {
            let (count, report) = triangles_cluster(&g, NativeOptions::all(), nodes).unwrap();
            assert_eq!(count, single, "nodes={nodes}");
            if nodes > 1 {
                assert!(report.traffic.bytes_sent > 0);
            }
            traffic.push(report.traffic.bytes_uncompressed);
        }
        // neighbor-list traffic grows with node count (§2.1: total message
        // size for TC is much larger than the graph itself at scale)
        assert_eq!(traffic[0], 0);
        assert!(traffic[2] > traffic[1], "traffic {traffic:?}");
    }

    #[test]
    fn overlap_bounds_buffer_memory() {
        let el = rmat_el(11, 17);
        let g = orient_and_sort(&el);
        let mut on = NativeOptions::all();
        on.overlap = true;
        let mut off = NativeOptions::all();
        off.overlap = false;
        let (_, rep_on) = triangles_cluster(&g, on, 4).unwrap();
        let (_, rep_off) = triangles_cluster(&g, off, 4).unwrap();
        assert!(
            rep_on.peak_mem_bytes < rep_off.peak_mem_bytes,
            "{} !< {}",
            rep_on.peak_mem_bytes,
            rep_off.peak_mem_bytes
        );
    }
}
