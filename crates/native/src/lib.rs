#![allow(clippy::needless_range_loop)] // per-node kernels index several parallel arrays by the same id

//! # graphmaze-native
//!
//! The paper's hand-optimized "native" implementations — the reference
//! point every framework is measured against (§5.1, §6.1). Four
//! algorithms, each in two forms:
//!
//! * a **single-node** shared-memory implementation that really runs in
//!   parallel (scoped threads), used for correctness oracles and
//!   wall-clock Criterion benches;
//! * a **cluster** implementation that executes the same algorithm
//!   partitioned over the simulated nodes of a
//!   [`graphmaze_cluster::Sim`], exchanging real messages and metering
//!   every byte — used to regenerate the paper's multi-node results.
//!
//! The §6.1.1 optimization levers are explicit [`NativeOptions`] toggles
//! so Figure 7's ablation can be reproduced: software prefetch,
//! id compression (delta/bit-vector coding), computation–communication
//! overlap, and bit-vector data structures.

pub mod bfs;
pub mod cf;
pub mod common;
pub mod msbfs;
pub mod pagerank;
pub mod triangle;

pub use common::NativeOptions;

/// The paper's random-jump probability for PageRank ("we use 0.3", §2).
pub const PAGERANK_R: f64 = 0.3;
