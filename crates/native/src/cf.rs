//! Hand-optimized collaborative filtering (paper §2 eq. (4)–(8), §3.2,
//! §6.1.2).
//!
//! Native code implements **Stochastic Gradient Descent** parallelized
//! with the diagonal 2-D blocking of Gemulla et al. \[16\]: the ratings
//! matrix is split into `P × P` blocks; an epoch runs `P` sub-steps, and
//! in sub-step `s` worker `w` owns block `(w, (w + s) mod P)` — no two
//! workers ever touch the same user or item rows, so updates are
//! lock-free ("without using locks", §6.1.2). **Gradient Descent**
//! (eq. (11)/(12)) is also provided: it is what the restricted
//! programming models of the frameworks can express, and the paper's
//! SGD-vs-GD convergence comparison (≈40× on Netflix) needs both.

use graphmaze_cluster::{ClusterSpec, Router, Sim, SimError};
use graphmaze_graph::par::par_tasks;
use graphmaze_graph::{RatingsGraph, VertexId};
use graphmaze_metrics::{RunReport, Work};

use crate::common::NativeOptions;

/// Hyper-parameters of the factorization.
#[derive(Clone, Copy, Debug)]
pub struct CfConfig {
    /// Latent dimension `K`. The paper's runs imply K = 1024 (8 KB
    /// messages, Table 1); tests use smaller K — the kernels are K-generic.
    pub k: usize,
    /// Regularization λ (used for both users and items).
    pub lambda: f64,
    /// Initial step size γ₀.
    pub gamma0: f64,
    /// Per-iteration step-size decay `s` (γ_t = γ₀ · sᵗ), `0 < s ≤ 1`.
    pub step_decay: f64,
    /// Seed for factor initialization and shuffling.
    pub seed: u64,
}

impl CfConfig {
    /// Sensible defaults for tests and examples.
    pub fn defaults(k: usize) -> Self {
        CfConfig {
            k,
            lambda: 0.05,
            gamma0: 0.01,
            step_decay: 0.95,
            seed: 42,
        }
    }
}

/// Dense factor matrices: `p` is `num_users × k` row-major, `q` is
/// `num_items × k` row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Factors {
    /// User factors.
    pub p: Vec<f64>,
    /// Item factors.
    pub q: Vec<f64>,
    /// Latent dimension.
    pub k: usize,
}

impl Factors {
    /// Deterministic pseudo-random initialization in `[0, 0.1)`.
    pub fn init(num_users: u32, num_items: u32, cfg: &CfConfig) -> Self {
        let gen = |i: u64| -> f64 {
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ cfg.seed;
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            (x >> 11) as f64 / (1u64 << 53) as f64 * 0.1
        };
        let p = (0..num_users as u64 * cfg.k as u64).map(gen).collect();
        let q = (0..num_items as u64 * cfg.k as u64)
            .map(|i| gen(i + (1 << 40)))
            .collect();
        Factors { p, q, k: cfg.k }
    }

    /// User row `u`.
    #[inline]
    pub fn p_row(&self, u: VertexId) -> &[f64] {
        &self.p[u as usize * self.k..(u as usize + 1) * self.k]
    }

    /// Item row `v`.
    #[inline]
    pub fn q_row(&self, v: VertexId) -> &[f64] {
        &self.q[v as usize * self.k..(v as usize + 1) * self.k]
    }

    /// Predicted rating for `(u, v)`.
    pub fn predict(&self, u: VertexId, v: VertexId) -> f64 {
        dot(self.p_row(u), self.q_row(v))
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Root-mean-square training error of `f` on `g`.
pub fn rmse(g: &RatingsGraph, f: &Factors) -> f64 {
    if g.num_ratings() == 0 {
        return 0.0;
    }
    let mut sse = 0.0;
    for u in 0..g.num_users() {
        let pu = f.p_row(u);
        for (v, r) in g.ratings_of_user(u) {
            let e = f64::from(r) - dot(pu, f.q_row(v));
            sse += e * e;
        }
    }
    (sse / g.num_ratings() as f64).sqrt()
}

/// One SGD update on rating `(u, v, r)` with step `gamma` — eq. (5)–(8).
/// Public so other schedulers (Galois's work-item model) can drive the
/// identical update kernel.
#[inline]
pub fn sgd_update(p: &mut [f64], q: &mut [f64], r: f64, gamma: f64, lambda: f64) {
    let e = r - dot(p, q);
    for i in 0..p.len() {
        let (pu, qv) = (p[i], q[i]);
        p[i] = pu + gamma * (e * qv - lambda * pu);
        q[i] = qv + gamma * (e * pu - lambda * qv);
    }
}

/// The `P × P` diagonal block schedule of Gemulla et al. \[16\]: ratings
/// bucketed by `(user_block, item_block)`. Public so the Galois engine
/// can apply "the n² uniform 2D chunk partitioning" (§3.2) itself.
pub struct DiagonalBlocks {
    /// `buckets[ub * P + ib]` = ratings in that block, fixed order.
    buckets: Vec<Vec<(VertexId, VertexId, f64)>>,
}

impl DiagonalBlocks {
    /// Buckets `g`'s ratings into a `p_blocks × p_blocks` grid.
    pub fn build(g: &RatingsGraph, p_blocks: usize) -> Self {
        let p_blocks = p_blocks.max(1);
        let ub_size = (g.num_users() as usize).div_ceil(p_blocks).max(1);
        let ib_size = (g.num_items() as usize).div_ceil(p_blocks).max(1);
        let user_block_of: Vec<usize> = (0..g.num_users() as usize)
            .map(|u| (u / ub_size).min(p_blocks - 1))
            .collect();
        let item_block_of: Vec<usize> = (0..g.num_items() as usize)
            .map(|v| (v / ib_size).min(p_blocks - 1))
            .collect();
        let mut buckets = vec![Vec::new(); p_blocks * p_blocks];
        for (u, v, r) in g.triples() {
            let ub = user_block_of[u as usize];
            let ib = item_block_of[v as usize];
            buckets[ub * p_blocks + ib].push((u, v, f64::from(r)));
        }
        DiagonalBlocks { buckets }
    }

    /// The ratings of block `(user_block, item_block)`.
    pub fn bucket(
        &self,
        user_block: usize,
        item_block: usize,
        p_blocks: usize,
    ) -> &[(VertexId, VertexId, f64)] {
        &self.buckets[user_block * p_blocks + item_block]
    }
}

/// Shared factor storage that workers of one sub-step may mutate through
/// disjoint block rows.
struct FactorCell {
    p: *mut f64,
    q: *mut f64,
    k: usize,
}

// SAFETY: the diagonal schedule guarantees that within one sub-step no two
// workers share a user block or an item block, so all `&mut` row accesses
// are disjoint.
unsafe impl Sync for FactorCell {}

impl FactorCell {
    /// # Safety
    /// Caller must guarantee `u` rows are accessed by at most one worker
    /// in the current sub-step.
    #[allow(clippy::mut_from_ref)]
    unsafe fn p_row(&self, u: VertexId) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.p.add(u as usize * self.k), self.k)
    }

    /// # Safety
    /// Same disjointness contract for item rows.
    #[allow(clippy::mut_from_ref)]
    unsafe fn q_row(&self, v: VertexId) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.q.add(v as usize * self.k), self.k)
    }
}

/// Parallel SGD with `P = threads` diagonal blocking. Returns the factors
/// and the RMSE after each epoch. Deterministic for fixed `threads`.
pub fn sgd(g: &RatingsGraph, cfg: &CfConfig, epochs: u32, threads: usize) -> (Factors, Vec<f64>) {
    let p_blocks = threads.max(1);
    let blocks = DiagonalBlocks::build(g, p_blocks);
    let mut f = Factors::init(g.num_users(), g.num_items(), cfg);
    let mut history = Vec::with_capacity(epochs as usize);
    let mut gamma = cfg.gamma0;
    for _ in 0..epochs {
        for s in 0..p_blocks {
            let cell = FactorCell {
                p: f.p.as_mut_ptr(),
                q: f.q.as_mut_ptr(),
                k: cfg.k,
            };
            let blocks_ref = &blocks;
            let cell_ref = &cell;
            par_tasks(p_blocks, move |w| {
                let ib = (w + s) % p_blocks;
                for &(u, v, r) in &blocks_ref.buckets[w * p_blocks + ib] {
                    // SAFETY: worker w exclusively owns user block w and
                    // item block (w+s)%P in this sub-step.
                    let (pu, qv) = unsafe { (cell_ref.p_row(u), cell_ref.q_row(v)) };
                    sgd_update(pu, qv, r, gamma, cfg.lambda);
                }
            });
        }
        gamma *= cfg.step_decay;
        history.push(rmse(g, &f));
    }
    (f, history)
}

/// Full-batch Gradient Descent — eq. (11)/(12). One iteration aggregates
/// gradients over all ratings, then applies them; parallel by user rows
/// then item rows (no write conflicts).
pub fn gd(g: &RatingsGraph, cfg: &CfConfig, epochs: u32, threads: usize) -> (Factors, Vec<f64>) {
    let mut f = Factors::init(g.num_users(), g.num_items(), cfg);
    let k = cfg.k;
    let mut history = Vec::with_capacity(epochs as usize);
    let mut gamma = cfg.gamma0;
    let nu = g.num_users() as usize;
    let nv = g.num_items() as usize;
    for _ in 0..epochs {
        // user-side gradients
        let grads_p: Vec<Vec<f64>> = par_tasks(threads.max(1), |t| {
            let chunk = nu.div_ceil(threads.max(1));
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(nu));
            let mut grad = vec![0.0; (hi.saturating_sub(lo)) * k];
            for u in lo..hi {
                let pu = f.p_row(u as u32);
                let gslice = &mut grad[(u - lo) * k..(u - lo + 1) * k];
                for (v, r) in g.ratings_of_user(u as u32) {
                    let qv = f.q_row(v);
                    let e = f64::from(r) - dot(pu, qv);
                    for i in 0..k {
                        gslice[i] += e * qv[i] - cfg.lambda * pu[i];
                    }
                }
            }
            grad
        });
        // item-side gradients
        let grads_q: Vec<Vec<f64>> = par_tasks(threads.max(1), |t| {
            let chunk = nv.div_ceil(threads.max(1));
            let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(nv));
            let mut grad = vec![0.0; (hi.saturating_sub(lo)) * k];
            for v in lo..hi {
                let qv = f.q_row(v as u32);
                let gslice = &mut grad[(v - lo) * k..(v - lo + 1) * k];
                for (u, r) in g.ratings_of_item(v as u32) {
                    let pu = f.p_row(u);
                    let e = f64::from(r) - dot(pu, qv);
                    for i in 0..k {
                        gslice[i] += e * pu[i] - cfg.lambda * qv[i];
                    }
                }
            }
            grad
        });
        // apply
        let chunk_u = nu.div_ceil(threads.max(1));
        for (t, grad) in grads_p.iter().enumerate() {
            let lo = t * chunk_u;
            for (off, gval) in grad.iter().enumerate() {
                f.p[lo * k + off] += gamma * gval;
            }
        }
        let chunk_v = nv.div_ceil(threads.max(1));
        for (t, grad) in grads_q.iter().enumerate() {
            let lo = t * chunk_v;
            for (off, gval) in grad.iter().enumerate() {
                f.q[lo * k + off] += gamma * gval;
            }
        }
        gamma *= cfg.step_decay;
        history.push(rmse(g, &f));
    }
    (f, history)
}

/// Epochs needed to reach `target` RMSE, or `None` within `max_epochs`.
pub fn epochs_to_reach(history: &[f64], target: f64) -> Option<u32> {
    history
        .iter()
        .position(|&r| r <= target)
        .map(|i| i as u32 + 1)
}

/// Distributed SGD on the simulated cluster: `P = nodes` diagonal
/// blocking, item-factor blocks rotating between nodes each sub-step
/// ("partitioning is done so that all updates are local within a single
/// iteration and data sharing happens between iterations", §3.2).
/// Result is identical to [`sgd`] with `threads = nodes`.
pub fn sgd_cluster(
    g: &RatingsGraph,
    cfg: &CfConfig,
    epochs: u32,
    opts: NativeOptions,
    nodes: usize,
) -> Result<(Factors, Vec<f64>, RunReport), SimError> {
    let mut sim = Sim::new(ClusterSpec::paper(nodes), opts.profile());
    let mut router = Router::new(nodes, sim.profile());
    let p_blocks = nodes.max(1);
    let blocks = DiagonalBlocks::build(g, p_blocks);
    let mut f = Factors::init(g.num_users(), g.num_items(), cfg);
    let k = cfg.k as u64;

    // Memory: each node stores its user block's p rows, one item block's
    // q rows, and its rating blocks.
    let users_per = (g.num_users() as u64).div_ceil(p_blocks as u64);
    let items_per = (g.num_items() as u64).div_ceil(p_blocks as u64);
    for node in 0..nodes {
        let ratings: u64 = (0..p_blocks)
            .map(|ib| blocks.buckets[node * p_blocks + ib].len() as u64)
            .sum();
        sim.alloc(
            node,
            users_per * k * 8 + items_per * k * 8 + ratings * 12,
            "cf:factors+ratings",
        )?;
    }

    let mut history = Vec::with_capacity(epochs as usize);
    let mut gamma = cfg.gamma0;
    sim.phase("sgd:diag-block");
    for _ in 0..epochs {
        for s in 0..p_blocks {
            for w in 0..p_blocks {
                let ib = (w + s) % p_blocks;
                let bucket = &blocks.buckets[w * p_blocks + ib];
                for &(u, v, r) in bucket {
                    let pu = &mut f.p[u as usize * cfg.k..(u as usize + 1) * cfg.k];
                    // split borrow: q is a different vec
                    let qv = &mut f.q[v as usize * cfg.k..(v as usize + 1) * cfg.k];
                    sgd_update(pu, qv, r, gamma, cfg.lambda);
                }
                // Work: per rating, stream p and q rows (read+write) and
                // the rating record; ~8K flops; 2 row gathers.
                let nr = bucket.len() as u64;
                let w_node = Work {
                    seq_bytes: nr * (4 * k * 8 + 12),
                    rand_accesses: nr * 2,
                    flops: nr * 8 * k,
                };
                sim.charge(w, w_node);
                // Rotate: ship the q block to the next node (uncompressed;
                // factor state does not tolerate narrowing).
                if nodes > 1 {
                    let bytes = items_per * k * 8;
                    router.send(&mut sim, w, (w + nodes - 1) % nodes, bytes, bytes);
                }
            }
            router.flush(&mut sim);
            sim.end_step()?;
        }
        gamma *= cfg.step_decay;
        sim.end_iteration();
        history.push(rmse(g, &f));
    }
    Ok((f, history, sim.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_datagen::ratings::{self, RatingsGenConfig};

    fn small_ratings(seed: u64) -> RatingsGraph {
        ratings::generate(&RatingsGenConfig {
            scale: 9,
            edge_factor: 16,
            num_items: 64,
            min_degree: 5,
            seed,
        })
    }

    fn cfg() -> CfConfig {
        CfConfig {
            k: 8,
            lambda: 0.05,
            gamma0: 0.02,
            step_decay: 0.98,
            seed: 7,
        }
    }

    #[test]
    fn factors_init_deterministic_and_bounded() {
        let a = Factors::init(10, 5, &cfg());
        let b = Factors::init(10, 5, &cfg());
        assert_eq!(a, b);
        assert!(a.p.iter().chain(&a.q).all(|&x| (0.0..0.1).contains(&x)));
        assert_eq!(a.p.len(), 80);
        assert_eq!(a.q.len(), 40);
    }

    #[test]
    fn sgd_reduces_rmse() {
        let g = small_ratings(3);
        let f0 = Factors::init(g.num_users(), g.num_items(), &cfg());
        let initial = rmse(&g, &f0);
        let (_, hist) = sgd(&g, &cfg(), 10, 2);
        assert!(hist[9] < initial * 0.7, "rmse {} -> {}", initial, hist[9]);
        // monotone-ish: last better than first epoch
        assert!(hist[9] < hist[0]);
    }

    #[test]
    fn gd_reduces_rmse() {
        let g = small_ratings(3);
        let mut c = cfg();
        c.gamma0 = 0.002; // GD needs a smaller step for stability
        let f0 = Factors::init(g.num_users(), g.num_items(), &c);
        let initial = rmse(&g, &f0);
        let (_, hist) = gd(&g, &c, 20, 2);
        assert!(hist[19] < initial, "rmse {} -> {}", initial, hist[19]);
        assert!(hist[19] < hist[0]);
    }

    #[test]
    fn sgd_converges_faster_than_gd() {
        // The paper: "SGD converges in about 40x fewer iterations than GD"
        // (Netflix, fixed criterion). At our scale we assert a large gap.
        let g = small_ratings(5);
        let (_, sgd_hist) = sgd(&g, &cfg(), 30, 2);
        let mut c = cfg();
        c.gamma0 = 0.002;
        let (_, gd_hist) = gd(&g, &c, 30, 2);
        let target = 1.0;
        let se = epochs_to_reach(&sgd_hist, target);
        let ge = epochs_to_reach(&gd_hist, target);
        assert!(se.is_some(), "SGD should reach {target}: {sgd_hist:?}");
        match ge {
            None => {} // GD did not reach it at all within 30 epochs — fine
            Some(ge) => {
                assert!(ge > se.unwrap() * 3, "SGD {:?} vs GD {:?}", se, ge);
            }
        }
    }

    #[test]
    fn sgd_deterministic_for_fixed_threads() {
        let g = small_ratings(9);
        let (fa, _) = sgd(&g, &cfg(), 3, 4);
        let (fb, _) = sgd(&g, &cfg(), 3, 4);
        assert_eq!(fa, fb);
    }

    #[test]
    fn cluster_matches_threaded_sgd() {
        let g = small_ratings(11);
        let nodes = 4;
        let (f_thread, _) = sgd(&g, &cfg(), 3, nodes);
        let (f_cluster, hist, report) =
            sgd_cluster(&g, &cfg(), 3, NativeOptions::all(), nodes).unwrap();
        for (a, b) in f_thread.p.iter().zip(&f_cluster.p) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(hist.len(), 3);
        assert_eq!(report.iterations, 3);
        assert!(report.traffic.bytes_sent > 0);
    }

    #[test]
    fn single_node_cluster_no_traffic() {
        let g = small_ratings(13);
        let (_, _, report) = sgd_cluster(&g, &cfg(), 2, NativeOptions::all(), 1).unwrap();
        assert_eq!(report.traffic.bytes_sent, 0);
    }

    #[test]
    fn predict_and_rmse_consistency() {
        let g = RatingsGraph::from_ratings(2, 2, &[(0, 0, 4.0), (1, 1, 2.0)]);
        let f = Factors {
            p: vec![1.0, 0.0, 0.0, 1.0],
            q: vec![4.0, 0.0, 0.0, 2.0],
            k: 2,
        };
        assert!((f.predict(0, 0) - 4.0).abs() < 1e-12);
        assert!((f.predict(1, 1) - 2.0).abs() < 1e-12);
        assert!(rmse(&g, &f).abs() < 1e-12);
    }

    #[test]
    fn epochs_to_reach_finds_first_crossing() {
        let hist = [2.0, 1.5, 0.9, 0.8];
        assert_eq!(epochs_to_reach(&hist, 1.0), Some(3));
        assert_eq!(epochs_to_reach(&hist, 0.1), None);
    }
}
