//! Shared helpers: optimization toggles and message metering.

use graphmaze_cluster::compress::{encode_best, raw_size};
use graphmaze_cluster::{ExecProfile, Router, Sim};
use graphmaze_graph::VertexId;
use graphmaze_metrics::Work;

/// The §6.1.1 native optimization levers, each independently toggleable
/// for the Figure 7 ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NativeOptions {
    /// Software prefetch on irregular loads (raises MLP in the cost model).
    pub prefetch: bool,
    /// Delta/bit-vector compression of message id payloads, with values
    /// narrowed to `f32` on the wire where the algorithm tolerates it.
    pub compression: bool,
    /// Overlap communication with computation within a step.
    pub overlap: bool,
    /// Bit-vector data structures for visited/neighbor sets (BFS, TC).
    pub bitvector: bool,
}

impl NativeOptions {
    /// Everything on — the configuration behind the headline results.
    pub fn all() -> Self {
        NativeOptions {
            prefetch: true,
            compression: true,
            overlap: true,
            bitvector: true,
        }
    }

    /// Everything off — Fig 7's baseline bar.
    pub fn none() -> Self {
        NativeOptions {
            prefetch: false,
            compression: false,
            overlap: false,
            bitvector: false,
        }
    }

    /// The [`ExecProfile`] for native code under these options.
    pub fn profile(&self) -> ExecProfile {
        let mut p = ExecProfile::native();
        p.sw_prefetch = self.prefetch;
        p.overlap = self.overlap;
        p
    }
}

impl Default for NativeOptions {
    fn default() -> Self {
        NativeOptions::all()
    }
}

/// Meters a message of sorted unique `ids` plus `value_bytes` of payload
/// per id, routed from `from` to `to`. When `compress` is set, ids are
/// actually encoded (delta-varint or bitmap, whichever is smaller) and
/// values are narrowed to 4 bytes where `narrow_values` allows. Returns
/// wire bytes.
#[allow(clippy::too_many_arguments)]
pub fn send_ids_with_values(
    router: &mut Router,
    sim: &mut Sim,
    from: usize,
    to: usize,
    ids: &[VertexId],
    universe: u64,
    value_bytes: u64,
    compress: bool,
    narrow_values: bool,
) -> u64 {
    if ids.is_empty() {
        return 0;
    }
    let raw = raw_size(ids.len()) + ids.len() as u64 * value_bytes;
    let wire = if compress {
        let encoded = encode_best(ids, universe);
        let vb = if narrow_values && value_bytes >= 8 {
            value_bytes / 2
        } else {
            value_bytes
        };
        encoded.len() as u64 + ids.len() as u64 * vb
    } else {
        raw
    };
    router.send(sim, from, to, wire, raw);
    wire
}

/// Work of streaming an adjacency segment of `edges` edges: the 4-byte
/// target array plus per-edge arithmetic.
pub fn edge_stream_work(edges: u64, flops_per_edge: u64) -> Work {
    Work {
        seq_bytes: edges * 4,
        rand_accesses: 0,
        flops: edges * flops_per_edge,
    }
}

/// Work of `n` random gathers: each touches one cache line, which the
/// cost model already prices as 64 bytes of DRAM traffic plus latency
/// (the `bytes_each` payload rides inside that line).
pub fn gather_work(n: u64, bytes_each: u64) -> Work {
    debug_assert!(bytes_each <= 64, "multi-line gathers should be streamed");
    Work {
        seq_bytes: 0,
        rand_accesses: n,
        flops: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmaze_cluster::ClusterSpec;

    #[test]
    fn options_map_to_profile() {
        let p = NativeOptions::all().profile();
        assert!(p.sw_prefetch && p.overlap);
        let p = NativeOptions::none().profile();
        assert!(!p.sw_prefetch && !p.overlap);
    }

    #[test]
    fn compressed_send_is_smaller() {
        let ids: Vec<u32> = (0..10_000).collect();
        let mut sim = Sim::new(ClusterSpec::paper(2), ExecProfile::native());
        let mut router = Router::new(2, sim.profile());
        let wire_plain =
            send_ids_with_values(&mut router, &mut sim, 0, 1, &ids, 1 << 20, 8, false, true);
        let wire_comp =
            send_ids_with_values(&mut router, &mut sim, 0, 1, &ids, 1 << 20, 8, true, true);
        assert!(wire_comp < wire_plain, "{wire_comp} !< {wire_plain}");
        // dense ascending ids: ids shrink 4→~1, values 8→4 ⇒ ≥2x
        assert!(wire_plain as f64 / wire_comp as f64 > 2.0);
        router.flush(&mut sim);
        let r = sim.finish();
        assert_eq!(r.traffic.messages, 2);
        assert_eq!(r.matrix.bytes(0, 1), wire_plain + wire_comp);
    }

    #[test]
    fn empty_send_is_free() {
        let mut sim = Sim::new(ClusterSpec::paper(2), ExecProfile::native());
        let mut router = Router::new(2, sim.profile());
        assert_eq!(
            send_ids_with_values(&mut router, &mut sim, 0, 1, &[], 10, 8, true, true),
            0
        );
        router.flush(&mut sim);
        let r = sim.finish();
        assert_eq!(r.traffic.messages, 0);
    }

    #[test]
    fn work_helpers() {
        let w = edge_stream_work(100, 2);
        assert_eq!(w.seq_bytes, 400);
        assert_eq!(w.flops, 200);
        let g = gather_work(10, 8);
        assert_eq!(g.rand_accesses, 10);
        assert_eq!(g.seq_bytes, 0, "line traffic is priced by the cost model");
    }
}
