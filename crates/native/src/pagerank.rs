//! Hand-optimized PageRank (paper §2 eq. (1), §3.1, §6.1).
//!
//! The native design, straight from the paper: the graph is stored as an
//! **incoming-edge CSR** so each destination vertex streams the ranks of
//! its sources; the multi-node version partitions vertices 1-D "so that
//! each node has roughly the same number of edges", computes local
//! updates, then "packages the pagerank values to be sent to the other
//! nodes" — one value per boundary vertex per consumer node, with ids
//! delta/bitmap-compressed when the compression lever is on.

use graphmaze_cluster::{ClusterSpec, Partition1D, Router, Sim, SimError};
use graphmaze_graph::csr::DirectedGraph;
use graphmaze_graph::par::par_tasks;
use graphmaze_graph::VertexId;
use graphmaze_metrics::{RunReport, Work};

use crate::common::{edge_stream_work, gather_work, send_ids_with_values, NativeOptions};

/// One full PageRank iteration into `next` from `scaled` (already divided
/// by out-degree), over destination vertices `range`.
fn iterate_range(
    g: &DirectedGraph,
    scaled: &[f64],
    next: &mut [f64],
    lo: usize,
    hi: usize,
    r: f64,
) {
    for i in lo..hi {
        let mut acc = 0.0;
        for &j in g.inn.neighbors(i as VertexId) {
            acc += scaled[j as usize];
        }
        next[i] = r + (1.0 - r) * acc;
    }
}

/// Divides ranks by out-degree (dangling vertices contribute nothing, as
/// in the paper's unnormalized formulation).
fn rescale(g: &DirectedGraph, ranks: &[f64], scaled: &mut [f64]) {
    for i in 0..ranks.len() {
        let d = g.out.degree(i as VertexId);
        scaled[i] = if d == 0 { 0.0 } else { ranks[i] / f64::from(d) };
    }
}

/// Single-node parallel PageRank: `iterations` synchronous iterations of
/// eq. (1) with random-jump probability `r`. Returns the (unnormalized)
/// rank per vertex.
///
/// ```
/// use graphmaze_graph::DirectedGraph;
/// use graphmaze_native::{pagerank::pagerank, PAGERANK_R};
/// let g = DirectedGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
/// let pr = pagerank(&g, PAGERANK_R, 1, 1);
/// assert!((pr[3] - 1.35).abs() < 1e-12); // Figure 2, one iteration by hand
/// ```
pub fn pagerank(g: &DirectedGraph, r: f64, iterations: u32, threads: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut ranks = vec![1.0f64; n];
    let mut scaled = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        rescale(g, &ranks, &mut scaled);
        // parallel over destination chunks — writes are disjoint
        let chunks: Vec<(usize, usize)> = chunk_bounds(n, threads.max(1));
        let scaled_ref = &scaled;
        let results: Vec<Vec<f64>> = par_tasks(chunks.len(), |t| {
            let (lo, hi) = chunks[t];
            let mut out = vec![0.0f64; hi - lo];
            for i in lo..hi {
                let mut acc = 0.0;
                for &j in g.inn.neighbors(i as VertexId) {
                    acc += scaled_ref[j as usize];
                }
                out[i - lo] = r + (1.0 - r) * acc;
            }
            out
        });
        for (t, part) in results.into_iter().enumerate() {
            let (lo, hi) = chunks[t];
            next[lo..hi].copy_from_slice(&part);
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

/// Runs until the L1 delta between iterations drops below `tol` (or
/// `max_iterations`). Returns `(ranks, iterations_run)`.
pub fn pagerank_until(
    g: &DirectedGraph,
    r: f64,
    tol: f64,
    max_iterations: u32,
    _threads: usize,
) -> (Vec<f64>, u32) {
    let n = g.num_vertices();
    let mut ranks = vec![1.0f64; n];
    let mut scaled = vec![0.0f64; n];
    for it in 1..=max_iterations {
        rescale(g, &ranks, &mut scaled);
        let mut next = vec![0.0f64; n];
        iterate_range(g, &scaled, &mut next, 0, n, r);
        let delta: f64 = ranks.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        ranks = next;
        if delta < tol {
            return (ranks, it);
        }
    }
    (ranks, max_iterations)
}

fn chunk_bounds(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(n.max(1));
    let per = n.div_ceil(parts.max(1));
    (0..parts)
        .map(|t| (t * per, ((t + 1) * per).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Per-node boundary structure: for each (owner, consumer) pair, the
/// sorted source vertices owned by `owner` that `consumer`'s in-edges
/// reference.
fn boundary_sets(g: &DirectedGraph, part: &Partition1D) -> Vec<Vec<Vec<VertexId>>> {
    let nodes = part.nodes();
    let mut sets: Vec<Vec<Vec<VertexId>>> = vec![vec![Vec::new(); nodes]; nodes];
    for consumer in 0..nodes {
        let range = part.range(consumer);
        let mut needed: Vec<VertexId> = Vec::new();
        for i in range.start..range.end {
            for &j in g.inn.neighbors(i) {
                let owner = part.owner(j);
                if owner != consumer {
                    needed.push(j);
                }
            }
        }
        needed.sort_unstable();
        needed.dedup();
        for j in needed {
            sets[part.owner(j)][consumer].push(j);
        }
    }
    sets
}

/// Distributed PageRank on the simulated cluster. Executes the real
/// computation partitioned per node and meters compute, traffic and
/// memory. Returns the ranks (identical to [`pagerank`]) and the report.
pub fn pagerank_cluster(
    g: &DirectedGraph,
    r: f64,
    iterations: u32,
    opts: NativeOptions,
    nodes: usize,
) -> Result<(Vec<f64>, RunReport), SimError> {
    let mut sim = Sim::new(ClusterSpec::paper(nodes), opts.profile());
    let mut router = Router::new(nodes, sim.profile());
    let n = g.num_vertices();
    let part = Partition1D::balanced_by_edges(&g.inn, nodes);
    let boundary = boundary_sets(g, &part);

    // Memory: each node holds its in-edge CSR slice plus rank arrays for
    // owned vertices and ghost values for boundary sources.
    for node in 0..nodes {
        let local_edges = part.edges_of(&g.inn, node);
        let local_vertices = part.len(node) as u64;
        sim.declare_partition(node, local_vertices, local_edges);
        let ghosts: u64 = (0..nodes).map(|o| boundary[o][node].len() as u64).sum();
        sim.alloc(
            node,
            local_edges * 4 + local_vertices * (8 + 8 + 8) + ghosts * 8,
            "pagerank:graph+ranks",
        )?;
    }

    let mut ranks = vec![1.0f64; n];
    let mut scaled = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    sim.phase("pr:iterate");
    for _ in 0..iterations {
        for i in 0..n {
            let d = g.out.degree(i as VertexId);
            scaled[i] = if d == 0 { 0.0 } else { ranks[i] / f64::from(d) };
        }
        for node in 0..nodes {
            let range = part.range(node);
            iterate_range(
                g,
                &scaled,
                &mut next,
                range.start as usize,
                range.end as usize,
                r,
            );
            // Work: stream the local edge array, gather source ranks
            // (irregular), stream the rank arrays, 2 flops/edge.
            let local_edges = part.edges_of(&g.inn, node);
            let local_vertices = part.len(node) as u64;
            let mut w = edge_stream_work(local_edges, 2);
            w.accumulate(gather_work(local_edges, 8));
            w.accumulate(Work::stream(local_vertices * 24));
            sim.charge(node, w);
            // Messages: updated boundary values to each consumer.
            for consumer in 0..nodes {
                if consumer != node && !boundary[node][consumer].is_empty() {
                    send_ids_with_values(
                        &mut router,
                        &mut sim,
                        node,
                        consumer,
                        &boundary[node][consumer],
                        n as u64,
                        8,
                        opts.compression,
                        true,
                    );
                }
            }
        }
        std::mem::swap(&mut ranks, &mut next);
        router.flush(&mut sim);
        sim.end_step()?;
        sim.end_iteration();
    }
    Ok((ranks, sim.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGERANK_R;

    use graphmaze_graph::fixtures::fig2_directed as fig2;

    /// Sequential oracle, straight from eq. (1).
    fn oracle(g: &DirectedGraph, r: f64, iterations: u32) -> Vec<f64> {
        let n = g.num_vertices();
        let mut pr = vec![1.0f64; n];
        for _ in 0..iterations {
            let mut next = vec![r; n];
            for i in 0..n {
                let d = g.out.degree(i as u32);
                if d == 0 {
                    continue;
                }
                let share = (1.0 - r) * pr[i] / f64::from(d);
                for &dst in g.out.neighbors(i as u32) {
                    next[dst as usize] += share;
                }
            }
            pr = next;
        }
        pr
    }

    #[test]
    fn matches_sequential_oracle_on_fig2() {
        let g = fig2();
        let got = pagerank(&g, PAGERANK_R, 10, 4);
        let want = oracle(&g, PAGERANK_R, 10);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn one_iteration_by_hand() {
        // After 1 iteration from pr=1: pr(0)=0.3 (no in-edges);
        // pr(1)=0.3+0.7*(1/2)=0.65; pr(2)=0.3+0.7*(1/2+1/2)=1.0;
        // pr(3)=0.3+0.7*(1/2+1/1)=1.35
        let g = fig2();
        let pr = pagerank(&g, 0.3, 1, 1);
        let want = [0.3, 0.65, 1.0, 1.35];
        for (a, b) in pr.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let g = fig2();
        let a = pagerank(&g, 0.3, 5, 1);
        let b = pagerank(&g, 0.3, 5, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn dangling_vertices_do_not_leak_rank() {
        // vertex 1 is a sink; its rank must stay r + contribution,
        // and vertex 0 gets exactly r every iteration.
        let g = DirectedGraph::from_edges(2, &[(0, 1)]);
        let pr = pagerank(&g, 0.3, 3, 1);
        assert!((pr[0] - 0.3).abs() < 1e-12);
        assert!((pr[1] - (0.3 + 0.7 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn until_converges_and_stops_early() {
        let g = fig2();
        let (_, iters) = pagerank_until(&g, 0.3, 1e-12, 200, 2);
        assert!(iters < 200, "should converge, ran {iters}");
        let (ranks_a, _) = pagerank_until(&g, 0.3, 1e-12, 200, 2);
        let ranks_b = pagerank(&g, 0.3, iters, 2);
        for (a, b) in ranks_a.iter().zip(&ranks_b) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    fn rmat_graph(scale: u32, edge_factor: u32, seed: u64) -> DirectedGraph {
        let cfg = graphmaze_datagen::RmatConfig {
            scale,
            edge_factor,
            params: graphmaze_datagen::RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        };
        let el = graphmaze_datagen::rmat::generate(&cfg);
        DirectedGraph::from_edge_list(&el)
    }

    #[test]
    fn cluster_matches_single_node() {
        let g = rmat_graph(10, 8, 7);
        let single = pagerank(&g, 0.3, 5, 2);
        for nodes in [1, 2, 4] {
            let (dist, report) = pagerank_cluster(&g, 0.3, 5, NativeOptions::all(), nodes).unwrap();
            for (a, b) in single.iter().zip(&dist) {
                assert!((a - b).abs() < 1e-9, "nodes={nodes}");
            }
            assert_eq!(report.iterations, 5);
            assert_eq!(report.nodes, nodes);
            assert!(report.sim_seconds > 0.0);
            if nodes > 1 {
                assert!(report.traffic.bytes_sent > 0, "multi-node must communicate");
            } else {
                assert_eq!(report.traffic.bytes_sent, 0);
            }
        }
    }

    #[test]
    fn compression_reduces_wire_bytes() {
        let g = rmat_graph(10, 8, 3);
        let mut with = NativeOptions::all();
        with.compression = true;
        let mut without = NativeOptions::all();
        without.compression = false;
        let (_, rep_c) = pagerank_cluster(&g, 0.3, 3, with, 4).unwrap();
        let (_, rep_u) = pagerank_cluster(&g, 0.3, 3, without, 4).unwrap();
        assert!(
            rep_c.traffic.bytes_sent < rep_u.traffic.bytes_sent,
            "{} !< {}",
            rep_c.traffic.bytes_sent,
            rep_u.traffic.bytes_sent
        );
        // the paper reports ~2.2x for pagerank traffic
        let factor = rep_u.traffic.bytes_sent as f64 / rep_c.traffic.bytes_sent as f64;
        assert!(factor > 1.5, "compression factor {factor}");
    }
}
