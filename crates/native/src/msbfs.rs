//! Hand-optimized bit-parallel multi-source BFS (ROADMAP item 2).
//!
//! Wraps [`graphmaze_graph::msbfs`] — 64 sources advanced per u64 word
//! pass — as a native workload next to [`crate::bfs`], plus a simulated
//! distributed port: 1-D edge-balanced partition, per-level exchange of
//! `(vertex, mask)` pairs with compressed id payloads, masks OR-merged at
//! the owner. Where scalar distributed BFS ships 4-byte discoveries, the
//! multi-source version ships an 8-byte source mask per discovered
//! vertex but amortizes the traversal over 64 sources — the word-level
//! trick per-vertex frameworks cannot express (GraphMat, PAPERS.md).

use graphmaze_cluster::{ClusterSpec, Partition1D, Router, Sim, SimError};
use graphmaze_graph::csr::UndirectedGraph;
use graphmaze_graph::msbfs::WORD_SOURCES;
use graphmaze_graph::VertexId;
use graphmaze_metrics::{RunReport, Work};

use crate::common::{edge_stream_work, send_ids_with_values, NativeOptions};

/// Distance value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Single-node bit-parallel multi-source BFS. Returns one distance row
/// per source, in source order (see [`graphmaze_graph::msbfs::msbfs`]).
/// An [`UndirectedGraph`] stores every edge in both directions, so the
/// direction-optimizing bottom-up gather is safe to enable.
pub fn msbfs(g: &UndirectedGraph, sources: &[VertexId], threads: usize) -> Vec<Vec<u32>> {
    graphmaze_graph::msbfs::msbfs_with(&g.adj, sources, threads, true)
}

/// Distributed bit-parallel multi-source BFS on the simulated cluster.
/// Returns distances identical to [`msbfs`] plus the run report. Sources
/// beyond 64 run as consecutive word passes inside the same simulation.
pub fn msbfs_cluster(
    g: &UndirectedGraph,
    sources: &[VertexId],
    opts: NativeOptions,
    nodes: usize,
) -> Result<(Vec<Vec<u32>>, RunReport), SimError> {
    let mut sim = Sim::new(ClusterSpec::paper(nodes), opts.profile());
    let mut router = Router::new(nodes, sim.profile());
    let part = Partition1D::balanced_by_edges(&g.adj, nodes);

    let width = sources.len().min(WORD_SOURCES) as u64;
    for node in 0..nodes {
        let local_edges = part.edges_of(&g.adj, node);
        let local_vertices = part.len(node) as u64;
        // CSR slice + per-vertex seen word + packed per-pass distances
        sim.alloc(
            node,
            local_edges * 4 + local_vertices * (8 + 4 * width.max(1)),
            "msbfs:graph+state",
        )?;
    }

    let mut rows: Vec<Vec<u32>> = Vec::with_capacity(sources.len());
    sim.phase("msbfs:gossip");
    for group in sources.chunks(WORD_SOURCES) {
        word_pass_cluster(
            g,
            group,
            &part,
            nodes,
            opts.compression,
            &mut sim,
            &mut router,
            &mut rows,
        )?;
    }
    sim.end_iteration();
    Ok((rows, sim.finish()))
}

/// One 64-wide distributed pass over `group`, appending a distance row
/// per source. Mirrors the shared-memory kernel level for level so the
/// distances are bit-identical to [`msbfs`].
#[allow(clippy::too_many_arguments)]
fn word_pass_cluster(
    g: &UndirectedGraph,
    group: &[VertexId],
    part: &Partition1D,
    nodes: usize,
    compress: bool,
    sim: &mut Sim,
    router: &mut Router,
    rows: &mut Vec<Vec<u32>>,
) -> Result<(), SimError> {
    let n = g.num_vertices();
    let k = group.len();
    if k == 0 {
        return Ok(());
    }
    let mut seen = vec![0u64; n];
    let mut dist = vec![UNREACHED; n * WORD_SOURCES];

    // seed: per-node frontiers of (owned vertex, newly settled mask)
    let mut frontiers: Vec<Vec<(VertexId, u64)>> = vec![Vec::new(); nodes];
    {
        let mut seeds: Vec<(VertexId, u64)> = group
            .iter()
            .enumerate()
            .map(|(b, &s)| (s, 1u64 << b))
            .collect();
        seeds.sort_unstable_by_key(|&(v, _)| v);
        let mut merged: Vec<(VertexId, u64)> = Vec::with_capacity(seeds.len());
        for (v, m) in seeds {
            match merged.last_mut() {
                Some((lv, lm)) if *lv == v => *lm |= m,
                _ => merged.push((v, m)),
            }
        }
        for (v, m) in merged {
            seen[v as usize] = m;
            settle_bits(&mut dist, v, m, 0);
            frontiers[part.owner(v)].push((v, m));
        }
    }

    let mut level = 0u32;
    loop {
        let active: usize = frontiers.iter().map(|f| f.len()).sum();
        if active == 0 {
            break;
        }
        level += 1;
        // expand: gossip frontier masks over edges into per-owner outboxes
        let mut outbox: Vec<Vec<Vec<(VertexId, u64)>>> = vec![vec![Vec::new(); nodes]; nodes];
        for node in 0..nodes {
            let mut scanned_edges = 0u64;
            for &(u, m) in &frontiers[node] {
                let neigh = g.adj.neighbors(u);
                scanned_edges += neigh.len() as u64;
                for &v in neigh {
                    if m & !seen[v as usize] != 0 {
                        outbox[node][part.owner(v)].push((v, m));
                    }
                }
            }
            // Work: stream frontier adjacency + one 8-byte seen-word probe
            // per scanned edge, plus the OR (1 flop per edge).
            let mut w = edge_stream_work(scanned_edges, 1);
            w.accumulate(Work::random(scanned_edges));
            sim.charge(node, w);
        }
        // exchange: merged (id, mask) pairs; ids compressed, 8-byte masks
        let mut inbox: Vec<Vec<(VertexId, u64)>> = vec![Vec::new(); nodes];
        for from in 0..nodes {
            for (to, pairs) in outbox[from].iter_mut().enumerate() {
                let merged = merge_masks(std::mem::take(pairs));
                if to == from {
                    inbox[to].extend(merged);
                    continue;
                }
                if merged.is_empty() {
                    continue;
                }
                let ids: Vec<VertexId> = merged.iter().map(|&(v, _)| v).collect();
                send_ids_with_values(
                    router, sim, from, to, &ids, n as u64, 8, compress,
                    /* masks stay 8 bytes on the wire */ false,
                );
                inbox[to].extend(merged);
            }
        }
        router.flush(sim);
        // settle: claim newly arrived bits at the owner, in vertex order
        for node in 0..nodes {
            let candidates = merge_masks(std::mem::take(&mut inbox[node]));
            // one seen-word probe per candidate
            sim.charge(node, Work::random(candidates.len() as u64));
            let mut next = Vec::new();
            for (v, m) in candidates {
                let newly = m & !seen[v as usize];
                if newly != 0 {
                    seen[v as usize] |= newly;
                    settle_bits(&mut dist, v, newly, level);
                    next.push((v, newly));
                }
            }
            frontiers[node] = next;
        }
        sim.end_step()?;
    }

    for b in 0..k {
        rows.push((0..n).map(|v| dist[v * WORD_SOURCES + b]).collect());
    }
    Ok(())
}

/// Sorts `(vertex, mask)` pairs by vertex and ORs duplicate vertices'
/// masks together, yielding one pair per vertex in ascending order.
fn merge_masks(mut pairs: Vec<(VertexId, u64)>) -> Vec<(VertexId, u64)> {
    pairs.sort_unstable_by_key(|&(v, _)| v);
    let mut merged: Vec<(VertexId, u64)> = Vec::with_capacity(pairs.len());
    for (v, m) in pairs {
        match merged.last_mut() {
            Some((lv, lm)) if *lv == v => *lm |= m,
            _ => merged.push((v, m)),
        }
    }
    merged
}

/// Records `level` for every set bit of `mask` at vertex `v` in the
/// packed `dist[v * 64 + bit]` layout.
fn settle_bits(dist: &mut [u32], v: VertexId, mask: u64, level: u32) {
    let mut bits = mask;
    while bits != 0 {
        let b = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        dist[v as usize * WORD_SOURCES + b] = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use graphmaze_datagen::{rmat, RmatConfig, RmatParams};

    fn rmat_undirected(scale: u32, seed: u64) -> UndirectedGraph {
        let cfg = RmatConfig {
            scale,
            edge_factor: 8,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: false,
            threads: 1,
        };
        let mut el = rmat::generate(&cfg);
        el.remove_self_loops();
        el.symmetrize();
        UndirectedGraph::from_symmetric_edge_list(&el)
    }

    #[test]
    fn single_node_matches_scalar_bfs() {
        let g = rmat_undirected(9, 7);
        let sources: Vec<u32> = (0..64).map(|i| (i * 5) % g.num_vertices() as u32).collect();
        let rows = msbfs(&g, &sources, 4);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rows[i], bfs::bfs(&g, s, 2), "source {s}");
        }
    }

    #[test]
    fn cluster_matches_single_node() {
        let g = rmat_undirected(9, 23);
        let sources: Vec<u32> = (0..70)
            .map(|i| (i * 11) % g.num_vertices() as u32)
            .collect();
        let single = msbfs(&g, &sources, 2);
        for nodes in [1, 2, 4] {
            let (rows, report) = msbfs_cluster(&g, &sources, NativeOptions::all(), nodes).unwrap();
            assert_eq!(rows, single, "nodes={nodes}");
            assert!(report.sim_seconds > 0.0);
            if nodes > 1 {
                assert!(report.traffic.bytes_sent > 0);
            }
        }
    }

    #[test]
    fn cluster_traffic_is_sublinear_in_sources() {
        // one batched 64-source pass must ship far less than 64 scalar
        // BFS exchanges: masks amortize the id stream across sources
        let g = rmat_undirected(10, 31);
        let sources: Vec<u32> = (0..64)
            .map(|i| (i * 13) % g.num_vertices() as u32)
            .collect();
        let (_, batched) = msbfs_cluster(&g, &sources, NativeOptions::all(), 4).unwrap();
        let mut scalar_total = 0u64;
        for &s in &sources {
            let (_, rep) = bfs::bfs_cluster(&g, s, NativeOptions::all(), 4).unwrap();
            scalar_total += rep.traffic.bytes_sent;
        }
        assert!(
            batched.traffic.bytes_sent * 2 < scalar_total,
            "batched {} vs 64 scalar {}",
            batched.traffic.bytes_sent,
            scalar_total
        );
    }
}
