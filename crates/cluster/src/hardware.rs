//! Hardware model: the paper's evaluation platform as constants.
//!
//! §4.3: dual-socket Intel Xeon E5-2697 nodes — 24 cores / 48 threads at
//! 2.7 GHz, 64 GB DRAM — connected by Mellanox FDR InfiniBand. Table 4 and
//! the Figure 6 caption pin the achievable ceilings: ~85 GB/s STREAM
//! bandwidth (PageRank reaches 78 GB/s = 92%) and 5.5 GB/s/node network.

/// Per-node hardware constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareSpec {
    /// Physical cores per node.
    pub cores: u32,
    /// Core clock, Hz.
    pub freq_hz: f64,
    /// Sustained arithmetic ops per core per cycle (scalar/SIMD mix).
    pub ipc: f64,
    /// Peak streaming memory bandwidth, bytes/sec.
    pub mem_bw_bps: f64,
    /// Fraction of cores needed to saturate memory bandwidth. A memory
    /// stream from `cores * bw_saturation_fraction` cores already hits
    /// peak; fewer cores get a proportional share.
    pub bw_saturation_fraction: f64,
    /// DRAM random-access latency, seconds.
    pub rand_latency_s: f64,
    /// Outstanding misses per core without software prefetch (dependent
    /// pointer-chasing loads sustain very little overlap).
    pub mlp_base: f64,
    /// Outstanding misses per core with software prefetch hints —
    /// Fig 7 shows prefetch is worth ~3–5× on irregular kernels.
    pub mlp_prefetch: f64,
    /// DRAM capacity, bytes.
    pub mem_capacity_bytes: u64,
    /// Sustained local-disk/HDFS bandwidth, bytes/sec — the rate at which
    /// superstep checkpoints are written and restored (Giraph-style
    /// checkpoint/restart; see `graphmaze_cluster::faults`).
    pub disk_bw_bps: f64,
}

impl HardwareSpec {
    /// The paper's node (§4.3, Table 4, Fig 6 caption).
    pub fn paper() -> Self {
        HardwareSpec {
            cores: 24,
            freq_hz: 2.7e9,
            ipc: 2.0,
            mem_bw_bps: 85.0e9,
            bw_saturation_fraction: 1.0 / 3.0,
            rand_latency_s: 90e-9,
            mlp_base: 2.0,
            mlp_prefetch: 16.0,
            mem_capacity_bytes: 64 << 30,
            disk_bw_bps: 200.0e6, // spinning-disk HDFS replica write
        }
    }

    /// Peak node arithmetic throughput, ops/sec.
    pub fn flops_bps(&self) -> f64 {
        f64::from(self.cores) * self.freq_hz * self.ipc
    }

    /// Effective streaming bandwidth when only `core_fraction` of cores
    /// issue loads.
    pub fn effective_mem_bw(&self, core_fraction: f64) -> f64 {
        let f = (core_fraction / self.bw_saturation_fraction).min(1.0);
        self.mem_bw_bps * f.max(0.0)
    }
}

/// A per-node hardware profile for heterogeneous clusters, named in the
/// fault plan's `hw=NODE:PROFILE` clauses. Profiles derive a degraded
/// [`HardwareSpec`] from the baseline (see [`NodeProfile::spec`]) and
/// expose the two scalar factors the simulator folds per physical node:
/// a compute-time multiplier and a NIC wire-time multiplier. The
/// repartitioner weights each node's share of the graph by
/// [`NodeProfile::capacity_weight`], so a half-speed node owns half the
/// edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeProfile {
    /// Baseline paper-spec node.
    Standard,
    /// A previous-generation node: half the memory bandwidth, so
    /// bandwidth-bound kernels (§5.1: every kernel is limited by memory
    /// bandwidth, latency or arithmetic) take ~2× the compute time.
    OldGen,
    /// A node behind a throttled NIC: wire transfers from/to it take 4×
    /// the healthy time; compute is unaffected.
    SlowNic,
}

impl NodeProfile {
    /// Parses a profile name as it appears in `hw=NODE:PROFILE`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "standard" => Some(NodeProfile::Standard),
            "oldgen" => Some(NodeProfile::OldGen),
            "slownic" => Some(NodeProfile::SlowNic),
            _ => None,
        }
    }

    /// Canonical spec-string name (`parse(p.name()) == Some(p)`).
    pub fn name(&self) -> &'static str {
        match self {
            NodeProfile::Standard => "standard",
            NodeProfile::OldGen => "oldgen",
            NodeProfile::SlowNic => "slownic",
        }
    }

    /// The node's hardware, derived from `base`.
    pub fn spec(&self, base: &HardwareSpec) -> HardwareSpec {
        match self {
            NodeProfile::Standard => *base,
            NodeProfile::OldGen => HardwareSpec {
                mem_bw_bps: base.mem_bw_bps / 2.0,
                freq_hz: base.freq_hz / 2.0,
                ..*base
            },
            NodeProfile::SlowNic => *base,
        }
    }

    /// Compute-time multiplier the simulator applies to the node's
    /// folded per-step compute seconds.
    pub fn compute_factor(&self) -> f64 {
        match self {
            NodeProfile::Standard | NodeProfile::SlowNic => 1.0,
            NodeProfile::OldGen => 2.0,
        }
    }

    /// Wire-time multiplier for transfers this node sends or receives.
    pub fn nic_factor(&self) -> f64 {
        match self {
            NodeProfile::Standard | NodeProfile::OldGen => 1.0,
            NodeProfile::SlowNic => 4.0,
        }
    }

    /// Relative share of the graph the weighted repartitioner assigns
    /// the node (1 / compute_factor: a node twice as slow owns half the
    /// edges).
    pub fn capacity_weight(&self) -> f64 {
        1.0 / self.compute_factor()
    }
}

/// A cluster: homogeneous nodes over one interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node hardware.
    pub hw: HardwareSpec,
}

impl ClusterSpec {
    /// `nodes` paper-spec nodes.
    pub fn paper(nodes: usize) -> Self {
        assert!(nodes >= 1, "cluster needs at least one node");
        ClusterSpec {
            nodes,
            hw: HardwareSpec::paper(),
        }
    }

    /// Single paper-spec node.
    pub fn single() -> Self {
        ClusterSpec::paper(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_table4_ceilings() {
        let hw = HardwareSpec::paper();
        assert_eq!(hw.cores, 24);
        // PageRank reaches 78 GB/s = 92% of peak ⇒ peak ≈ 85 GB/s.
        assert!((hw.mem_bw_bps - 85.0e9).abs() < 1.0);
        assert_eq!(hw.mem_capacity_bytes, 64 << 30);
    }

    #[test]
    fn flops_throughput() {
        let hw = HardwareSpec::paper();
        assert!((hw.flops_bps() - 24.0 * 2.7e9 * 2.0).abs() < 1.0);
    }

    #[test]
    fn mem_bw_scales_until_saturation() {
        let hw = HardwareSpec::paper();
        assert!((hw.effective_mem_bw(1.0) - hw.mem_bw_bps).abs() < 1.0);
        // 1/3 of cores already saturate
        assert!((hw.effective_mem_bw(1.0 / 3.0) - hw.mem_bw_bps).abs() < 1.0);
        // 1/6 of cores get half
        assert!((hw.effective_mem_bw(1.0 / 6.0) - hw.mem_bw_bps * 0.5).abs() < 1.0);
        assert_eq!(hw.effective_mem_bw(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_rejected() {
        ClusterSpec::paper(0);
    }
}
