//! Communication layers.
//!
//! "A major differentiator of the frameworks is the communication layer"
//! (§3). The paper measures: MPI drives FDR InfiniBand to ~5.5 GB/s/node;
//! single TCP sockets over IPoIB get 2.5–3× less (GraphLab); multiple
//! sockets per node pair regain ~2× of that (optimized SociaLite, §6.1.3);
//! Netty/Hadoop-class transports stay below 0.5 GB/s (Giraph).

/// A point-to-point transport with measured characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommLayer {
    /// Short name for reports.
    pub name: &'static str,
    /// Peak per-node bandwidth, bytes/sec.
    pub peak_bw_bps: f64,
    /// Per-message latency/overhead, seconds.
    pub latency_s: f64,
    /// CPU-side handling cost per message byte, in extra streamed bytes
    /// per wire byte (serialization / object churn). 0 for zero-copy MPI.
    pub cpu_bytes_per_wire_byte: f64,
}

impl CommLayer {
    /// MPI over FDR InfiniBand — native code and CombBLAS.
    pub fn mpi() -> Self {
        CommLayer {
            name: "mpi",
            peak_bw_bps: 5.5e9,
            latency_s: 2e-6,
            cpu_bytes_per_wire_byte: 0.0,
        }
    }

    /// A single TCP socket (IP-over-IB) per node pair — GraphLab,
    /// unoptimized SociaLite. 2.5–3× below MPI (§6.1.1).
    pub fn socket() -> Self {
        CommLayer {
            name: "socket",
            peak_bw_bps: 2.0e9,
            latency_s: 15e-6,
            cpu_bytes_per_wire_byte: 1.0,
        }
    }

    /// Multiple sockets per node pair — the §6.1.3 SociaLite optimization,
    /// "close to 2 GBps" → we model ~1.8× the single socket.
    pub fn multi_socket() -> Self {
        CommLayer {
            name: "multi-socket",
            peak_bw_bps: 3.6e9,
            latency_s: 15e-6,
            cpu_bytes_per_wire_byte: 1.0,
        }
    }

    /// The *unoptimized* SociaLite transport observed at ~0.5 GB/s before
    /// the paper's fix (§6.1.3).
    pub fn single_socket_unoptimized() -> Self {
        CommLayer {
            name: "socket-unopt",
            peak_bw_bps: 0.5e9,
            latency_s: 15e-6,
            cpu_bytes_per_wire_byte: 1.0,
        }
    }

    /// Netty/Hadoop-class transport — Giraph, "lowest peak traffic rate of
    /// less than 0.5 GBps" with <10% network utilization (§6.2).
    pub fn netty() -> Self {
        CommLayer {
            name: "netty",
            peak_bw_bps: 0.45e9,
            latency_s: 100e-6,
            cpu_bytes_per_wire_byte: 4.0,
        }
    }

    /// Seconds to push `bytes` in `msgs` messages through this layer from
    /// one node.
    pub fn transfer_seconds(&self, bytes: u64, msgs: u64) -> f64 {
        bytes as f64 / self.peak_bw_bps + msgs as f64 * self.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_ordering_matches_paper() {
        let (m, s, ms, n) = (
            CommLayer::mpi(),
            CommLayer::socket(),
            CommLayer::multi_socket(),
            CommLayer::netty(),
        );
        assert!(m.peak_bw_bps > ms.peak_bw_bps);
        assert!(ms.peak_bw_bps > s.peak_bw_bps);
        assert!(s.peak_bw_bps > n.peak_bw_bps);
        // sockets are 2.5–3x below MPI
        let ratio = m.peak_bw_bps / s.peak_bw_bps;
        assert!((2.5..=3.0).contains(&ratio), "mpi/socket ratio {ratio}");
        // multi-socket regains ~2x
        let regain = ms.peak_bw_bps / s.peak_bw_bps;
        assert!(
            (1.5..=2.0).contains(&regain),
            "multi-socket regain {regain}"
        );
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = CommLayer::mpi();
        let bulk = l.transfer_seconds(5_500_000_000, 1);
        assert!((bulk - 1.0).abs() < 1e-3, "1 sec for 5.5GB: {bulk}");
        // a million tiny messages are latency-dominated
        let small = l.transfer_seconds(1_000_000, 1_000_000);
        assert!(small > 1.9, "latency-bound: {small}");
    }

    #[test]
    fn zero_transfer_is_free() {
        assert_eq!(CommLayer::netty().transfer_seconds(0, 0), 0.0);
    }
}
